"""Model profiling: per-layer MAC counts, parameter counts, activation sizes.

The profiler runs one real forward pass through a model with a
:class:`ProfileHook` registered on the runtime dispatch layer: every leaf
module forward reports through the instrumentation tap, and the hook records
the number of multiply-accumulate operations and the size of every layer
output.  Because the hook sits on the dispatch layer rather than inside any
kernel, the same profile is observed whichever backend executes — these
per-sample quantities feed the training cost model (Table IV / Table V) and
the memory model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.models.base import ModelBundle
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.runtime import instrument


@dataclass
class LayerProfile:
    """Per-layer profiling record (all values per input sample)."""

    name: str
    kind: str
    macs: float
    parameters: int
    output_elements: float


@dataclass
class ModelProfile:
    """Aggregated profile of one architecture."""

    model_name: str
    input_shape: tuple
    layers: List[LayerProfile] = field(default_factory=list)
    total_parameters: int = 0
    total_activation_elements: float = 0.0

    @property
    def forward_macs(self) -> float:
        """MACs of one forward pass for one sample."""
        return float(sum(layer.macs for layer in self.layers))

    @property
    def weight_grad_macs(self) -> float:
        """MACs to compute all weight gradients for one sample.

        For GEMM-lowered layers the weight-gradient GEMM has the same MAC
        count as the forward GEMM.
        """
        return self.forward_macs

    @property
    def input_grad_macs(self) -> float:
        """MACs to back-propagate activation gradients for one sample."""
        return self.forward_macs

    def as_dict(self) -> dict:
        """JSON-serializable summary."""
        return {
            "model": self.model_name,
            "input_shape": list(self.input_shape),
            "forward_macs": self.forward_macs,
            "total_parameters": self.total_parameters,
            "total_activation_elements": self.total_activation_elements,
            "num_profiled_layers": len(self.layers),
        }


def _layer_macs(module: Module, inputs: np.ndarray, outputs: np.ndarray) -> float:
    """MAC count of one call to a compute-heavy layer."""
    if isinstance(module, Linear):
        rows = int(np.prod(inputs.shape[:-1]))
        return float(rows * module.in_features * module.out_features)
    if isinstance(module, DepthwiseConv2d):
        out_positions = int(outputs.shape[0] * outputs.shape[2] * outputs.shape[3])
        kernel_area = module.kernel_size[0] * module.kernel_size[1]
        return float(out_positions * module.channels * kernel_area)
    if isinstance(module, Conv2d):
        out_positions = int(outputs.shape[0] * outputs.shape[2] * outputs.shape[3])
        kernel_area = module.kernel_size[0] * module.kernel_size[1]
        return float(
            out_positions * module.out_channels * module.in_channels * kernel_area
        )
    return 0.0


class ProfileHook(instrument.Instrumentation):
    """Dispatch-layer hook recording per-leaf MACs and activation sizes.

    Registered while a forward pass runs; it sees every module the runtime
    executes (whatever backend) and keeps the records the old forward-wrapping
    recorder produced: one :class:`LayerProfile` per compute-heavy leaf call
    plus the total activation element count across all leaves.

    ``model`` scopes the hook: the instrumentation registry is process-global
    (so hooks can watch multi-threaded engines), but a profile must only
    count the profiled model — traffic from unrelated models running
    concurrently (e.g. a serving engine's workers) is ignored.
    """

    def __init__(self, model: Optional[Module] = None) -> None:
        self.records: List[LayerProfile] = []
        self.activation_elements = 0.0
        self._module_ids: dict = {}
        self._scope = (
            None if model is None else {id(m) for m in model.modules()}
        )

    def _index_of(self, module: Module) -> int:
        return self._module_ids.setdefault(id(module), len(self._module_ids))

    def on_module(self, module: Module, inputs, output) -> None:
        if self._scope is not None and id(module) not in self._scope:
            return
        if module._modules:
            return  # only record leaves; containers re-report their children
        if not isinstance(output, np.ndarray):
            return
        self.activation_elements += float(output.size)
        macs = _layer_macs(module, inputs, output)
        if macs > 0:
            self.records.append(
                LayerProfile(
                    name=f"{type(module).__name__}_{self._index_of(module)}",
                    kind=type(module).__name__,
                    macs=macs,
                    parameters=module.num_parameters(),
                    output_elements=float(output.size),
                )
            )


def profile_bundle(bundle: ModelBundle, batch_size: int = 2) -> ModelProfile:
    """Profile one sample's forward compute/activation footprint of ``bundle``."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    model = bundle.bp_model()
    model.eval()
    model.set_activation_caching(False)
    sample = np.zeros((batch_size, *bundle.input_shape), dtype=np.float32)
    inputs = sample.reshape(batch_size, -1) if bundle.flatten_input else sample

    with instrument.instrumented(ProfileHook(model)) as recorder:
        model(inputs)

    scale = 1.0 / batch_size
    layers = [
        LayerProfile(
            name=record.name,
            kind=record.kind,
            macs=record.macs * scale,
            parameters=record.parameters,
            output_elements=record.output_elements * scale,
        )
        for record in recorder.records
    ]
    return ModelProfile(
        model_name=bundle.name,
        input_shape=bundle.input_shape,
        layers=layers,
        total_parameters=model.num_parameters(),
        total_activation_elements=recorder.activation_elements * scale,
    )
