"""Model profiling: per-layer MAC counts, parameter counts, activation sizes.

The profiler runs one real forward pass through a model with every
compute-heavy layer temporarily wrapped, recording the number of
multiply-accumulate operations and the size of every layer output.  These
per-sample quantities feed the training cost model (Table IV / Table V) and
the memory model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.models.base import ModelBundle
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.linear import Linear
from repro.nn.module import Module


@dataclass
class LayerProfile:
    """Per-layer profiling record (all values per input sample)."""

    name: str
    kind: str
    macs: float
    parameters: int
    output_elements: float


@dataclass
class ModelProfile:
    """Aggregated profile of one architecture."""

    model_name: str
    input_shape: tuple
    layers: List[LayerProfile] = field(default_factory=list)
    total_parameters: int = 0
    total_activation_elements: float = 0.0

    @property
    def forward_macs(self) -> float:
        """MACs of one forward pass for one sample."""
        return float(sum(layer.macs for layer in self.layers))

    @property
    def weight_grad_macs(self) -> float:
        """MACs to compute all weight gradients for one sample.

        For GEMM-lowered layers the weight-gradient GEMM has the same MAC
        count as the forward GEMM.
        """
        return self.forward_macs

    @property
    def input_grad_macs(self) -> float:
        """MACs to back-propagate activation gradients for one sample."""
        return self.forward_macs

    def as_dict(self) -> dict:
        """JSON-serializable summary."""
        return {
            "model": self.model_name,
            "input_shape": list(self.input_shape),
            "forward_macs": self.forward_macs,
            "total_parameters": self.total_parameters,
            "total_activation_elements": self.total_activation_elements,
            "num_profiled_layers": len(self.layers),
        }


def _layer_macs(module: Module, inputs: np.ndarray, outputs: np.ndarray) -> float:
    """MAC count of one call to a compute-heavy layer."""
    if isinstance(module, Linear):
        rows = int(np.prod(inputs.shape[:-1]))
        return float(rows * module.in_features * module.out_features)
    if isinstance(module, DepthwiseConv2d):
        out_positions = int(outputs.shape[0] * outputs.shape[2] * outputs.shape[3])
        kernel_area = module.kernel_size[0] * module.kernel_size[1]
        return float(out_positions * module.channels * kernel_area)
    if isinstance(module, Conv2d):
        out_positions = int(outputs.shape[0] * outputs.shape[2] * outputs.shape[3])
        kernel_area = module.kernel_size[0] * module.kernel_size[1]
        return float(
            out_positions * module.out_channels * module.in_channels * kernel_area
        )
    return 0.0


class _ForwardRecorder:
    """Context manager that wraps leaf forwards to record MACs/activations."""

    def __init__(self, model: Module) -> None:
        self.model = model
        self.records: List[LayerProfile] = []
        self.activation_elements = 0.0
        self._originals: Dict[int, tuple] = {}

    def __enter__(self) -> "_ForwardRecorder":
        for index, module in enumerate(self.model.modules()):
            if module is self.model:
                continue
            if module._modules:
                continue  # only wrap leaves
            original = module.forward
            self._originals[id(module)] = (module, original)
            module.forward = self._wrap(module, original, index)  # type: ignore[assignment]
        return self

    def __exit__(self, *exc_info) -> None:
        for module, original in self._originals.values():
            module.forward = original  # type: ignore[assignment]
        self._originals.clear()

    def _wrap(self, module: Module, original, index: int):
        def wrapped(x: np.ndarray) -> np.ndarray:
            out = original(x)
            if isinstance(out, np.ndarray):
                self.activation_elements += float(out.size)
                macs = _layer_macs(module, x, out)
                if macs > 0:
                    self.records.append(
                        LayerProfile(
                            name=f"{type(module).__name__}_{index}",
                            kind=type(module).__name__,
                            macs=macs,
                            parameters=module.num_parameters(),
                            output_elements=float(out.size),
                        )
                    )
            return out

        return wrapped


def profile_bundle(bundle: ModelBundle, batch_size: int = 2) -> ModelProfile:
    """Profile one sample's forward compute/activation footprint of ``bundle``."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    model = bundle.bp_model()
    model.eval()
    model.set_activation_caching(False)
    sample = np.zeros((batch_size, *bundle.input_shape), dtype=np.float32)
    inputs = sample.reshape(batch_size, -1) if bundle.flatten_input else sample

    with _ForwardRecorder(model) as recorder:
        model(inputs)

    scale = 1.0 / batch_size
    layers = [
        LayerProfile(
            name=record.name,
            kind=record.kind,
            macs=record.macs * scale,
            parameters=record.parameters,
            output_elements=record.output_elements * scale,
        )
        for record in recorder.records
    ]
    return ModelProfile(
        model_name=bundle.name,
        input_shape=bundle.input_shape,
        layers=layers,
        total_parameters=model.num_parameters(),
        total_activation_elements=recorder.activation_elements * scale,
    )
