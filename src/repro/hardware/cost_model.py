"""Analytical training-cost model (time, energy) for the Jetson Orin Nano.

``TrainingCostModel.estimate`` turns a :class:`ModelProfile`, an algorithm
label and a training schedule (epochs, dataset size, batch size) into a
time/energy/memory estimate with a per-component breakdown:

* **MAC time** — GEMM work at the algorithm's precision.  Backpropagation
  performs the forward GEMM plus two backward GEMMs (weight gradients and
  input gradients), the latter with a penalty because backward kernels are
  less optimized than inference-tuned forward kernels.  Forward-Forward
  performs two forward passes (positive and negative data) plus the per-layer
  weight-gradient GEMMs, and never computes input gradients.
* **Quantization time** — per-element SUQ cost for INT8 algorithms.
* **Analysis time** — extra FP32 work that UI8/GDAI8 spend inspecting the
  gradient distribution before quantizing.
* **Traffic time** — DRAM traffic; dominated for BP by writing the activation
  graph after the forward pass and reading it back during backward, which FF
  avoids.
* **Overhead time** — per-epoch and per-batch fixed costs (data loading,
  kernel launches, optimizer bookkeeping).

Energy is the sum over components of ``component_time × component_power``.
Memory comes from :mod:`repro.hardware.memory_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hardware.device import HardwareModel
from repro.hardware.memory_model import MemoryBreakdown, estimate_memory
from repro.hardware.op_counter import ModelProfile
from repro.training.algorithms import FF_INT8, algorithm_properties


@dataclass
class CostBreakdown:
    """Per-component time (seconds) and energy (Joules) of a training run."""

    mac_time_s: float = 0.0
    quant_time_s: float = 0.0
    analysis_time_s: float = 0.0
    traffic_time_s: float = 0.0
    overhead_time_s: float = 0.0
    mac_energy_j: float = 0.0
    quant_energy_j: float = 0.0
    analysis_energy_j: float = 0.0
    traffic_energy_j: float = 0.0
    overhead_energy_j: float = 0.0

    @property
    def total_time_s(self) -> float:
        """Total wall-clock training time."""
        return (
            self.mac_time_s
            + self.quant_time_s
            + self.analysis_time_s
            + self.traffic_time_s
            + self.overhead_time_s
        )

    @property
    def total_energy_j(self) -> float:
        """Total energy consumption."""
        return (
            self.mac_energy_j
            + self.quant_energy_j
            + self.analysis_energy_j
            + self.traffic_energy_j
            + self.overhead_energy_j
        )

    def as_dict(self) -> dict:
        """JSON-serializable breakdown."""
        return {
            "mac_time_s": self.mac_time_s,
            "quant_time_s": self.quant_time_s,
            "analysis_time_s": self.analysis_time_s,
            "traffic_time_s": self.traffic_time_s,
            "overhead_time_s": self.overhead_time_s,
            "total_time_s": self.total_time_s,
            "total_energy_j": self.total_energy_j,
        }


@dataclass
class TrainingCostEstimate:
    """Complete estimate for one (model, algorithm, schedule) combination."""

    model_name: str
    algorithm: str
    epochs: int
    dataset_size: int
    batch_size: int
    breakdown: CostBreakdown
    memory: MemoryBreakdown
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def time_s(self) -> float:
        """Total training time in seconds."""
        return self.breakdown.total_time_s

    @property
    def energy_j(self) -> float:
        """Total energy in Joules."""
        return self.breakdown.total_energy_j

    @property
    def memory_mb(self) -> float:
        """Peak resident memory in MB."""
        return self.memory.total_mb

    @property
    def average_power_w(self) -> float:
        """Implied average power draw."""
        if self.time_s == 0.0:
            return 0.0
        return self.energy_j / self.time_s

    def as_dict(self) -> dict:
        """JSON-serializable estimate."""
        return {
            "model": self.model_name,
            "algorithm": self.algorithm,
            "epochs": self.epochs,
            "time_s": self.time_s,
            "energy_j": self.energy_j,
            "memory_mb": self.memory_mb,
            "average_power_w": self.average_power_w,
            "breakdown": self.breakdown.as_dict(),
            "memory_breakdown": self.memory.as_dict(),
        }


# Default epoch budgets used for the Table V style comparison.  The paper
# trains every algorithm to its own convergence; the FF-INT8 budget is ~20 %
# larger than the BP budget (Figure 6 shows FF-INT8 with look-ahead needing
# somewhat more epochs), while each FF epoch is cheaper.
DEFAULT_EPOCHS = {
    "BP-FP32": 30,
    "BP-INT8": 30,
    "BP-UI8": 30,
    "BP-GDAI8": 30,
    "FF-INT8": 36,
}


class TrainingCostModel:
    """Maps (model profile, algorithm, schedule) to time/energy/memory."""

    def __init__(self, hardware: Optional[HardwareModel] = None) -> None:
        self.hardware = hardware if hardware is not None else HardwareModel()

    # ------------------------------------------------------------------ #
    def estimate(
        self,
        profile: ModelProfile,
        algorithm: str,
        epochs: Optional[int] = None,
        dataset_size: int = 50000,
        batch_size: int = 32,
        optimizer_state_per_param: int = 1,
        lookahead: bool = True,
    ) -> TrainingCostEstimate:
        """Estimate the full training run cost of ``algorithm`` on ``profile``."""
        algorithm = algorithm.upper()
        props = algorithm_properties(algorithm)
        if epochs is None:
            epochs = DEFAULT_EPOCHS.get(algorithm, 10)
        if epochs <= 0 or dataset_size <= 0 or batch_size <= 0:
            raise ValueError("epochs, dataset_size and batch_size must be positive")

        hw = self.hardware
        costs = hw.costs
        precision = props["mac_precision"]
        samples = epochs * dataset_size
        batches = epochs * max(1, dataset_size // batch_size)
        forward_macs = profile.forward_macs
        params = float(profile.total_parameters)
        act_elements = profile.total_activation_elements
        input_elements = float(
            profile.input_shape[0] * profile.input_shape[1] * profile.input_shape[2]
        ) if len(profile.input_shape) == 3 else act_elements

        breakdown = CostBreakdown()

        # ----- MAC work ------------------------------------------------- #
        if props["backward_pass"]:
            forward_time = samples * forward_macs * hw.mac_time(precision)
            backward_time = (
                samples
                * (profile.weight_grad_macs + profile.input_grad_macs)
                * hw.mac_time(precision, backward=True)
            )
            breakdown.mac_time_s = forward_time + backward_time
        else:
            # FF (Algorithm 1): one shared forward pass per sample visit plus
            # the per-layer weight-gradient GEMMs; no input-gradient GEMMs and
            # no backward-kernel penalty.  Positive/negative overlays are
            # interleaved so each training sample is visited once per epoch.
            ff_macs = forward_macs + profile.weight_grad_macs
            breakdown.mac_time_s = samples * ff_macs * hw.mac_time(precision)
        breakdown.mac_energy_j = breakdown.mac_time_s * hw.mac_power(precision)

        # ----- quantization work ----------------------------------------- #
        if precision == "int8":
            quant_elements_per_sample = act_elements + params / batch_size
            breakdown.quant_time_s = (
                samples * quant_elements_per_sample * costs.time_per_quantize_element
            )
            breakdown.quant_energy_j = (
                breakdown.quant_time_s * costs.power_int8_compute_w
            )

        # ----- gradient-distribution analysis (UI8 / GDAI8) --------------- #
        analysis_passes = float(props["analysis_passes"])
        if analysis_passes > 0.0:
            grad_elements = batches * params
            breakdown.analysis_time_s = (
                grad_elements * costs.time_per_fp32_elementwise * analysis_passes
            )
            breakdown.analysis_energy_j = (
                breakdown.analysis_time_s * costs.power_fp32_compute_w
            )

        # ----- DRAM traffic ----------------------------------------------- #
        act_bytes_per_element = (
            costs.bytes_int8 if precision == "int8" else costs.bytes_fp32
        )
        traffic_bytes = samples * input_elements * costs.bytes_fp32  # dataset reads
        weight_bytes = params * costs.bytes_fp32
        traffic_bytes += batches * weight_bytes * 3.0  # weights, grads, update
        if props["stores_graph"]:
            traffic_bytes += (
                samples
                * act_elements
                * act_bytes_per_element
                * costs.activation_reload_factor
            )
        else:
            traffic_bytes += samples * act_elements * act_bytes_per_element * 0.5
        breakdown.traffic_time_s = hw.traffic_time(traffic_bytes)
        breakdown.traffic_energy_j = breakdown.traffic_time_s * costs.power_memory_w

        # ----- per-layer kernel time --------------------------------------- #
        num_layers = max(1, len(profile.layers))
        kernel_scale = (
            costs.int8_kernel_efficiency if precision == "int8" else 1.0
        )
        if props["backward_pass"]:
            # One forward step and one backward (autograd) step per layer.
            per_batch_overhead = num_layers * kernel_scale * (
                costs.forward_layer_overhead_s + costs.backward_layer_overhead_s
            )
        else:
            # Positive and negative forward passes, plus a weight-gradient-only
            # update per layer (no input-gradient kernels, no graph traversal).
            per_batch_overhead = num_layers * kernel_scale * (
                2.0 * costs.forward_layer_overhead_s
                + costs.weight_grad_layer_overhead_s
            )
        breakdown.overhead_time_s = (
            epochs * costs.epoch_overhead_s
            + batches * (costs.batch_overhead_s + per_batch_overhead)
        )
        overhead_power = (
            costs.power_overhead_int8_w
            if precision == "int8"
            else costs.power_overhead_fp32_w
        )
        breakdown.overhead_energy_j = breakdown.overhead_time_s * overhead_power

        memory = estimate_memory(
            profile,
            batch_size=batch_size,
            stores_graph=bool(props["stores_graph"]),
            mac_precision=precision,
            lookahead=lookahead and algorithm == FF_INT8,
            optimizer_state_per_param=optimizer_state_per_param,
            costs=costs,
        )

        return TrainingCostEstimate(
            model_name=profile.model_name,
            algorithm=algorithm,
            epochs=epochs,
            dataset_size=dataset_size,
            batch_size=batch_size,
            breakdown=breakdown,
            memory=memory,
            metadata={
                "forward_macs_per_sample": forward_macs,
                "parameters": params,
                "activation_elements_per_sample": act_elements,
            },
        )

    # ------------------------------------------------------------------ #
    def compare(
        self,
        profile: ModelProfile,
        algorithms: Optional[list[str]] = None,
        epochs: Optional[Dict[str, int]] = None,
        **kwargs,
    ) -> Dict[str, TrainingCostEstimate]:
        """Estimate several algorithms on the same model/schedule."""
        from repro.training.algorithms import ALL_ALGORITHMS

        algorithms = list(algorithms) if algorithms else list(ALL_ALGORITHMS)
        epochs = epochs or {}
        return {
            algorithm: self.estimate(
                profile, algorithm, epochs=epochs.get(algorithm), **kwargs
            )
            for algorithm in algorithms
        }
