"""Device specification and calibrated cost constants for the Jetson Orin Nano.

The paper measures training time, energy, and memory on an NVIDIA Jetson Orin
Nano (Table III).  Without the physical board we model it analytically: the
constants below are calibrated so that the *relative* behaviour reported in
Table V (INT8 vs FP32 speedup well below the naive 4x because memory traffic
and framework overhead dominate; FF-INT8 slightly faster and noticeably more
memory-frugal than BP-GDAI8) is reproduced.  Absolute seconds/Joules are not
claimed to match the testbed.

Calibration notes
-----------------
* ``time_per_fp32_mac`` is derived from the board's practical FP32 throughput
  (~1 TFLOP/s sustained for training workloads, far below the 20 TOPS INT8
  peak), ``time_per_int8_mac`` from the paper's statement that INT8 arithmetic
  is ~4x faster than FP32.
* ``backward_mac_penalty`` reflects that backward-pass kernels are less
  optimized than inference-oriented forward kernels (Section V-C).
* The traffic term models LPDDR5 at 34 GB/s with ~55 % achievable efficiency.
* Power levels sit inside the module's 7–10 W envelope; the effective average
  power of a run lands in the 3.5–5 W range the paper's Joules/second imply.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of the target edge device."""

    name: str = "NVIDIA Jetson Orin Nano"
    gpu: str = "512-core NVIDIA Ampere architecture GPU"
    cpu: str = "6-core Arm Cortex-A78AE v8.2 64-bit"
    memory_gb: float = 4.0
    memory_bandwidth_gbps: float = 34.0
    power_min_w: float = 7.0
    power_max_w: float = 10.0
    ai_performance_tops: float = 20.0
    has_int8_engine: bool = True


@dataclass(frozen=True)
class CostConstants:
    """Calibrated per-operation latency/energy constants.

    Times are seconds per operation; energies are Joules per second of the
    corresponding activity (i.e. power in Watts attributed to that activity).
    """

    # --- compute ------------------------------------------------------- #
    time_per_fp32_mac: float = 1.6e-12  # ~0.6 TMAC/s sustained FP32
    time_per_int8_mac: float = 0.4e-12  # 4x faster on the INT8 engine
    backward_mac_penalty: float = 1.25
    time_per_fp32_elementwise: float = 0.05e-9
    time_per_quantize_element: float = 0.05e-9

    # --- memory traffic ------------------------------------------------ #
    effective_bandwidth_bytes_per_s: float = 18.7e9  # 34 GB/s * 55 % efficiency
    activation_reload_factor: float = 2.0  # write after forward + read in backward

    # --- per-layer kernel time ------------------------------------------- #
    # Training with batch 32 at 28x28/32x32 resolution on an edge GPU is
    # dominated by per-layer kernel time (launch latency, small-tensor
    # inefficiency, autograd bookkeeping) rather than by raw MAC throughput —
    # this is why Table V's INT8/FP32 speedups are ~1.45x rather than the 4x
    # the MAC engine alone would give, and why the ratio is almost the same
    # for the 0.6 GMAC MLP and the 555 GMAC ResNet-18.  The constants below
    # are fitted to Table V's relative behaviour (see DESIGN.md §2):
    #
    # * a backward layer step costs ~2x a forward step (two GEMMs plus graph
    #   traversal and gradient allocation),
    # * INT8 kernels run the whole layer step ~1.6x faster than FP32 kernels
    #   (compute and operand traffic both shrink),
    # * a Forward-Forward weight-gradient-only step is far cheaper than a
    #   full backward step: a single GEMM, no input-gradient kernel, no
    #   graph traversal.
    forward_layer_overhead_s: float = 2.5e-3     # per layer, per mini-batch (FP32)
    backward_layer_overhead_s: float = 5.0e-3    # per layer, per mini-batch (FP32)
    weight_grad_layer_overhead_s: float = 0.85e-3  # per layer, per mini-batch (FP32)
    int8_kernel_efficiency: float = 0.62         # INT8 layer step vs FP32 layer step
    epoch_overhead_s: float = 0.35
    batch_overhead_s: float = 1.0e-3

    # --- power (Watts) -------------------------------------------------- #
    # Average module power observed in the paper's measurements sits in the
    # 3.5-5 W band (energy / time of Table V); attribute the higher end to
    # FP32-heavy phases and the lower end to INT8 phases.
    power_fp32_compute_w: float = 6.5
    power_int8_compute_w: float = 4.5
    power_memory_w: float = 4.2
    power_overhead_fp32_w: float = 5.0
    power_overhead_int8_w: float = 3.7
    power_idle_w: float = 2.2

    # --- memory footprint ----------------------------------------------- #
    framework_overhead_mb: float = 118.0
    dataset_buffer_mb: float = 12.0
    autograd_graph_overhead_mb: float = 34.0  # bookkeeping when a graph is stored
    fp32_workspace_mb: float = 42.0           # cuDNN-style FP32 training workspace
    int8_workspace_mb: float = 18.0           # leaner INT8 kernels workspace

    bytes_fp32: int = 4
    bytes_int8: int = 1


JETSON_ORIN_NANO = DeviceSpec()
DEFAULT_COSTS = CostConstants()


@dataclass
class HardwareModel:
    """Bundles a device spec with its calibrated cost constants."""

    spec: DeviceSpec = field(default_factory=lambda: JETSON_ORIN_NANO)
    costs: CostConstants = field(default_factory=lambda: DEFAULT_COSTS)

    def mac_time(self, precision: str, backward: bool = False) -> float:
        """Seconds for a single MAC at the given precision/phase."""
        if precision == "fp32":
            base = self.costs.time_per_fp32_mac
        elif precision == "int8":
            base = self.costs.time_per_int8_mac
        else:
            raise ValueError(f"unknown precision {precision!r}")
        if backward:
            base *= self.costs.backward_mac_penalty
        return base

    def mac_power(self, precision: str) -> float:
        """Watts attributed to MAC-bound execution at the given precision."""
        if precision == "fp32":
            return self.costs.power_fp32_compute_w
        if precision == "int8":
            return self.costs.power_int8_compute_w
        raise ValueError(f"unknown precision {precision!r}")

    def traffic_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` through DRAM."""
        return num_bytes / self.costs.effective_bandwidth_bytes_per_s
