"""Operation counting in the style of Table IV of the paper.

Table IV counts the operations needed to *perform one training step on a
mini-batch of 10 samples* for three settings:

* **FF-INT8** — the Forward-Forward step touches a single layer at a time
  (the greedy strategy of Section IV-B): the quantization phase (FP32
  compares/adds for SUQ scale derivation) plus the INT8 MAC phase of the
  layer being trained.
* **BP-FP32** — a conventional backpropagation step must run the forward and
  backward GEMMs of *every* layer in FP32.
* **BP-GDAI8** — the same full forward/backward sweep with INT8 MACs, plus a
  small FP32 quantization phase for the gradient-distribution analysis.

The function reports counts computed from the profiled model; the comparison
benchmark prints them alongside the paper's reported values.
"""

from __future__ import annotations

from typing import Dict

from repro.hardware.op_counter import ModelProfile


def table4_op_counts(
    profile: ModelProfile,
    batch_size: int = 10,
    ff_layer_index: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Operation counts for one mini-batch training step, per Table IV.

    Parameters
    ----------
    profile:
        Model profile (per-sample MAC counts per layer).
    batch_size:
        Mini-batch size; the paper uses 10.
    ff_layer_index:
        Which layer the FF step is currently training (the paper's counts
        correspond to the first — largest — layer of its MLP).
    """
    if not profile.layers:
        raise ValueError("profile has no compute layers to count")
    if not 0 <= ff_layer_index < len(profile.layers):
        raise ValueError(
            f"ff_layer_index {ff_layer_index} out of range for "
            f"{len(profile.layers)} layers"
        )

    layer = profile.layers[ff_layer_index]
    ff_layer_macs = layer.macs * batch_size
    # Quantization phase: the layer's input activations and output activities
    # (the gradient g_Y has the same size as the output) are quantized per
    # step; weight scales are folded into the weight update and are not
    # re-derived per mini-batch, matching the tiny CMP/FADD counts of Table IV.
    input_elements = layer.macs / max(layer.output_elements, 1.0)
    ff_quant_elements = (input_elements + layer.output_elements) * batch_size

    full_forward = profile.forward_macs * batch_size
    full_backward = (
        profile.weight_grad_macs + profile.input_grad_macs
    ) * batch_size
    bp_macs = full_forward + full_backward
    gdai8_quant_elements = profile.total_parameters  # one scale pass per gradient

    return {
        "FF-INT8": {
            "quant_fp32_cmp": ff_quant_elements,
            "quant_fp32_add": ff_quant_elements * 2.0,
            "mac_int8_mul": ff_layer_macs,
            "mac_int8_add": ff_layer_macs,
            "mac_fp32_mul": 0.0,
            "mac_fp32_add": 0.0,
        },
        "BP-FP32": {
            "quant_fp32_cmp": 0.0,
            "quant_fp32_add": 0.0,
            "mac_int8_mul": 0.0,
            "mac_int8_add": 0.0,
            "mac_fp32_mul": bp_macs,
            "mac_fp32_add": bp_macs,
        },
        "BP-GDAI8": {
            "quant_fp32_cmp": float(gdai8_quant_elements),
            "quant_fp32_add": float(gdai8_quant_elements) * 2.0,
            "mac_int8_mul": bp_macs,
            "mac_int8_add": bp_macs,
            "mac_fp32_mul": 0.0,
            "mac_fp32_add": 0.0,
        },
    }


# Values reported in Table IV of the paper (operations for a 10-sample
# mini-batch of a 4-layer MLP on MNIST), used by the benchmark for
# side-by-side comparison.
PAPER_TABLE4 = {
    "FF-INT8": {
        "quant_fp32_cmp": 32.4e3,
        "quant_fp32_add": 165.9e3,
        "mac_int8_mul": 23.8e6,
        "mac_int8_add": 23.8e6,
    },
    "BP-FP32": {
        "mac_fp32_add": 898.2e6,
        "mac_fp32_mul": 898.2e6,
    },
    "BP-GDAI8": {
        "quant_fp32_cmp": 7.2e3,
        "quant_fp32_add": 18.4e3,
        "mac_int8_mul": 898.2e6,
        "mac_int8_add": 898.2e6,
    },
}
