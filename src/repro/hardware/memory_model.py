"""Training-time memory-footprint model (Table V's "Memory" column).

The footprint of a training run is decomposed into

* resident **weights** (FP32 master copy, plus an INT8 shadow copy when the
  forward runs on the INT8 engine),
* **gradient** buffers,
* **optimizer state** (momentum),
* **stored activations** — the per-batch "computational graph" that
  backpropagation must keep alive between the forward and backward passes;
  the Forward-Forward algorithm only keeps the layer currently being trained,
  which is the paper's main source of memory savings (Section V-D),
* a constant **framework/workspace overhead** and the host-side dataset
  buffer.

Activation elements are taken from :class:`~repro.hardware.op_counter.ModelProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import CostConstants, DEFAULT_COSTS
from repro.hardware.op_counter import ModelProfile

MB = 1024.0 * 1024.0


@dataclass
class MemoryBreakdown:
    """Per-component footprint of one training configuration, in MB."""

    weights_mb: float
    gradients_mb: float
    optimizer_mb: float
    activations_mb: float
    overhead_mb: float

    @property
    def total_mb(self) -> float:
        """Total resident footprint in MB."""
        return (
            self.weights_mb
            + self.gradients_mb
            + self.optimizer_mb
            + self.activations_mb
            + self.overhead_mb
        )

    def as_dict(self) -> dict:
        """JSON-serializable breakdown."""
        return {
            "weights_mb": self.weights_mb,
            "gradients_mb": self.gradients_mb,
            "optimizer_mb": self.optimizer_mb,
            "activations_mb": self.activations_mb,
            "overhead_mb": self.overhead_mb,
            "total_mb": self.total_mb,
        }


def estimate_memory(
    profile: ModelProfile,
    batch_size: int,
    stores_graph: bool,
    mac_precision: str,
    lookahead: bool = False,
    optimizer_state_per_param: int = 1,
    costs: CostConstants = DEFAULT_COSTS,
) -> MemoryBreakdown:
    """Estimate the training memory footprint of one (model, algorithm) pair.

    Parameters
    ----------
    stores_graph:
        True for backpropagation (all layer activations of the current batch
        stay resident for the backward pass), False for Forward-Forward.
    mac_precision:
        ``"int8"`` adds an INT8 shadow copy of the weights and lets the stored
        activations be kept at 1 byte/element; ``"fp32"`` keeps everything at
        4 bytes.
    lookahead:
        FF with look-ahead keeps every layer's weights resident during the
        shared forward pass (paper Section IV-C) and buffers per-layer
        goodness, a modest increase over greedy FF but far below BP.
    optimizer_state_per_param:
        Number of extra FP32 values per parameter kept by the optimizer
        (1 for SGD momentum, 2 for Adam).
    """
    params = profile.total_parameters
    act_elements = profile.total_activation_elements * batch_size
    bytes_fp32 = costs.bytes_fp32
    bytes_int8 = costs.bytes_int8
    activation_bytes_per_element = (
        bytes_int8 if mac_precision == "int8" else bytes_fp32
    )

    weights_mb = params * bytes_fp32 / MB
    if mac_precision == "int8":
        weights_mb += params * bytes_int8 / MB

    gradients_mb = params * bytes_fp32 / MB
    optimizer_mb = params * bytes_fp32 * optimizer_state_per_param / MB

    if stores_graph:
        activations_mb = act_elements * activation_bytes_per_element / MB
    else:
        # FF keeps only the activations of the layer currently being updated.
        per_layer = [layer.output_elements for layer in profile.layers] or [
            profile.total_activation_elements
        ]
        largest_layer = max(per_layer) * batch_size
        activations_mb = largest_layer * activation_bytes_per_element / MB
        if lookahead:
            # Shared forward pass: goodness scalars for every layer plus a
            # second resident layer buffer while the sweep runs.
            activations_mb *= 2.0
            activations_mb += len(profile.layers) * batch_size * bytes_fp32 / MB

    overhead_mb = costs.framework_overhead_mb + costs.dataset_buffer_mb
    overhead_mb += (
        costs.fp32_workspace_mb
        if mac_precision == "fp32"
        else costs.int8_workspace_mb
    )
    if stores_graph:
        overhead_mb += costs.autograd_graph_overhead_mb
    return MemoryBreakdown(
        weights_mb=weights_mb,
        gradients_mb=gradients_mb,
        optimizer_mb=optimizer_mb,
        activations_mb=activations_mb,
        overhead_mb=overhead_mb,
    )
