"""Jetson Orin Nano hardware model: op counting, time/energy/memory estimation.

The paper's efficiency results (Tables IV and V) are measured on a physical
Jetson Orin Nano; this package replaces the board with an analytical model
calibrated to its specification (see DESIGN.md for the substitution note and
:mod:`repro.hardware.device` for the calibration rationale).
"""

from repro.hardware.cost_model import (
    DEFAULT_EPOCHS,
    CostBreakdown,
    TrainingCostEstimate,
    TrainingCostModel,
)
from repro.hardware.device import (
    DEFAULT_COSTS,
    JETSON_ORIN_NANO,
    CostConstants,
    DeviceSpec,
    HardwareModel,
)
from repro.hardware.estimator import (
    PAPER_TABLE5_ACCURACY,
    PAPER_TABLE5_COST,
    SummaryRow,
    Table5Summary,
    build_table5_summary,
)
from repro.hardware.memory_model import MemoryBreakdown, estimate_memory
from repro.hardware.op_counter import (
    LayerProfile,
    ModelProfile,
    ProfileHook,
    profile_bundle,
)
from repro.hardware.sweeps import (
    SweepPoint,
    SweepResult,
    breakeven_ff_epochs,
    sweep_batch_size,
    sweep_epochs,
)
from repro.hardware.table4 import PAPER_TABLE4, table4_op_counts

__all__ = [
    "DeviceSpec",
    "CostConstants",
    "HardwareModel",
    "JETSON_ORIN_NANO",
    "DEFAULT_COSTS",
    "TrainingCostModel",
    "TrainingCostEstimate",
    "CostBreakdown",
    "DEFAULT_EPOCHS",
    "MemoryBreakdown",
    "estimate_memory",
    "ModelProfile",
    "LayerProfile",
    "ProfileHook",
    "profile_bundle",
    "table4_op_counts",
    "PAPER_TABLE4",
    "SummaryRow",
    "Table5Summary",
    "build_table5_summary",
    "PAPER_TABLE5_ACCURACY",
    "PAPER_TABLE5_COST",
    "SweepPoint",
    "SweepResult",
    "sweep_batch_size",
    "sweep_epochs",
    "breakeven_ff_epochs",
]
