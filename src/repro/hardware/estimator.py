"""Table V style summary rows: accuracy, time, energy, memory per algorithm.

The estimator combines

* the analytical hardware cost model (time / energy / memory at paper scale),
* the paper's reported accuracies (always included for reference), and
* optionally, measured accuracies from actually training the mini-scale
  variants with this repository's trainers,

into one row per (model, algorithm) pair, plus the relative-difference
summary lines the paper prints at the bottom of Table V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hardware.cost_model import TrainingCostEstimate, TrainingCostModel
from repro.hardware.op_counter import ModelProfile, profile_bundle
from repro.models.registry import PAPER_BENCHMARKS, build_model
from repro.training.algorithms import ALL_ALGORITHMS, BP_FP32, BP_GDAI8, FF_INT8

# Accuracies reported in Table V of the paper (percent).
PAPER_TABLE5_ACCURACY = {
    "MLP": {
        "BP-FP32": 94.5, "BP-INT8": 52.4, "BP-UI8": 92.3,
        "BP-GDAI8": 93.8, "FF-INT8": 94.3,
    },
    "MobileNet-v2": {
        "BP-FP32": 91.5, "BP-INT8": 5.9, "BP-UI8": 87.2,
        "BP-GDAI8": 90.9, "FF-INT8": 91.1,
    },
    "EfficientNet-B0": {
        "BP-FP32": 89.4, "BP-INT8": 11.8, "BP-UI8": 85.3,
        "BP-GDAI8": 88.9, "FF-INT8": 88.6,
    },
    "ResNet-18": {
        "BP-FP32": 93.5, "BP-INT8": 7.2, "BP-UI8": 89.7,
        "BP-GDAI8": 92.9, "FF-INT8": 93.1,
    },
}

# Time / energy / memory reported in Table V (seconds, Joules, MB).
PAPER_TABLE5_COST = {
    "MLP": {
        "BP-FP32": (482.3, 2315.0, 247.6),
        "BP-INT8": (326.1, 1206.6, 213.9),
        "BP-UI8": (335.2, 1277.1, 197.0),
        "BP-GDAI8": (344.9, 1345.4, 182.6),
        "FF-INT8": (312.7, 1097.0, 140.7),
    },
    "MobileNet-v2": {
        "BP-FP32": (2370.8, 11593.2, 649.8),
        "BP-INT8": (1851.6, 7836.0, 571.6),
        "BP-UI8": (1960.0, 7618.5, 592.6),
        "BP-GDAI8": (1790.7, 6528.1, 578.9),
        "FF-INT8": (1703.9, 6174.3, 437.0),
    },
    "EfficientNet-B0": {
        "BP-FP32": (2692.8, 13356.2, 861.0),
        "BP-INT8": (2095.0, 8563.9, 703.9),
        "BP-UI8": (2230.8, 8656.2, 735.5),
        "BP-GDAI8": (2177.1, 8589.9, 692.0),
        "FF-INT8": (2129.9, 8093.8, 505.2),
    },
    "ResNet-18": {
        "BP-FP32": (3853.0, 18764.1, 1096.4),
        "BP-INT8": (2676.1, 10436.8, 885.8),
        "BP-UI8": (2873.8, 11466.5, 920.7),
        "BP-GDAI8": (2751.6, 10291.0, 894.1),
        "FF-INT8": (2697.9, 9926.5, 682.3),
    },
}


@dataclass
class SummaryRow:
    """One (model, algorithm) row of the Table V style summary."""

    model: str
    algorithm: str
    paper_accuracy: float
    estimate: TrainingCostEstimate
    measured_accuracy: Optional[float] = None
    paper_time_s: Optional[float] = None
    paper_energy_j: Optional[float] = None
    paper_memory_mb: Optional[float] = None

    def as_dict(self) -> dict:
        """JSON-serializable row."""
        return {
            "model": self.model,
            "algorithm": self.algorithm,
            "paper_accuracy": self.paper_accuracy,
            "measured_accuracy": self.measured_accuracy,
            "time_s": self.estimate.time_s,
            "energy_j": self.estimate.energy_j,
            "memory_mb": self.estimate.memory_mb,
            "paper_time_s": self.paper_time_s,
            "paper_energy_j": self.paper_energy_j,
            "paper_memory_mb": self.paper_memory_mb,
        }


@dataclass
class Table5Summary:
    """All rows plus the relative-savings aggregates of Table V."""

    rows: List[SummaryRow] = field(default_factory=list)

    def rows_for_model(self, model: str) -> List[SummaryRow]:
        """Rows of one benchmark model."""
        return [row for row in self.rows if row.model == model]

    def relative_savings(
        self, reference: str, target: str = FF_INT8
    ) -> Dict[str, float]:
        """Average relative savings of ``target`` vs ``reference``.

        Returns average percentage reductions for time, energy and memory —
        the two summary lines at the bottom of Table V use
        ``reference=BP-FP32`` and ``reference=BP-GDAI8``.
        """
        time_savings, energy_savings, memory_savings = [], [], []
        for model in {row.model for row in self.rows}:
            by_algorithm = {row.algorithm: row for row in self.rows_for_model(model)}
            if reference not in by_algorithm or target not in by_algorithm:
                continue
            ref = by_algorithm[reference].estimate
            tgt = by_algorithm[target].estimate
            time_savings.append(1.0 - tgt.time_s / ref.time_s)
            energy_savings.append(1.0 - tgt.energy_j / ref.energy_j)
            memory_savings.append(1.0 - tgt.memory_mb / ref.memory_mb)
        if not time_savings:
            return {"time": 0.0, "energy": 0.0, "memory": 0.0}
        count = len(time_savings)
        return {
            "time": 100.0 * sum(time_savings) / count,
            "energy": 100.0 * sum(energy_savings) / count,
            "memory": 100.0 * sum(memory_savings) / count,
        }


# Epoch budgets assumed when translating per-epoch cost into run totals.
# FF-INT8 converges in more epochs (Figure 6) but each epoch is cheaper.
TABLE5_EPOCHS = {
    BP_FP32: 30,
    "BP-INT8": 30,
    "BP-UI8": 30,
    BP_GDAI8: 30,
    FF_INT8: 36,
}

TABLE5_DATASET_SIZE = {"mnist": 60000, "cifar10": 50000}


def build_table5_summary(
    algorithms: Optional[List[str]] = None,
    models: Optional[List[str]] = None,
    measured_accuracy: Optional[Dict[str, Dict[str, float]]] = None,
    cost_model: Optional[TrainingCostModel] = None,
    batch_size: int = 32,
) -> Table5Summary:
    """Build the full Table V style summary from the analytical cost model.

    ``measured_accuracy`` maps model row name → algorithm → accuracy in
    percent (from actually training the mini variants); if omitted, only the
    paper accuracies are attached.
    """
    algorithms = list(algorithms) if algorithms else list(ALL_ALGORITHMS)
    models = list(models) if models else list(PAPER_BENCHMARKS)
    cost_model = cost_model or TrainingCostModel()
    measured_accuracy = measured_accuracy or {}

    summary = Table5Summary()
    for model_row in models:
        benchmark = PAPER_BENCHMARKS[model_row]
        bundle = build_model(benchmark["full"])
        profile: ModelProfile = profile_bundle(bundle, batch_size=1)
        dataset_size = TABLE5_DATASET_SIZE[benchmark["dataset"]]
        for algorithm in algorithms:
            estimate = cost_model.estimate(
                profile,
                algorithm,
                epochs=TABLE5_EPOCHS.get(algorithm),
                dataset_size=dataset_size,
                batch_size=batch_size,
            )
            paper_cost = PAPER_TABLE5_COST.get(model_row, {}).get(algorithm)
            summary.rows.append(
                SummaryRow(
                    model=model_row,
                    algorithm=algorithm,
                    paper_accuracy=PAPER_TABLE5_ACCURACY[model_row][algorithm],
                    estimate=estimate,
                    measured_accuracy=measured_accuracy.get(model_row, {}).get(
                        algorithm
                    ),
                    paper_time_s=paper_cost[0] if paper_cost else None,
                    paper_energy_j=paper_cost[1] if paper_cost else None,
                    paper_memory_mb=paper_cost[2] if paper_cost else None,
                )
            )
    return summary
