"""Parameter sweeps over the hardware cost model.

The paper evaluates one operating point (batch 32, the board's default power
mode).  Edge deployments usually need to know how the FF-INT8 advantage moves
with the knobs they actually control, so this module provides structured
sweeps over batch size and epoch budget, reusing the calibrated
:class:`TrainingCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.hardware.cost_model import TrainingCostEstimate, TrainingCostModel
from repro.hardware.op_counter import ModelProfile


@dataclass
class SweepPoint:
    """One (parameter value, algorithm) cell of a sweep."""

    value: float
    algorithm: str
    estimate: TrainingCostEstimate

    def as_dict(self) -> dict:
        """JSON-serializable cell."""
        return {
            "value": self.value,
            "algorithm": self.algorithm,
            "time_s": self.estimate.time_s,
            "energy_j": self.estimate.energy_j,
            "memory_mb": self.estimate.memory_mb,
        }


@dataclass
class SweepResult:
    """All cells of one sweep plus convenience accessors."""

    parameter: str
    model_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def values(self) -> List[float]:
        """Distinct swept parameter values, in order of first appearance."""
        seen: List[float] = []
        for point in self.points:
            if point.value not in seen:
                seen.append(point.value)
        return seen

    def series(self, algorithm: str, metric: str = "time_s") -> List[float]:
        """Metric series for one algorithm across the swept values."""
        if metric not in ("time_s", "energy_j", "memory_mb"):
            raise ValueError(f"unknown metric {metric!r}")
        series = []
        for value in self.values():
            for point in self.points:
                if point.value == value and point.algorithm == algorithm:
                    series.append(getattr(point.estimate, metric))
                    break
        return series

    def savings(
        self, target: str, reference: str, metric: str = "time_s"
    ) -> Dict[float, float]:
        """Relative saving of ``target`` vs ``reference`` per swept value."""
        target_series = self.series(target, metric)
        reference_series = self.series(reference, metric)
        return {
            value: 100.0 * (1.0 - tgt / ref)
            for value, tgt, ref in zip(self.values(), target_series,
                                       reference_series)
            if ref > 0
        }

    def as_dict(self) -> dict:
        """JSON-serializable sweep."""
        return {
            "parameter": self.parameter,
            "model": self.model_name,
            "points": [point.as_dict() for point in self.points],
        }


def sweep_batch_size(
    profile: ModelProfile,
    batch_sizes: Sequence[int] = (8, 16, 32, 64, 128),
    algorithms: Sequence[str] = ("BP-FP32", "BP-GDAI8", "FF-INT8"),
    epochs: Optional[Dict[str, int]] = None,
    dataset_size: int = 50000,
    cost_model: Optional[TrainingCostModel] = None,
) -> SweepResult:
    """Estimate every algorithm at several batch sizes.

    Larger batches amortize per-batch kernel overheads but grow the stored
    activation graph for backpropagation — FF's memory advantage therefore
    widens with batch size.
    """
    cost_model = cost_model or TrainingCostModel()
    epochs = epochs or {}
    result = SweepResult(parameter="batch_size", model_name=profile.model_name)
    for batch_size in batch_sizes:
        if batch_size <= 0:
            raise ValueError(f"batch sizes must be positive, got {batch_size}")
        for algorithm in algorithms:
            estimate = cost_model.estimate(
                profile, algorithm, epochs=epochs.get(algorithm),
                dataset_size=dataset_size, batch_size=batch_size,
            )
            result.points.append(
                SweepPoint(value=float(batch_size), algorithm=algorithm,
                           estimate=estimate)
            )
    return result


def sweep_epochs(
    profile: ModelProfile,
    ff_epoch_grid: Sequence[int] = (10, 20, 30, 40, 60),
    bp_epochs: int = 30,
    reference: str = "BP-GDAI8",
    dataset_size: int = 50000,
    batch_size: int = 32,
    cost_model: Optional[TrainingCostModel] = None,
) -> SweepResult:
    """How many extra FF-INT8 epochs fit inside the reference's budget.

    The paper's efficiency argument is that FF-INT8's cheaper epochs buy the
    extra epochs it needs to converge; this sweep exposes the break-even
    point explicitly.
    """
    cost_model = cost_model or TrainingCostModel()
    result = SweepResult(parameter="ff_epochs", model_name=profile.model_name)
    reference_estimate = cost_model.estimate(
        profile, reference, epochs=bp_epochs, dataset_size=dataset_size,
        batch_size=batch_size,
    )
    for ff_epochs in ff_epoch_grid:
        if ff_epochs <= 0:
            raise ValueError(f"epoch counts must be positive, got {ff_epochs}")
        estimate = cost_model.estimate(
            profile, "FF-INT8", epochs=ff_epochs, dataset_size=dataset_size,
            batch_size=batch_size,
        )
        result.points.append(
            SweepPoint(value=float(ff_epochs), algorithm="FF-INT8",
                       estimate=estimate)
        )
        result.points.append(
            SweepPoint(value=float(ff_epochs), algorithm=reference,
                       estimate=reference_estimate)
        )
    return result


def breakeven_ff_epochs(sweep: SweepResult, reference: str = "BP-GDAI8") -> Optional[float]:
    """Largest FF epoch count whose total time stays below the reference's."""
    breakeven = None
    for value in sweep.values():
        ff_time = sweep.series("FF-INT8", "time_s")[sweep.values().index(value)]
        ref_time = sweep.series(reference, "time_s")[sweep.values().index(value)]
        if ff_time <= ref_time:
            breakeven = value
    return breakeven
