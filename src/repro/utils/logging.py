"""Minimal structured logging for training runs.

Experiments log one line per epoch; the default handler writes to stderr so
that benchmark output (tables) on stdout stays machine-readable.
"""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
_CONFIGURED = False


def get_logger(name: str = "repro", level: int = logging.INFO) -> logging.Logger:
    """Return a library logger, configuring the root handler on first use."""
    global _CONFIGURED
    if not _CONFIGURED:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        root = logging.getLogger("repro")
        root.addHandler(handler)
        root.setLevel(level)
        root.propagate = False
        _CONFIGURED = True
    return logging.getLogger(name)
