"""Serialization helpers for experiment records and model checkpoints.

Model parameters are stored as ``.npz`` archives; experiment metadata and
result tables are stored as JSON with NumPy scalars coerced to native types.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

PathLike = Union[str, Path]

# Checkpoints and inference artifacts are written as a tensor archive plus a
# metadata sidecar sharing one base path.
ARCHIVE_SUFFIXES = (".npz", ".json")


def archive_base(path: PathLike) -> Path:
    """Strip a trailing archive suffix; any other dotted name is kept whole."""
    path = Path(path)
    return path.with_suffix("") if path.suffix in ARCHIVE_SUFFIXES else path


def archive_path(base: PathLike, suffix: str) -> Path:
    """Append an archive suffix without mangling dots in the filename.

    ``Path.with_suffix`` would turn ``model.v1`` into ``model.npz``, silently
    colliding distinct artifacts; this keeps it as ``model.v1.npz``.
    """
    base = Path(base)
    return base.parent / (base.name + suffix)


def _to_jsonable(value: Any) -> Any:
    """Recursively convert NumPy containers/scalars into JSON-native types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(key): _to_jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    return value


def save_json(payload: Mapping[str, Any], path: PathLike) -> Path:
    """Write ``payload`` to ``path`` as indented JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(_to_jsonable(dict(payload)), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a JSON file written by :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_parameters(params: Mapping[str, np.ndarray], path: PathLike) -> Path:
    """Save a mapping of parameter name to array as a compressed ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{key: np.asarray(val) for key, val in params.items()})
    return path


def load_parameters(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a parameter archive saved by :func:`save_parameters`."""
    with np.load(Path(path)) as archive:
        return {key: archive[key].copy() for key in archive.files}
