"""Machine/environment metadata attached to benchmark records.

Wall-clock benchmark numbers are meaningless without the hardware and BLAS
they were measured on; every ``benchmarks/results/*.json`` writer and the
CLI ``serve-bench`` summary attach :func:`machine_meta` so records from
different machines can be told apart.
"""

from __future__ import annotations

import os
import platform
from typing import Any, Dict, Optional

import numpy as np


def _cpu_model() -> str:
    """Best-effort CPU model string (the arch alone cannot tell two x86_64
    hosts apart, but wall-clock crossovers differ between them)."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"


def _blas_info() -> Dict[str, Any]:
    """Best-effort description of the BLAS NumPy links against."""
    try:
        config = np.show_config(mode="dicts")  # numpy >= 1.25
        blas = (config or {}).get("Build Dependencies", {}).get("blas", {})
        info = {
            key: blas[key]
            for key in ("name", "version", "openblas configuration")
            if blas.get(key)
        }
        if info:
            return info
    except Exception:
        pass
    try:  # legacy numpy exposes distutils-style info dicts
        from numpy import __config__ as np_config

        libraries = getattr(np_config, "blas_opt_info", {}).get("libraries")
        if libraries:
            return {"name": ",".join(libraries)}
    except Exception:
        pass
    return {"name": "unknown"}


def machine_meta(backend: Optional[object] = None) -> Dict[str, Any]:
    """Context block for a wall-clock measurement (CPU, BLAS, backend).

    ``backend`` names the kernel backend the numbers were measured on; when
    omitted the ambient runtime default is recorded.
    """
    from repro.runtime.dispatch import default_backend_name

    if backend is None:
        backend_name = default_backend_name()
    else:
        backend_name = getattr(backend, "name", backend)
    return {
        "cpu_count": os.cpu_count(),
        "cpu_model": _cpu_model(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "blas": _blas_info(),
        "backend": str(backend_name),
        "parallel_workers_env": os.environ.get("REPRO_PARALLEL_WORKERS"),
        "shard_workers_env": os.environ.get("REPRO_SHARD_WORKERS"),
    }


#: meta fields that identify the machine + numeric stack a wall-clock
#: number was measured on (plus the BLAS build, compared separately).
#: Worker-count overrides belong here too: a record measured with a
#: constrained pool does not speak for the same machine at full width.
SAME_MACHINE_KEYS = (
    "cpu_count", "cpu_model", "machine", "numpy",
    "parallel_workers_env", "shard_workers_env",
)


def same_machine(meta_a: Optional[Dict[str, Any]],
                 meta_b: Optional[Dict[str, Any]]) -> bool:
    """True when two ``meta`` blocks describe one machine + numeric stack.

    This is the single definition of "are these wall-clock numbers
    comparable / do they speak for this CPU": benchmark baseline diffing
    and auto-pinning staleness both route through it, so the rule cannot
    drift between them.
    """
    meta_a, meta_b = meta_a or {}, meta_b or {}
    for key in SAME_MACHINE_KEYS:
        if meta_a.get(key) != meta_b.get(key):
            return False
    blas_a = (meta_a.get("blas") or {}).get("name")
    blas_b = (meta_b.get("blas") or {}).get("name")
    return blas_a == blas_b


__all__ = ["machine_meta", "same_machine", "SAME_MACHINE_KEYS"]
