"""Machine/environment metadata attached to benchmark records.

Wall-clock benchmark numbers are meaningless without the hardware and BLAS
they were measured on; every ``benchmarks/results/*.json`` writer and the
CLI ``serve-bench`` summary attach :func:`machine_meta` so records from
different machines can be told apart.
"""

from __future__ import annotations

import os
import platform
from typing import Any, Dict, Optional

import numpy as np


def _blas_info() -> Dict[str, Any]:
    """Best-effort description of the BLAS NumPy links against."""
    try:
        config = np.show_config(mode="dicts")  # numpy >= 1.25
        blas = (config or {}).get("Build Dependencies", {}).get("blas", {})
        info = {
            key: blas[key]
            for key in ("name", "version", "openblas configuration")
            if blas.get(key)
        }
        if info:
            return info
    except Exception:
        pass
    try:  # legacy numpy exposes distutils-style info dicts
        from numpy import __config__ as np_config

        libraries = getattr(np_config, "blas_opt_info", {}).get("libraries")
        if libraries:
            return {"name": ",".join(libraries)}
    except Exception:
        pass
    return {"name": "unknown"}


def machine_meta(backend: Optional[object] = None) -> Dict[str, Any]:
    """Context block for a wall-clock measurement (CPU, BLAS, backend).

    ``backend`` names the kernel backend the numbers were measured on; when
    omitted the ambient runtime default is recorded.
    """
    from repro.runtime.dispatch import default_backend_name

    if backend is None:
        backend_name = default_backend_name()
    else:
        backend_name = getattr(backend, "name", backend)
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "blas": _blas_info(),
        "backend": str(backend_name),
        "parallel_workers_env": os.environ.get("REPRO_PARALLEL_WORKERS"),
    }


__all__ = ["machine_meta"]
