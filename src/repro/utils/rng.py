"""Deterministic random-number helpers.

Every stochastic component of the library (weight initialization, stochastic
rounding, synthetic dataset generation, data shuffling) draws from an explicit
:class:`numpy.random.Generator` so that experiments are reproducible from a
single integer seed.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Sequence, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def new_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, or an existing generator
        (returned unchanged so callers can pass either form).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Child generators are created through :class:`numpy.random.SeedSequence`
    spawning so that streams do not overlap even for adjacent seeds.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


@contextlib.contextmanager
def temp_seed(seed: int) -> Iterator[None]:
    """Temporarily seed NumPy's legacy global RNG.

    Only used when interfacing with third-party code that relies on the
    global state; library code should prefer explicit generators.
    """
    state = np.random.get_state()
    np.random.seed(seed)
    try:
        yield
    finally:
        np.random.set_state(state)


def sample_indices(
    rng: np.random.Generator,
    population: int,
    size: int,
    replace: bool = False,
    exclude: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Sample ``size`` indices from ``range(population)``.

    ``exclude`` removes candidate indices before sampling, which is used by
    the negative-sample generator to avoid drawing the true label.
    """
    candidates = np.arange(population)
    if exclude is not None:
        mask = np.ones(population, dtype=bool)
        mask[np.asarray(exclude, dtype=int)] = False
        candidates = candidates[mask]
    if not replace and size > candidates.size:
        raise ValueError(
            f"cannot sample {size} unique indices from {candidates.size} candidates"
        )
    return rng.choice(candidates, size=size, replace=replace)
