"""General utilities shared across the FF-INT8 reproduction.

The helpers here are intentionally small and dependency-free: deterministic
random-number management (:mod:`repro.utils.rng`), structured logging
(:mod:`repro.utils.logging`), light-weight serialization of training
artifacts (:mod:`repro.utils.serialization`), and machine metadata for
benchmark records (:mod:`repro.utils.sysinfo`).
"""

from repro.utils.logging import get_logger
from repro.utils.rng import new_rng, spawn_rngs, temp_seed
from repro.utils.serialization import load_json, save_json
from repro.utils.sysinfo import machine_meta

__all__ = [
    "get_logger",
    "new_rng",
    "spawn_rngs",
    "temp_seed",
    "load_json",
    "save_json",
    "machine_meta",
]
