"""Normalization layers.

BatchNorm is required by ResNet-18, MobileNet-V2 and EfficientNet-B0.
``FFLayerNorm`` implements the sample-wise L2 length normalization the
Forward-Forward algorithm applies between layers so that the goodness of a
layer cannot be inferred trivially from the magnitude of its input.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class _BatchNormBase(Module):
    """Shared machinery for 1-D and 2-D batch normalization."""

    def __init__(
        self, num_features: int, eps: float = 1e-5, momentum: float = 0.1
    ) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        self.num_features = num_features
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(init.ones((num_features,)), "gamma")
        self.beta = Parameter(init.zeros((num_features,)), "beta")
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)

    def _reduce_axes(self, x: np.ndarray) -> tuple[int, ...]:
        raise NotImplementedError

    def _broadcast(self, stat: np.ndarray, ndim: int) -> np.ndarray:
        shape = [1] * ndim
        shape[1] = self.num_features
        return stat.reshape(shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes = self._reduce_axes(x)
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} channels/features, got {x.shape[1]}"
            )
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._broadcast(mean, x.ndim)) * self._broadcast(inv_std, x.ndim)
        out = self._broadcast(self.gamma.data, x.ndim) * x_hat + self._broadcast(
            self.beta.data, x.ndim
        )
        self._store(x_hat=x_hat, inv_std=inv_std)
        return out.astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat = self._load("x_hat")
        inv_std = self._load("inv_std")
        axes = self._reduce_axes(grad_output)
        count = float(np.prod([grad_output.shape[axis] for axis in axes]))

        grad_gamma = np.sum(grad_output * x_hat, axis=axes)
        grad_beta = np.sum(grad_output, axis=axes)
        self.gamma.accumulate_grad(grad_gamma)
        self.beta.accumulate_grad(grad_beta)

        gamma_b = self._broadcast(self.gamma.data, grad_output.ndim)
        inv_std_b = self._broadcast(inv_std, grad_output.ndim)
        grad_xhat = grad_output * gamma_b
        mean_grad_xhat = self._broadcast(grad_xhat.mean(axis=axes), grad_output.ndim)
        mean_grad_xhat_xhat = self._broadcast(
            (grad_xhat * x_hat).mean(axis=axes), grad_output.ndim
        )
        grad_input = inv_std_b * (
            grad_xhat - mean_grad_xhat - x_hat * mean_grad_xhat_xhat
        )
        del count  # count is folded into the means above
        return grad_input.astype(np.float32)

    def extra_repr(self) -> str:
        return f"num_features={self.num_features}, eps={self.eps}, momentum={self.momentum}"


class BatchNorm1d(_BatchNormBase):
    """Batch normalization over ``(N, F)`` feature tensors."""

    def _reduce_axes(self, x: np.ndarray) -> tuple[int, ...]:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, F) input, got shape {x.shape}")
        return (0,)


class BatchNorm2d(_BatchNormBase):
    """Batch normalization over ``(N, C, H, W)`` image tensors."""

    def _reduce_axes(self, x: np.ndarray) -> tuple[int, ...]:
        if x.ndim != 4:
            raise ValueError(
                f"BatchNorm2d expects (N, C, H, W) input, got shape {x.shape}"
            )
        return (0, 2, 3)


class FFLayerNorm(Module):
    """Sample-wise L2 length normalization used between Forward-Forward layers.

    Each sample (flattened across all non-batch dimensions) is scaled to unit
    norm.  The backward pass implements the exact Jacobian-vector product,
    which matters when the look-ahead loss propagates goodness signals across
    layer boundaries.
    """

    def __init__(self, eps: float = 1e-8) -> None:
        super().__init__()
        self.eps = float(eps)

    def forward(self, x: np.ndarray) -> np.ndarray:
        flat = x.reshape(x.shape[0], -1)
        norm = np.sqrt(np.sum(np.square(flat), axis=1, keepdims=True)) + self.eps
        out_flat = flat / norm
        self._store(out_flat=out_flat, norm=norm, shape=np.array(x.shape))
        return out_flat.reshape(x.shape).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out_flat = self._load("out_flat")
        norm = self._load("norm")
        shape = tuple(int(v) for v in self._load("shape"))
        grad_flat = grad_output.reshape(grad_output.shape[0], -1)
        dot = np.sum(grad_flat * out_flat, axis=1, keepdims=True)
        grad_input = (grad_flat - out_flat * dot) / norm
        return grad_input.reshape(shape).astype(np.float32)

    def extra_repr(self) -> str:
        return f"eps={self.eps}"
