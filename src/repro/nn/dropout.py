"""Inverted dropout regularization."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import RngLike, new_rng


class Dropout(Module):
    """Randomly zero a fraction ``p`` of activations during training.

    Uses inverted scaling so that inference requires no rescaling.  A module
    level generator keeps the mask sequence reproducible per seed.
    """

    def __init__(self, p: float = 0.5, rng: RngLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must lie in [0, 1), got {p}")
        self.p = float(p)
        self.rng = new_rng(rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        self._store(mask=mask)
        return (x * mask).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0 or "mask" not in self._cache:
            return grad_output
        mask = self._load("mask")
        return (grad_output * mask).astype(np.float32)

    def extra_repr(self) -> str:
        return f"p={self.p}"
