"""Container modules: sequential chains, residual blocks, SE gates.

Residual-style containers are first-class citizens here because the paper's
"look-ahead" scheme is motivated precisely by the FF algorithm's difficulty
with residual topologies (Section IV-C and Figure 6b).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

import numpy as np

from repro.nn.module import Identity, Module


class Sequential(Module):
    """Run child modules in order; backward runs them in reverse.

    ``inter_layer_grad_transform`` (optional callable) is applied to the
    gradient passed between consecutive children during the backward pass.
    The INT8 backpropagation baselines use it to quantize the back-propagated
    error signal at every layer boundary, which is where the paper's
    quantization-error accumulation (Section IV-A) happens.
    """

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layer_order: List[str] = []
        self.inter_layer_grad_transform = None
        for index, layer in enumerate(layers):
            self.append(layer, name=str(index))

    def append(self, layer: Module, name: Optional[str] = None) -> "Sequential":
        """Add a layer at the end of the chain."""
        if name is None:
            name = str(len(self._layer_order))
        self.add_module(name, layer)
        self._layer_order.append(name)
        return self

    def layers(self) -> List[Module]:
        """Child layers in execution order."""
        return [self._modules[name] for name in self._layer_order]

    def __len__(self) -> int:
        return len(self._layer_order)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers())

    def __getitem__(self, index: int) -> Module:
        return self.layers()[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers():
            out = layer(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        layers = self.layers()
        for index, layer in enumerate(reversed(layers)):
            grad = layer.backward(grad)
            is_last = index == len(layers) - 1
            if self.inter_layer_grad_transform is not None and not is_last:
                grad = self.inter_layer_grad_transform(grad)
        return grad


class ResidualAdd(Module):
    """``y = branch(x) + shortcut(x)`` with exact gradient splitting.

    ``shortcut`` defaults to identity; ResNet downsampling blocks pass a
    1x1 convolution + BatchNorm projection instead.
    """

    def __init__(self, branch: Module, shortcut: Optional[Module] = None) -> None:
        super().__init__()
        self.branch = branch
        self.shortcut = shortcut if shortcut is not None else Identity()

    def forward(self, x: np.ndarray) -> np.ndarray:
        return (self.branch(x) + self.shortcut(x)).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_branch = self.branch.backward(grad_output)
        grad_shortcut = self.shortcut.backward(grad_output)
        return (grad_branch + grad_shortcut).astype(np.float32)


class SqueezeExcite(Module):
    """Squeeze-and-excitation channel gate used by EfficientNet MBConv blocks.

    ``y = x * sigmoid(W2 @ act(W1 @ mean_hw(x)))`` with per-channel scaling.
    """

    def __init__(self, gate: Module) -> None:
        super().__init__()
        # ``gate`` maps the (N, C) squeezed descriptor to per-channel weights
        # in [0, 1]; built by the model factory from Linear/activation layers.
        self.gate = gate

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"SqueezeExcite expects (N, C, H, W), got {x.shape}")
        squeezed = x.mean(axis=(2, 3))
        scale = self.gate(squeezed)
        self._store(x=x, scale=scale)
        return (x * scale[:, :, None, None]).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._load("x")
        scale = self._load("scale")
        height, width = x.shape[2], x.shape[3]
        # Gradient through the multiplicative gate.
        grad_x_direct = grad_output * scale[:, :, None, None]
        grad_scale = np.sum(grad_output * x, axis=(2, 3))
        grad_squeezed = self.gate.backward(grad_scale)
        grad_x_gate = (
            grad_squeezed[:, :, None, None]
            * np.ones_like(x)
            / float(height * width)
        )
        return (grad_x_direct + grad_x_gate).astype(np.float32)


def chain(layers: Iterable[Module]) -> Sequential:
    """Build a :class:`Sequential` from an iterable of layers."""
    model = Sequential()
    for layer in layers:
        model.append(layer)
    return model
