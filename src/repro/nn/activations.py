"""Element-wise activation layers.

ReLU for MLP/ResNet, ReLU6 for MobileNet-V2, SiLU (swish) and Sigmoid for
EfficientNet-B0's MBConv/SE blocks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import sigmoid
from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = x > 0
        self._store(mask=mask)
        return np.where(mask, x, 0.0).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = self._load("mask")
        return (grad_output * mask).astype(np.float32)


class ReLU6(Module):
    """ReLU clipped at 6, as used by MobileNet-V2."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = (x > 0) & (x < 6.0)
        self._store(mask=mask)
        return np.clip(x, 0.0, 6.0).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = self._load("mask")
        return (grad_output * mask).astype(np.float32)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = x > 0
        self._store(mask=mask)
        return np.where(mask, x, self.negative_slope * x).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = self._load("mask")
        scale = np.where(mask, 1.0, self.negative_slope)
        return (grad_output * scale).astype(np.float32)

    def extra_repr(self) -> str:
        return f"negative_slope={self.negative_slope}"


class Sigmoid(Module):
    """Logistic activation (used by squeeze-and-excitation gates)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = sigmoid(x)
        self._store(out=out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = self._load("out")
        return (grad_output * out * (1.0 - out)).astype(np.float32)


class SiLU(Module):
    """Sigmoid-weighted linear unit (swish), EfficientNet's activation."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        sig = sigmoid(x)
        self._store(x=x, sig=sig)
        return (x * sig).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._load("x")
        sig = self._load("sig")
        grad = sig * (1.0 + x * (1.0 - sig))
        return (grad_output * grad).astype(np.float32)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(x)
        self._store(out=out)
        return out.astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = self._load("out")
        return (grad_output * (1.0 - out * out)).astype(np.float32)
