"""Spatial pooling and reshaping layers."""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.nn.functional import conv_output_size
from repro.nn.module import Module

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (value, value)


class MaxPool2d(Module):
    """Max pooling over non-overlapping or strided windows."""

    def __init__(self, kernel_size: IntPair, stride: IntPair = None, padding: IntPair = 0):
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride) if stride is not None else self.kernel_size
        self.padding = _pair(padding)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"MaxPool2d expects (N, C, H, W), got shape {x.shape}")
        batch, channels, height, width = x.shape
        kernel_h, kernel_w = self.kernel_size
        stride_h, stride_w = self.stride
        pad_h, pad_w = self.padding
        out_h = conv_output_size(height, kernel_h, stride_h, pad_h)
        out_w = conv_output_size(width, kernel_w, stride_w, pad_w)
        padded = np.pad(
            x,
            ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)),
            mode="constant",
            constant_values=-np.inf,
        )
        windows = np.empty(
            (batch, channels, out_h, out_w, kernel_h * kernel_w), dtype=x.dtype
        )
        for row in range(kernel_h):
            for col in range(kernel_w):
                windows[..., row * kernel_w + col] = padded[
                    :,
                    :,
                    row : row + stride_h * out_h : stride_h,
                    col : col + stride_w * out_w : stride_w,
                ]
        argmax = windows.argmax(axis=-1)
        out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]
        self._store(argmax=argmax, input_shape=np.array(x.shape))
        return out.astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        argmax = self._load("argmax")
        input_shape = tuple(int(v) for v in self._load("input_shape"))
        batch, channels, height, width = input_shape
        kernel_h, kernel_w = self.kernel_size
        stride_h, stride_w = self.stride
        pad_h, pad_w = self.padding
        out_h, out_w = grad_output.shape[2], grad_output.shape[3]
        grad_padded = np.zeros(
            (batch, channels, height + 2 * pad_h, width + 2 * pad_w), dtype=np.float32
        )
        rows_in_window, cols_in_window = np.divmod(argmax, kernel_w)
        batch_idx, chan_idx, out_row, out_col = np.indices(
            (batch, channels, out_h, out_w)
        )
        abs_rows = out_row * stride_h + rows_in_window
        abs_cols = out_col * stride_w + cols_in_window
        np.add.at(
            grad_padded,
            (batch_idx, chan_idx, abs_rows, abs_cols),
            grad_output,
        )
        if pad_h == 0 and pad_w == 0:
            return grad_padded
        return grad_padded[:, :, pad_h : pad_h + height, pad_w : pad_w + width]

    def extra_repr(self) -> str:
        return (
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}"
        )


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, producing ``(N, C)``."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(
                f"GlobalAvgPool2d expects (N, C, H, W), got shape {x.shape}"
            )
        self._store(input_shape=np.array(x.shape))
        return x.mean(axis=(2, 3)).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape = tuple(int(v) for v in self._load("input_shape"))
        _, _, height, width = input_shape
        scale = 1.0 / (height * width)
        grad = grad_output[:, :, None, None] * scale
        return np.broadcast_to(grad, input_shape).astype(np.float32)


class AvgPool2d(Module):
    """Average pooling with a fixed kernel and stride."""

    def __init__(self, kernel_size: IntPair, stride: IntPair = None):
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride) if stride is not None else self.kernel_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"AvgPool2d expects (N, C, H, W), got shape {x.shape}")
        batch, channels, height, width = x.shape
        kernel_h, kernel_w = self.kernel_size
        stride_h, stride_w = self.stride
        out_h = conv_output_size(height, kernel_h, stride_h, 0)
        out_w = conv_output_size(width, kernel_w, stride_w, 0)
        out = np.zeros((batch, channels, out_h, out_w), dtype=np.float32)
        for row in range(kernel_h):
            for col in range(kernel_w):
                out += x[
                    :,
                    :,
                    row : row + stride_h * out_h : stride_h,
                    col : col + stride_w * out_w : stride_w,
                ]
        out /= kernel_h * kernel_w
        self._store(input_shape=np.array(x.shape))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape = tuple(int(v) for v in self._load("input_shape"))
        batch, channels, height, width = input_shape
        kernel_h, kernel_w = self.kernel_size
        stride_h, stride_w = self.stride
        out_h, out_w = grad_output.shape[2], grad_output.shape[3]
        grad_input = np.zeros(input_shape, dtype=np.float32)
        scaled = grad_output / (kernel_h * kernel_w)
        for row in range(kernel_h):
            for col in range(kernel_w):
                grad_input[
                    :,
                    :,
                    row : row + stride_h * out_h : stride_h,
                    col : col + stride_w * out_w : stride_w,
                ] += scaled
        return grad_input

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class Flatten(Module):
    """Collapse all non-batch dimensions into one feature dimension."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._store(input_shape=np.array(x.shape))
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape = tuple(int(v) for v in self._load("input_shape"))
        return grad_output.reshape(input_shape)
