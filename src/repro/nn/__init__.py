"""NumPy deep-learning substrate used by every training algorithm in the repo.

The package provides Caffe-style modules with explicit ``forward``/``backward``
methods and layer-owned activation caches.  This design makes the memory and
compute accounting of backpropagation versus Forward-Forward training
measurable rather than implicit, which is what the paper's efficiency claims
rest on.
"""

from repro.nn.activations import LeakyReLU, ReLU, ReLU6, Sigmoid, SiLU, Tanh
from repro.nn.containers import ResidualAdd, Sequential, SqueezeExcite, chain
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.losses import CrossEntropyLoss, MSELoss, accuracy
from repro.nn.module import Identity, Module
from repro.nn.norm import BatchNorm1d, BatchNorm2d, FFLayerNorm
from repro.nn.parameter import Parameter
from repro.nn.pooling import AvgPool2d, Flatten, GlobalAvgPool2d, MaxPool2d

__all__ = [
    "Module",
    "Identity",
    "Parameter",
    "Linear",
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "FFLayerNorm",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "SiLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Sequential",
    "ResidualAdd",
    "SqueezeExcite",
    "chain",
    "CrossEntropyLoss",
    "MSELoss",
    "accuracy",
]
