"""Trainable parameter container.

A :class:`Parameter` pairs a value array with its gradient accumulator.  The
substrate uses explicit, layer-owned gradients (Caffe-style) instead of a
taped autograd graph: every :class:`~repro.nn.module.Module` computes its own
backward pass and writes ``param.grad``.  This makes the memory accounting of
backpropagation vs. Forward-Forward explicit and auditable, which is central
to the paper's memory-footprint claims.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class Parameter:
    """A trainable tensor with an explicit gradient buffer."""

    __slots__ = ("data", "grad", "name", "requires_grad")

    def __init__(
        self,
        data: np.ndarray,
        name: str = "",
        requires_grad: bool = True,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self.requires_grad = requires_grad

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying value array."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the gradient accumulator to ``None`` (lazily re-allocated)."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the gradient buffer, allocating it if needed."""
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name or '<unnamed>'} shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def copy_(self, values: np.ndarray) -> None:
        """Overwrite the parameter value in place (shape-checked)."""
        values = np.asarray(values, dtype=np.float32)
        if values.shape != self.data.shape:
            raise ValueError(
                f"cannot copy values of shape {values.shape} into parameter of "
                f"shape {self.data.shape}"
            )
        self.data[...] = values

    def nbytes(self, bytes_per_element: int = 4) -> int:
        """Memory footprint of the value array at the given element width."""
        return self.size * bytes_per_element

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
