"""Fully-connected layer with optional INT8 forward/weight-gradient kernels.

The same :class:`Linear` module serves three training regimes:

* FP32 backpropagation (baseline),
* INT8 backpropagation baselines (gradients quantized by the trainer),
* FF-INT8, where the forward matmul and the weight-gradient matmul are
  executed with INT8 operands and INT32 accumulation when an
  :class:`~repro.quant.qconfig.QuantConfig` is attached.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.runtime import dispatch
from repro.utils.rng import RngLike, new_rng


class Linear(Module):
    """Affine transform ``y = x @ W.T + b`` over the last dimension."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"feature sizes must be positive, got in={in_features}, "
                f"out={out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        rng = new_rng(rng)
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng=rng), name="weight"
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(init.zeros((out_features,)), name="bias")
        # Optional quantized execution engine, attached by the quantization
        # preparation pass (see repro.quant.prepare).
        self.quant_engine = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            x = x.reshape(x.shape[0], -1)
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected {self.in_features} input features, got {x.shape[1]}"
            )
        self._store(x=x)
        if self.quant_engine is not None:
            out = self.quant_engine.linear_forward(x, self.weight.data)
        else:
            out = dispatch.matmul(x, self.weight.data.T)
        if self.bias is not None:
            out = out + self.bias.data
        return out.astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._load("x")
        grad_output = np.asarray(grad_output, dtype=np.float32)
        if self.quant_engine is not None:
            grad_weight = self.quant_engine.linear_weight_grad(grad_output, x)
        else:
            grad_weight = dispatch.matmul(grad_output.T, x)
        self.weight.accumulate_grad(grad_weight)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        return dispatch.matmul(grad_output, self.weight.data).astype(np.float32)

    def local_weight_grad(
        self, grad_output: np.ndarray, x: np.ndarray
    ) -> np.ndarray:
        """Weight gradient from explicit activations (Forward-Forward path).

        FF never stores a cross-layer graph; the trainer passes the layer
        input it already has in hand instead of relying on the cache.
        """
        if self.quant_engine is not None:
            return self.quant_engine.linear_weight_grad(grad_output, x)
        return dispatch.matmul(grad_output.T, x).astype(np.float32)

    def extra_repr(self) -> str:
        return (
            f"in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None}"
        )
