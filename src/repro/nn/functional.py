"""Stateless numerical primitives used by layers, losses and trainers.

This module contains the im2col/col2im machinery behind convolution layers,
numerically-stable softmax/log-softmax, and small helpers (one-hot encoding,
L2 length normalization) shared between the backprop and Forward-Forward
training paths.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

try:  # NumPy >= 1.20
    from numpy.lib.stride_tricks import sliding_window_view
except ImportError:  # pragma: no cover - ancient NumPy
    sliding_window_view = None


# --------------------------------------------------------------------------- #
# shape helpers
# --------------------------------------------------------------------------- #
def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size "
            f"(input={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N * out_h * out_w, C * kh * kw)`` patches.

    The column layout matches the weight reshape ``(out_c, C * kh * kw)`` used
    by :class:`repro.nn.conv.Conv2d`, so the convolution reduces to one GEMM —
    the same lowering that INT8 engines on edge devices use, which keeps the
    operation counting in :mod:`repro.hardware` faithful.

    Patch gathering goes through :func:`numpy.lib.stride_tricks.
    sliding_window_view` (one strided view + one copy at the final reshape)
    instead of a per-tap Python loop; both produce the identical array —
    every column element is a pure copy of an input element — so the choice
    is invisible to everything downstream.
    """
    batch, channels, height, width = x.shape
    kernel_h, kernel_w = kernel
    stride_h, stride_w = stride
    pad_h, pad_w = padding
    out_h = conv_output_size(height, kernel_h, stride_h, pad_h)
    out_w = conv_output_size(width, kernel_w, stride_w, pad_w)

    padded = np.pad(
        x, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)), mode="constant"
    )
    if sliding_window_view is not None:
        windows = sliding_window_view(
            padded, (kernel_h, kernel_w), axis=(2, 3)
        )[:, :, ::stride_h, ::stride_w]
        return np.ascontiguousarray(
            windows.transpose(0, 2, 3, 1, 4, 5)
        ).reshape(batch * out_h * out_w, channels * kernel_h * kernel_w)
    cols = np.empty(
        (batch, channels, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype
    )
    for row in range(kernel_h):
        row_end = row + stride_h * out_h
        for col in range(kernel_w):
            col_end = col + stride_w * out_w
            cols[:, :, row, col, :, :] = padded[
                :, :, row:row_end:stride_h, col:col_end:stride_w
            ]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel_h * kernel_w
    )


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Fold patch columns back into ``(N, C, H, W)``, summing overlaps.

    This is the adjoint of :func:`im2col` and is used to propagate gradients
    to convolution inputs.
    """
    batch, channels, height, width = input_shape
    kernel_h, kernel_w = kernel
    stride_h, stride_w = stride
    pad_h, pad_w = padding
    out_h = conv_output_size(height, kernel_h, stride_h, pad_h)
    out_w = conv_output_size(width, kernel_w, stride_w, pad_w)

    cols = cols.reshape(batch, out_h, out_w, channels, kernel_h, kernel_w)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros(
        (batch, channels, height + 2 * pad_h, width + 2 * pad_w), dtype=cols.dtype
    )
    for row in range(kernel_h):
        row_end = row + stride_h * out_h
        for col in range(kernel_w):
            col_end = col + stride_w * out_w
            padded[:, :, row:row_end:stride_h, col:col_end:stride_w] += cols[
                :, :, row, col, :, :
            ]
    if pad_h == 0 and pad_w == 0:
        return padded
    return padded[:, :, pad_h : pad_h + height, pad_w : pad_w + width]


# --------------------------------------------------------------------------- #
# classification math
# --------------------------------------------------------------------------- #
def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels into ``(N, num_classes)`` float32."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def softplus(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(x))`` (used by the FF losses)."""
    return np.logaddexp(0.0, x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out.astype(np.float32)


def l2_normalize(x: np.ndarray, axis: int = -1, eps: float = 1e-8) -> np.ndarray:
    """Scale each sample to unit L2 norm.

    The Forward-Forward algorithm normalizes layer inputs so that the goodness
    (activity magnitude) of the previous layer cannot leak trivially into the
    next layer's goodness.
    """
    flat_axes = tuple(range(1, x.ndim)) if axis == -1 and x.ndim > 2 else (axis,)
    norm = np.sqrt(np.sum(np.square(x), axis=flat_axes, keepdims=True))
    return x / (norm + eps)


def flatten_batch(x: np.ndarray) -> np.ndarray:
    """Reshape ``(N, ...)`` into ``(N, features)`` without copying when possible."""
    return x.reshape(x.shape[0], -1)
