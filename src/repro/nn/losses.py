"""Loss functions for the backpropagation baselines.

Forward-Forward losses (goodness-based, Equations 1 and 2 of the paper) live
in :mod:`repro.core.losses`; this module covers the conventional supervised
losses the BP-FP32/INT8/UI8/GDAI8 baselines optimize.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient with
    respect to the logits (already divided by the batch size).
    """

    def __init__(self, num_classes: int) -> None:
        if num_classes <= 1:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        self.num_classes = num_classes

    def forward(
        self, logits: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Return ``(mean_loss, grad_logits)`` for a batch."""
        if logits.ndim != 2 or logits.shape[1] != self.num_classes:
            raise ValueError(
                f"logits must have shape (N, {self.num_classes}), got {logits.shape}"
            )
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != logits.shape[0]:
            raise ValueError(
                f"batch mismatch: logits {logits.shape[0]} vs labels {labels.shape[0]}"
            )
        batch = logits.shape[0]
        log_probs = log_softmax(logits, axis=1)
        loss = -float(np.mean(log_probs[np.arange(batch), labels]))
        probs = softmax(logits, axis=1)
        grad = (probs - one_hot(labels, self.num_classes)) / batch
        return loss, grad.astype(np.float32)

    __call__ = forward


class MSELoss:
    """Mean squared error against dense targets (used by regression tests)."""

    def forward(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Return ``(mean_loss, grad_predictions)``."""
        predictions = np.asarray(predictions, dtype=np.float32)
        targets = np.asarray(targets, dtype=np.float32)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets "
                f"{targets.shape}"
            )
        diff = predictions - targets
        loss = float(np.mean(diff * diff))
        grad = 2.0 * diff / diff.size
        return loss, grad.astype(np.float32)

    __call__ = forward


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    predictions = np.argmax(logits, axis=1)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if labels.size == 0:
        return 0.0
    return float(np.mean(predictions == labels))
