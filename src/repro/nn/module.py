"""Module base class for the NumPy deep-learning substrate.

Modules follow an explicit forward/backward contract:

* ``forward(x)`` computes the output and, while ``self.training`` is true and
  activation caching is enabled, stores whatever intermediate arrays the
  backward pass needs in ``self._cache``.
* ``backward(grad_output)`` consumes the cache, accumulates parameter
  gradients, and returns the gradient with respect to the module input.

Keeping the cache explicit (rather than hidden inside an autograd engine)
lets :mod:`repro.hardware.memory_model` measure exactly how many activation
bytes backpropagation must keep resident — the quantity the Forward-Forward
algorithm avoids.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.parameter import Parameter
from repro.runtime import instrument


class Module:
    """Base class for all neural-network layers and containers."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_cache", {})
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "cache_activations", True)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            if not value.name:
                value.name = name
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        """Explicitly register a parameter (used by container modules)."""
        self._parameters[name] = param
        if not param.name:
            param.name = name
        object.__setattr__(self, name, param)
        return param

    def add_module(self, name: str, module: "Module") -> "Module":
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)
        return module

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def children(self) -> Iterator["Module"]:
        """Iterate over direct child modules."""
        yield from self._modules.values()

    def modules(self) -> Iterator["Module"]:
        """Iterate over this module and all descendants (pre-order)."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Iterate over ``(qualified_name, parameter)`` pairs."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its descendants."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self, trainable_only: bool = True) -> int:
        """Total number of scalar parameters."""
        return sum(
            param.size
            for param in self.parameters()
            if param.requires_grad or not trainable_only
        )

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter names to copies of their values."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            params[name].copy_(values)

    # ------------------------------------------------------------------ #
    # training state
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects BatchNorm, Dropout, caching)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode recursively."""
        return self.train(False)

    def set_activation_caching(self, enabled: bool) -> "Module":
        """Enable/disable storing forward activations for the backward pass.

        Backpropagation trainers keep this on; Forward-Forward trainers turn
        it off for every layer except the one currently being trained, which
        is what produces the memory-footprint advantage measured in Table V.
        """
        for module in self.modules():
            object.__setattr__(module, "cache_activations", enabled)
        return self

    def zero_grad(self) -> None:
        """Clear parameter gradients for this module and descendants."""
        for param in self.parameters():
            param.zero_grad()

    def clear_cache(self) -> None:
        """Drop cached forward activations for this module and descendants."""
        for module in self.modules():
            module._cache.clear()

    def cached_activation_bytes(self) -> int:
        """Bytes currently held in forward caches (backprop graph footprint)."""
        total = 0
        for module in self.modules():
            for value in module._cache.values():
                if isinstance(value, np.ndarray):
                    total += value.nbytes
                elif isinstance(value, (list, tuple)):
                    total += sum(
                        item.nbytes for item in value if isinstance(item, np.ndarray)
                    )
        return total

    # ------------------------------------------------------------------ #
    # computation contract
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the module output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return the input gradient."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = self.forward(x)
        # The dispatch-layer instrumentation tap: profilers and op counters
        # observe every module forward here, whatever backend executes the
        # kernels inside.
        if instrument.hooks_active():
            instrument.emit_module(self, x, out)
        return out

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def _store(self, **tensors) -> None:
        """Store backward-pass inputs if caching is enabled."""
        if self.training and self.cache_activations:
            self._cache.update(tensors)

    def _load(self, key: str) -> np.ndarray:
        """Fetch a cached tensor, raising a clear error if it is missing."""
        if key not in self._cache:
            raise RuntimeError(
                f"{type(self).__name__}.backward() called without a cached "
                f"'{key}'; run forward() in training mode with activation "
                "caching enabled first"
            )
        return self._cache[key]

    def extra_repr(self) -> str:
        """Extra information appended to ``repr`` (override in subclasses)."""
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        child_lines = []
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            child_lines.append(f"  ({name}): {child_repr}")
        if child_lines:
            lines.extend(child_lines)
            lines.append(")")
            return "\n".join(lines)
        return lines[0] + ")"


class Identity(Module):
    """Pass-through module used for optional branches (e.g. skip projections)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output
