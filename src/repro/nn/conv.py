"""2-D convolution layers lowered to GEMM via im2col.

Two variants are provided:

* :class:`Conv2d` — standard (grouped = 1) convolution used by ResNet-18 and
  the stem/projection layers of MobileNet-V2 / EfficientNet-B0.
* :class:`DepthwiseConv2d` — per-channel convolution used by the inverted
  residual (MBConv) blocks.

Both support an optional attached quantized execution engine so that FF-INT8
runs the forward GEMM and the weight-gradient GEMM with INT8 operands.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn import init
from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.runtime import dispatch
from repro.utils.rng import RngLike, new_rng

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    """Normalize an int-or-pair argument to a pair."""
    if isinstance(value, tuple):
        return value
    return (value, value)


class Conv2d(Module):
    """Standard 2-D convolution over ``(N, C, H, W)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        bias: bool = True,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError(
                f"channel counts must be positive, got in={in_channels}, "
                f"out={out_channels}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        rng = new_rng(rng)
        weight_shape = (out_channels, in_channels, *self.kernel_size)
        self.weight = Parameter(init.kaiming_normal(weight_shape, rng=rng), "weight")
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(init.zeros((out_channels,)), "bias")
        self.quant_engine = None

    # ------------------------------------------------------------------ #
    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Output shape for a given ``(N, C, H, W)`` input shape."""
        batch, _, height, width = input_shape
        out_h = conv_output_size(
            height, self.kernel_size[0], self.stride[0], self.padding[0]
        )
        out_w = conv_output_size(
            width, self.kernel_size[1], self.stride[1], self.padding[1]
        )
        return (batch, self.out_channels, out_h, out_w)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects (N, C, H, W) input, got shape {x.shape}")
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected {self.in_channels} input channels, got {x.shape[1]}"
            )
        batch = x.shape[0]
        _, _, out_h, out_w = self.output_shape(x.shape)
        cols = im2col(x, self.kernel_size, self.stride, self.padding)
        weight_matrix = self.weight.data.reshape(self.out_channels, -1)
        if self.quant_engine is not None:
            out = self.quant_engine.linear_forward(cols, weight_matrix)
        else:
            out = dispatch.matmul(cols, weight_matrix.T)
        if self.bias is not None:
            out = out + self.bias.data
        out = out.reshape(batch, out_h, out_w, self.out_channels)
        out = out.transpose(0, 3, 1, 2).astype(np.float32)
        self._store(cols=cols, input_shape=np.array(x.shape))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        cols = self._load("cols")
        input_shape = tuple(int(v) for v in self._load("input_shape"))
        batch, _, out_h, out_w = grad_output.shape
        grad_matrix = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        grad_matrix = np.ascontiguousarray(grad_matrix, dtype=np.float32)

        if self.quant_engine is not None:
            grad_weight = self.quant_engine.linear_weight_grad(grad_matrix, cols)
        else:
            grad_weight = dispatch.matmul(grad_matrix.T, cols)
        self.weight.accumulate_grad(grad_weight.reshape(self.weight.data.shape))
        if self.bias is not None:
            self.bias.accumulate_grad(grad_matrix.sum(axis=0))

        weight_matrix = self.weight.data.reshape(self.out_channels, -1)
        grad_cols = dispatch.matmul(grad_matrix, weight_matrix)
        grad_input = col2im(
            grad_cols, input_shape, self.kernel_size, self.stride, self.padding
        )
        return grad_input.astype(np.float32)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, "
            f"bias={self.bias is not None}"
        )


class DepthwiseConv2d(Module):
    """Depthwise (per-channel) convolution used in inverted residual blocks."""

    def __init__(
        self,
        channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        bias: bool = False,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if channels <= 0:
            raise ValueError(f"channels must be positive, got {channels}")
        self.channels = channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        rng = new_rng(rng)
        weight_shape = (channels, 1, *self.kernel_size)
        self.weight = Parameter(init.kaiming_normal(weight_shape, rng=rng), "weight")
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(init.zeros((channels,)), "bias")
        self.quant_engine = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Output shape for a given ``(N, C, H, W)`` input shape."""
        batch, channels, height, width = input_shape
        out_h = conv_output_size(
            height, self.kernel_size[0], self.stride[0], self.padding[0]
        )
        out_w = conv_output_size(
            width, self.kernel_size[1], self.stride[1], self.padding[1]
        )
        return (batch, channels, out_h, out_w)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"DepthwiseConv2d expects (N, {self.channels}, H, W) input, "
                f"got shape {x.shape}"
            )
        batch, channels, _, _ = x.shape
        _, _, out_h, out_w = self.output_shape(x.shape)
        kernel_area = self.kernel_size[0] * self.kernel_size[1]
        cols = im2col(x, self.kernel_size, self.stride, self.padding)
        # (N*out_h*out_w, C, kh*kw): each channel sees only its own patch.
        cols = cols.reshape(-1, channels, kernel_area)
        weight = self.weight.data.reshape(channels, kernel_area)
        if self.quant_engine is not None:
            out = self.quant_engine.depthwise_forward(cols, weight)
        else:
            out = np.einsum("pck,ck->pc", cols, weight)
        if self.bias is not None:
            out = out + self.bias.data
        out = out.reshape(batch, out_h, out_w, channels).transpose(0, 3, 1, 2)
        self._store(cols=cols, input_shape=np.array(x.shape))
        return out.astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        cols = self._load("cols")
        input_shape = tuple(int(v) for v in self._load("input_shape"))
        channels = self.channels
        kernel_area = self.kernel_size[0] * self.kernel_size[1]
        grad_matrix = grad_output.transpose(0, 2, 3, 1).reshape(-1, channels)
        grad_matrix = np.ascontiguousarray(grad_matrix, dtype=np.float32)

        if self.quant_engine is not None:
            grad_weight = self.quant_engine.depthwise_weight_grad(grad_matrix, cols)
        else:
            grad_weight = np.einsum("pc,pck->ck", grad_matrix, cols)
        self.weight.accumulate_grad(grad_weight.reshape(self.weight.data.shape))
        if self.bias is not None:
            self.bias.accumulate_grad(grad_matrix.sum(axis=0))

        weight = self.weight.data.reshape(channels, kernel_area)
        grad_cols = np.einsum("pc,ck->pck", grad_matrix, weight)
        grad_cols = grad_cols.reshape(-1, channels * kernel_area)
        grad_input = col2im(
            grad_cols, input_shape, self.kernel_size, self.stride, self.padding
        )
        return grad_input.astype(np.float32)

    def extra_repr(self) -> str:
        return (
            f"channels={self.channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}"
        )
