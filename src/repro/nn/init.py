"""Weight initialization schemes.

The substrate defaults to Kaiming (He) initialization for ReLU-family layers
and Xavier (Glorot) for linear output heads, matching common practice for the
architectures evaluated in the paper.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.utils.rng import RngLike, new_rng


def _fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for dense ``(out, in)`` or conv ``(out, in, kh, kw)``."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_channels, in_channels, kernel_h, kernel_w = shape
        receptive = kernel_h * kernel_w
        return in_channels * receptive, out_channels * receptive
    raise ValueError(f"unsupported parameter shape for initialization: {shape}")


def kaiming_normal(
    shape: Tuple[int, ...],
    rng: RngLike = None,
    gain: float = math.sqrt(2.0),
) -> np.ndarray:
    """He-normal initialization: ``std = gain / sqrt(fan_in)``."""
    rng = new_rng(rng)
    fan_in, _ = _fan_in_fan_out(shape)
    std = gain / math.sqrt(max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(
    shape: Tuple[int, ...],
    rng: RngLike = None,
    gain: float = math.sqrt(2.0),
) -> np.ndarray:
    """He-uniform initialization over ``[-bound, bound]``."""
    rng = new_rng(rng)
    fan_in, _ = _fan_in_fan_out(shape)
    bound = gain * math.sqrt(3.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: RngLike = None) -> np.ndarray:
    """Glorot-uniform initialization."""
    rng = new_rng(rng)
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = math.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (biases, BatchNorm shift)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-ones initialization (BatchNorm scale)."""
    return np.ones(shape, dtype=np.float32)
