"""Supervised pool of inference-engine replicas with restart-and-reroute.

One engine (plus its micro-batcher) is a single point of failure: a shard
worker SIGKILL, a wedged kernel pool or any engine-pass exception takes the
whole serving path down with it.  The :class:`ReplicaSupervisor` removes
that coupling:

* **Replicas.**  ``num_replicas`` independent engines, each built by the
  caller's ``engine_factory`` and fronted by its own
  :class:`~repro.serve.batcher.MicroBatcher` (own queue, own workers), all
  sharing one :class:`~repro.serve.metrics.ServeMetrics` collector and one
  prediction cache.
* **Routing.**  Requests go round-robin over the *healthy* replicas; a
  replica marked failed (its engine pass raised) is routed around
  immediately — in-flight retries hop to the next healthy replica while the
  request's deadline still has budget.
* **Supervision.**  A monitor thread restarts failed replicas with capped
  exponential backoff (``restart_backoff_ms`` doubling up to
  ``restart_backoff_max_ms``): close the old engine (which triggers the
  kernel pools' own reset paths — the shard pool already tears down and
  respawns broken workers), build a fresh one from the factory, probe it
  with a real forward pass, and only then route traffic back.  Restart
  counts are published as ``repro_replica_restarts_total``; the healthy
  count is the ``repro_replicas_healthy`` gauge.

The supervisor preserves the serving stack's **no-silent-drop** contract:
every submitted request resolves to a result, a
:class:`~repro.serve.errors.DeadlineExceeded`, a
:class:`~repro.serve.errors.RequestShed`, or — when every replica is down —
a :class:`~repro.serve.errors.ReplicaUnavailable` that the front-end maps
to an explicit shed response.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, List, Optional, Set

import numpy as np

from repro.obs.registry import get_registry
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import PredictionCache
from repro.serve.config import FrontendConfig
from repro.serve.errors import (
    DeadlineExceeded,
    ReplicaUnavailable,
    RequestShed,
)
from repro.serve.metrics import ServeMetrics

EngineFactory = Callable[[], object]

_HEALTHY = "healthy"
_FAILED = "failed"
_RESTARTING = "restarting"
_STOPPED = "stopped"


def _settle_result(future: "Future[object]", value: object) -> None:
    """Resolve ``future`` unless the caller already cancelled it."""
    try:
        future.set_result(value)
    except Exception:  # InvalidStateError: client abandoned the request
        pass


def _settle_exception(future: "Future[object]",
                      error: BaseException) -> None:
    try:
        future.set_exception(error)
    except Exception:
        pass


class _Replica:
    """One engine + batcher pair and its supervision state."""

    __slots__ = ("index", "engine", "batcher", "state", "fail_count",
                 "next_restart_at", "last_error")

    def __init__(self, index: int) -> None:
        self.index = index
        self.engine = None
        self.batcher: Optional[MicroBatcher] = None
        self.state = _STOPPED
        self.fail_count = 0
        self.next_restart_at = 0.0
        self.last_error: Optional[BaseException] = None


class ReplicaSupervisor:
    """Routes requests over a pool of supervised engine replicas.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable returning a fresh engine (anything a
        :class:`MicroBatcher` accepts).  Called once per replica at start
        and once per restart — it is the supervisor's unit of recovery.
    config:
        A :class:`FrontendConfig` (replica count, restart backoff, health
        interval) whose inherited :class:`ServeConfig` half parameterizes
        each replica's micro-batcher.
    metrics / cache:
        Shared across every replica so the deployment reports one traffic
        picture; fresh defaults are created when omitted.
    """

    def __init__(
        self,
        engine_factory: EngineFactory,
        config: Optional[FrontendConfig] = None,
        metrics: Optional[ServeMetrics] = None,
        cache: Optional[PredictionCache] = None,
    ) -> None:
        self.config = config if config is not None else FrontendConfig()
        self._factory = engine_factory
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.cache = (
            cache if cache is not None
            else PredictionCache(self.config.cache_capacity)
        )
        self._replicas = [
            _Replica(index) for index in range(self.config.num_replicas)
        ]
        self._lock = threading.RLock()
        self._rr = 0
        self._running = False
        self._monitor: Optional[threading.Thread] = None
        self._monitor_wake = threading.Event()
        registry = get_registry()
        self._obs_restarts = registry.counter(
            "repro_replica_restarts_total",
            help="Replica engines restarted by the supervisor.")
        self._obs_healthy = registry.gauge(
            "repro_replicas_healthy", help="Replicas currently routable.")
        self._restarts = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ReplicaSupervisor":
        """Build and start every replica plus the monitor thread."""
        with self._lock:
            if self._running:
                return self
            self._running = True
            for replica in self._replicas:
                self._start_replica_locked(replica)
            self._publish_health_locked()
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="replica-supervisor",
                daemon=True,
            )
            self._monitor.start()
        return self

    def _start_replica_locked(self, replica: _Replica) -> None:
        replica.engine = self._factory()
        replica.batcher = MicroBatcher(
            replica.engine, self.config,
            cache=self.cache, metrics=self.metrics,
        ).start()
        replica.state = _HEALTHY
        replica.last_error = None

    def stop(self, drain: bool = True,
             drain_timeout: Optional[float] = None) -> None:
        """Deterministic shutdown: drain batchers, then close engines.

        The drain order is the graceful one the front-end documents: stop
        intake (each batcher sheds new work), flush in-flight batches
        (bounded by ``drain_timeout``, default the config's
        ``drain_timeout_s``), then close every engine — which shuts down
        kernel worker pools and unlinks shard segments.  Idempotent.
        """
        with self._lock:
            if not self._running:
                return
            self._running = False
            monitor, self._monitor = self._monitor, None
            replicas = list(self._replicas)
        self._monitor_wake.set()
        if monitor is not None:
            monitor.join(timeout=5.0)
        timeout = (drain_timeout if drain_timeout is not None
                   else self.config.drain_timeout_s)
        for replica in replicas:
            if replica.batcher is not None:
                replica.batcher.stop(drain=drain, drain_timeout=timeout)
        for replica in replicas:
            self._close_engine(replica)
            replica.state = _STOPPED
        self._publish_health_locked()
        self._monitor_wake.clear()

    def __enter__(self) -> "ReplicaSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @staticmethod
    def _close_engine(replica: _Replica) -> None:
        close = getattr(replica.engine, "close", None)
        if callable(close):
            try:
                close()
            except Exception:
                pass

    # ------------------------------------------------------------------ #
    # health accounting
    # ------------------------------------------------------------------ #
    def _publish_health_locked(self) -> None:
        healthy = sum(1 for r in self._replicas if r.state == _HEALTHY)
        self._obs_healthy.set(healthy)

    @property
    def healthy_replicas(self) -> int:
        """How many replicas are currently routable."""
        with self._lock:
            return sum(1 for r in self._replicas if r.state == _HEALTHY)

    @property
    def restarts(self) -> int:
        """Replica restarts performed since construction."""
        return self._restarts

    def replica_states(self) -> List[str]:
        """Per-replica state snapshot (test/report surface)."""
        with self._lock:
            return [replica.state for replica in self._replicas]

    def _mark_failed(self, replica: _Replica,
                     error: BaseException) -> None:
        """Take a replica out of rotation and schedule its restart."""
        with self._lock:
            if replica.state != _HEALTHY:
                return
            replica.state = _FAILED
            replica.last_error = error
            replica.fail_count += 1
            backoff = min(
                self.config.restart_backoff_max_s,
                self.config.restart_backoff_s
                * (2.0 ** (replica.fail_count - 1)),
            )
            replica.next_restart_at = time.perf_counter() + backoff
            self._publish_health_locked()
        # Wake the monitor so the restart clock starts now, not at the
        # next poll boundary.
        self._monitor_wake.set()

    # ------------------------------------------------------------------ #
    # request routing
    # ------------------------------------------------------------------ #
    def _pick_healthy(self, exclude: Set[int]) -> Optional[_Replica]:
        with self._lock:
            count = len(self._replicas)
            for offset in range(count):
                replica = self._replicas[(self._rr + offset) % count]
                if replica.state == _HEALTHY and replica.index not in exclude:
                    self._rr = (replica.index + 1) % count
                    return replica
        return None

    def submit(self, sample: np.ndarray,
               deadline_s: Optional[float] = None) -> "Future[object]":
        """Route one sample to a healthy replica; returns its future.

        On an engine failure the request retries on the next healthy
        replica (each replica tried at most once) while the deadline still
        has budget; the failing replica is marked for supervised restart.
        The returned future resolves to the label, or raises
        :class:`DeadlineExceeded` / :class:`RequestShed` /
        :class:`ReplicaUnavailable` — never hangs on a dead replica.
        """
        if not self._running:
            self.start()
        outer: "Future[object]" = Future()
        self._try_submit(outer, sample, deadline_s, exclude=set())
        return outer

    def _try_submit(self, outer: "Future[object]", sample: np.ndarray,
                    deadline_s: Optional[float], exclude: Set[int]) -> None:
        shed: Optional[RequestShed] = None
        while True:
            replica = self._pick_healthy(exclude)
            if replica is None:
                _settle_exception(
                    outer,
                    shed if shed is not None else ReplicaUnavailable(
                        "no healthy replica available"
                    ),
                )
                return
            if deadline_s is not None and time.perf_counter() >= deadline_s:
                self.metrics.record_deadline_exceeded()
                _settle_exception(outer, DeadlineExceeded(
                    "deadline expired before a replica could serve"
                ))
                return
            try:
                inner = replica.batcher.submit(sample, deadline_s=deadline_s)
            except RequestShed as error:
                # This replica's intake is saturated (or draining); another
                # replica may still have headroom.
                exclude.add(replica.index)
                shed = error
                continue
            break

        def _relay(done: "Future[object]") -> None:
            if done.cancelled():
                outer.cancel()
                return
            error = done.exception()
            if error is None:
                _settle_result(outer, done.result())
            elif isinstance(error, (DeadlineExceeded, RequestShed)):
                # Explicit outcomes pass through: the deadline/shed was
                # the request's fate, not the replica's.
                _settle_exception(outer, error)
            else:
                # Engine failure: supervise the replica, retry elsewhere.
                self._mark_failed(replica, error)
                exclude.add(replica.index)
                if (deadline_s is not None
                        and time.perf_counter() >= deadline_s):
                    self.metrics.record_deadline_exceeded()
                    _settle_exception(outer, DeadlineExceeded(
                        "deadline expired during replica failover"
                    ))
                    return
                self._try_submit(outer, sample, deadline_s, exclude)

        inner.add_done_callback(_relay)

    def predict(self, sample: np.ndarray,
                timeout: Optional[float] = None) -> int:
        """Synchronous single-sample prediction through the pool."""
        timeout = (timeout if timeout is not None
                   else self.config.request_timeout_s)
        deadline = time.perf_counter() + timeout
        future = self.submit(sample, deadline_s=deadline)
        try:
            return int(future.result(timeout=timeout))
        except (FuturesTimeoutError, CancelledError):
            self.metrics.record_deadline_exceeded()
            raise DeadlineExceeded(
                "prediction timed out in the replica pool",
                deadline_ms=1000.0 * timeout,
            ) from None

    # ------------------------------------------------------------------ #
    # supervision loop
    # ------------------------------------------------------------------ #
    def _monitor_loop(self) -> None:
        while True:
            self._monitor_wake.wait(timeout=self.config.health_interval_s)
            self._monitor_wake.clear()
            if not self._running:
                return
            now = time.perf_counter()
            due: List[_Replica] = []
            with self._lock:
                for replica in self._replicas:
                    if (replica.state == _FAILED
                            and now >= replica.next_restart_at):
                        replica.state = _RESTARTING
                        due.append(replica)
            for replica in due:
                self._restart_replica(replica)

    def _probe(self, engine) -> None:
        """One real forward pass to verify a restarted engine serves.

        Uses the engine's declared ``input_shape`` when it has one; engines
        without it (bare callables) are probed optimistically by a no-op —
        their next real failure would simply re-enter the restart path.
        """
        shape = getattr(engine, "input_shape", None)
        predict = getattr(engine, "predict", None) or engine
        if shape:
            predict(np.zeros((1,) + tuple(shape), dtype=np.float32))

    def _restart_replica(self, replica: _Replica) -> None:
        old_batcher = replica.batcher
        try:
            if old_batcher is not None:
                # No drain: the queue was already flushed by the failing
                # batch's error propagation, and a wedged engine must not
                # stall the restart.
                old_batcher.stop()
            self._close_engine(replica)
            engine = self._factory()
            self._probe(engine)
        except BaseException as error:
            # Failed restart: back off (exponentially, capped) and retry.
            with self._lock:
                if not self._running:
                    replica.state = _STOPPED
                    return
                replica.state = _FAILED
                replica.last_error = error
                replica.fail_count += 1
                backoff = min(
                    self.config.restart_backoff_max_s,
                    self.config.restart_backoff_s
                    * (2.0 ** (replica.fail_count - 1)),
                )
                replica.next_restart_at = time.perf_counter() + backoff
            return
        with self._lock:
            if not self._running:
                close = getattr(engine, "close", None)
                if callable(close):
                    close()
                replica.state = _STOPPED
                return
            replica.engine = engine
            replica.batcher = MicroBatcher(
                engine, self.config, cache=self.cache, metrics=self.metrics,
            ).start()
            replica.state = _HEALTHY
            replica.fail_count = 0
            replica.last_error = None
            self._restarts += 1
            self._publish_health_locked()
        self._obs_restarts.inc()


__all__ = ["ReplicaSupervisor"]
