"""Supervised pool of inference-engine replicas with restart-and-reroute.

One engine (plus its micro-batcher) is a single point of failure: a shard
worker SIGKILL, a wedged kernel pool or any engine-pass exception takes the
whole serving path down with it.  The :class:`ReplicaSupervisor` removes
that coupling:

* **Replicas.**  Engines are grouped into per-model **replica sets** (one
  set per served ``name@version``; a single ``engine_factory`` at
  construction keeps the classic one-model pool).  Each replica is built
  by its set's factory and fronted by its own
  :class:`~repro.serve.batcher.MicroBatcher` (own queue, own workers), all
  sharing one :class:`~repro.serve.metrics.ServeMetrics` collector and one
  prediction cache (safe across versions: cache keys are namespaced by the
  engine's artifact fingerprint).
* **Routing.**  Requests go round-robin over the *healthy* replicas of
  their model's set; a replica marked failed (its engine pass raised) is
  routed around immediately — in-flight retries hop to the next healthy
  replica while the request's deadline still has budget.
* **Supervision.**  A monitor thread restarts failed replicas with capped
  exponential backoff (``restart_backoff_ms`` doubling up to
  ``restart_backoff_max_ms``): close the old engine (which triggers the
  kernel pools' own reset paths — the shard pool already tears down and
  respawns broken workers), build a fresh one from the set's factory,
  probe it with a real forward pass, and only then route traffic back.  A
  set removed mid-restart (a hot-swap retired its version) is never
  resurrected: the restart discards the fresh engine instead of marking it
  healthy.  Restart counts are published as
  ``repro_replica_restarts_total``; the healthy count is the
  ``repro_replicas_healthy`` gauge.

The supervisor preserves the serving stack's **no-silent-drop** contract:
every submitted request resolves to a result, a
:class:`~repro.serve.errors.DeadlineExceeded`, a
:class:`~repro.serve.errors.RequestShed`, or — when every replica of the
routed set is down (or the set was just removed) — a
:class:`~repro.serve.errors.ReplicaUnavailable` that the front-end maps
to an explicit shed response.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.obs.registry import get_registry
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import PredictionCache
from repro.serve.config import FrontendConfig
from repro.serve.errors import (
    DeadlineExceeded,
    ReplicaUnavailable,
    RequestShed,
)
from repro.serve.metrics import ServeMetrics

EngineFactory = Callable[[], object]

#: Replica-set key used by the classic single-factory constructor.
DEFAULT_MODEL_KEY = "default"

_HEALTHY = "healthy"
_FAILED = "failed"
_RESTARTING = "restarting"
_STOPPED = "stopped"


def _settle_result(future: "Future[object]", value: object) -> None:
    """Resolve ``future`` unless the caller already cancelled it."""
    try:
        future.set_result(value)
    except Exception:  # InvalidStateError: client abandoned the request
        pass


def _settle_exception(future: "Future[object]",
                      error: BaseException) -> None:
    try:
        future.set_exception(error)
    except Exception:
        pass


class _Replica:
    """One engine + batcher pair and its supervision state."""

    __slots__ = ("index", "owner", "engine", "batcher", "state",
                 "fail_count", "next_restart_at", "last_error")

    def __init__(self, index: int, owner: "_ReplicaSet") -> None:
        self.index = index
        self.owner = owner
        self.engine = None
        self.batcher: Optional[MicroBatcher] = None
        self.state = _STOPPED
        self.fail_count = 0
        self.next_restart_at = 0.0
        self.last_error: Optional[BaseException] = None


class _ReplicaSet:
    """The replicas serving one model key, with their factory and cursor."""

    __slots__ = ("key", "factory", "replicas", "rr")

    def __init__(self, key: str, factory: EngineFactory,
                 count: int) -> None:
        self.key = key
        self.factory = factory
        self.replicas = [_Replica(index, self) for index in range(count)]
        self.rr = 0


class ReplicaSupervisor:
    """Routes requests over per-model pools of supervised engine replicas.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable returning a fresh engine (anything a
        :class:`MicroBatcher` accepts) — the supervisor's unit of
        recovery, registered as the default replica set.  Pass ``None``
        and add sets with :meth:`add_model` for multi-model serving (the
        registry-backed front-end does).
    config:
        A :class:`FrontendConfig` (replica count, restart backoff, health
        interval) whose inherited :class:`ServeConfig` half parameterizes
        each replica's micro-batcher.
    metrics / cache:
        Shared across every replica so the deployment reports one traffic
        picture; fresh defaults are created when omitted.
    """

    def __init__(
        self,
        engine_factory: Optional[EngineFactory] = None,
        config: Optional[FrontendConfig] = None,
        metrics: Optional[ServeMetrics] = None,
        cache: Optional[PredictionCache] = None,
    ) -> None:
        self.config = config if config is not None else FrontendConfig()
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.cache = (
            cache if cache is not None
            else PredictionCache(self.config.cache_capacity)
        )
        self._sets: "Dict[str, _ReplicaSet]" = {}
        if engine_factory is not None:
            self._sets[DEFAULT_MODEL_KEY] = _ReplicaSet(
                DEFAULT_MODEL_KEY, engine_factory,
                self.config.num_replicas,
            )
        self._lock = threading.RLock()
        self._running = False
        self._monitor: Optional[threading.Thread] = None
        self._monitor_wake = threading.Event()
        registry = get_registry()
        self._obs_restarts = registry.counter(
            "repro_replica_restarts_total",
            help="Replica engines restarted by the supervisor.")
        self._obs_healthy = registry.gauge(
            "repro_replicas_healthy", help="Replicas currently routable.")
        self._restarts = 0

    # ------------------------------------------------------------------ #
    # replica sets
    # ------------------------------------------------------------------ #
    @property
    def _replicas(self) -> List[_Replica]:
        """Flat replica view across sets (reports, tests)."""
        return [replica for replica_set in self._sets.values()
                for replica in replica_set.replicas]

    def models(self) -> List[str]:
        """Keys of the replica sets currently registered."""
        with self._lock:
            return list(self._sets)

    def has_model(self, key: str) -> bool:
        with self._lock:
            return key in self._sets

    def add_model(self, key: str, engine_factory: EngineFactory,
                  num_replicas: Optional[int] = None) -> "ReplicaSupervisor":
        """Register (idempotently) a replica set serving model ``key``.

        When the supervisor is already running the new set's replicas are
        built and started immediately — this is the hot-swap path: the new
        version's pool must be warm before routing flips to it.
        """
        with self._lock:
            if key in self._sets:
                return self
            count = (int(num_replicas) if num_replicas
                     else self.config.num_replicas)
            replica_set = _ReplicaSet(key, engine_factory, count)
            self._sets[key] = replica_set
            if self._running:
                for replica in replica_set.replicas:
                    self._start_replica_locked(replica)
                self._publish_health_locked()
        return self

    def remove_model(self, key: str, drain: bool = True,
                     drain_timeout: Optional[float] = None) -> bool:
        """Retire model ``key``'s replica set: drain, close, forget.

        The set is unregistered first (under the lock — new submissions
        for ``key`` get :class:`ReplicaUnavailable` immediately and the
        monitor stops restarting it), then its batchers drain and its
        engines close outside the lock.  Returns whether a set existed.
        """
        with self._lock:
            replica_set = self._sets.pop(key, None)
        if replica_set is None:
            return False
        timeout = (drain_timeout if drain_timeout is not None
                   else self.config.drain_timeout_s)
        for replica in replica_set.replicas:
            if replica.batcher is not None:
                replica.batcher.stop(drain=drain, drain_timeout=timeout)
        for replica in replica_set.replicas:
            self._close_engine(replica)
            replica.state = _STOPPED
        with self._lock:
            self._publish_health_locked()
        return True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ReplicaSupervisor":
        """Build and start every replica plus the monitor thread."""
        with self._lock:
            if self._running:
                return self
            self._running = True
            for replica in self._replicas:
                self._start_replica_locked(replica)
            self._publish_health_locked()
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="replica-supervisor",
                daemon=True,
            )
            self._monitor.start()
        return self

    def _start_replica_locked(self, replica: _Replica) -> None:
        replica.engine = replica.owner.factory()
        replica.batcher = MicroBatcher(
            replica.engine, self.config,
            cache=self.cache, metrics=self.metrics,
            cache_namespace=replica.owner.key,
        ).start()
        replica.state = _HEALTHY
        replica.last_error = None

    def stop(self, drain: bool = True,
             drain_timeout: Optional[float] = None) -> None:
        """Deterministic shutdown: drain batchers, then close engines.

        The drain order is the graceful one the front-end documents: stop
        intake (each batcher sheds new work), flush in-flight batches
        (bounded by ``drain_timeout``, default the config's
        ``drain_timeout_s``), then close every engine — which shuts down
        kernel worker pools and unlinks shard segments.  Idempotent.
        """
        with self._lock:
            if not self._running:
                return
            self._running = False
            monitor, self._monitor = self._monitor, None
            replicas = list(self._replicas)
        self._monitor_wake.set()
        if monitor is not None:
            monitor.join(timeout=5.0)
        timeout = (drain_timeout if drain_timeout is not None
                   else self.config.drain_timeout_s)
        for replica in replicas:
            if replica.batcher is not None:
                replica.batcher.stop(drain=drain, drain_timeout=timeout)
        for replica in replicas:
            self._close_engine(replica)
            replica.state = _STOPPED
        self._publish_health_locked()
        self._monitor_wake.clear()

    def __enter__(self) -> "ReplicaSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @staticmethod
    def _close_engine(replica: _Replica) -> None:
        close = getattr(replica.engine, "close", None)
        if callable(close):
            try:
                close()
            except Exception:
                pass

    # ------------------------------------------------------------------ #
    # health accounting
    # ------------------------------------------------------------------ #
    def _publish_health_locked(self) -> None:
        healthy = sum(1 for r in self._replicas if r.state == _HEALTHY)
        self._obs_healthy.set(healthy)

    @property
    def healthy_replicas(self) -> int:
        """How many replicas are currently routable (all sets)."""
        with self._lock:
            return sum(1 for r in self._replicas if r.state == _HEALTHY)

    @property
    def restarts(self) -> int:
        """Replica restarts performed since construction."""
        return self._restarts

    def replica_states(self, model: Optional[str] = None) -> List[str]:
        """Per-replica state snapshot (test/report surface).

        Flat across sets by default (single-model deployments see the
        classic list); pass ``model`` for one set's view.
        """
        with self._lock:
            if model is not None:
                replica_set = self._sets.get(model)
                if replica_set is None:
                    raise KeyError(f"no replica set for model {model!r}")
                return [r.state for r in replica_set.replicas]
            return [replica.state for replica in self._replicas]

    def model_states(self) -> Dict[str, List[str]]:
        """Replica states grouped by model key."""
        with self._lock:
            return {key: [r.state for r in replica_set.replicas]
                    for key, replica_set in self._sets.items()}

    def _mark_failed(self, replica: _Replica,
                     error: BaseException) -> None:
        """Take a replica out of rotation and schedule its restart."""
        with self._lock:
            if replica.state != _HEALTHY:
                return
            replica.state = _FAILED
            replica.last_error = error
            replica.fail_count += 1
            backoff = min(
                self.config.restart_backoff_max_s,
                self.config.restart_backoff_s
                * (2.0 ** (replica.fail_count - 1)),
            )
            replica.next_restart_at = time.perf_counter() + backoff
            self._publish_health_locked()
        # Wake the monitor so the restart clock starts now, not at the
        # next poll boundary.
        self._monitor_wake.set()

    # ------------------------------------------------------------------ #
    # request routing
    # ------------------------------------------------------------------ #
    def _pick_set(self, model: Optional[str]) -> Optional[_ReplicaSet]:
        with self._lock:
            if model is not None:
                return self._sets.get(model)
            replica_set = self._sets.get(DEFAULT_MODEL_KEY)
            if replica_set is None and len(self._sets) == 1:
                replica_set = next(iter(self._sets.values()))
            return replica_set

    def _pick_healthy(self, replica_set: _ReplicaSet,
                      exclude: Set[int]) -> Optional[_Replica]:
        with self._lock:
            replicas = replica_set.replicas
            count = len(replicas)
            for offset in range(count):
                replica = replicas[(replica_set.rr + offset) % count]
                if replica.state == _HEALTHY and replica.index not in exclude:
                    replica_set.rr = (replica.index + 1) % count
                    return replica
        return None

    def submit(self, sample: np.ndarray,
               deadline_s: Optional[float] = None,
               model: Optional[str] = None) -> "Future[object]":
        """Route one sample to a healthy replica; returns its future.

        ``model`` selects the replica set (``None`` routes to the default
        set, or the only set when exactly one exists).  On an engine
        failure the request retries on the next healthy replica of the
        same set (each replica tried at most once) while the deadline
        still has budget; the failing replica is marked for supervised
        restart.  The returned future resolves to the label, or raises
        :class:`DeadlineExceeded` / :class:`RequestShed` /
        :class:`ReplicaUnavailable` — never hangs on a dead replica.
        """
        if not self._running:
            self.start()
        outer: "Future[object]" = Future()
        replica_set = self._pick_set(model)
        if replica_set is None:
            _settle_exception(outer, ReplicaUnavailable(
                "no replica set serves this request"
                if model is None else
                f"no replica set for model {model!r}"
            ))
            return outer
        self._try_submit(outer, replica_set, sample, deadline_s,
                         exclude=set())
        return outer

    def _try_submit(self, outer: "Future[object]",
                    replica_set: _ReplicaSet, sample: np.ndarray,
                    deadline_s: Optional[float], exclude: Set[int]) -> None:
        shed: Optional[RequestShed] = None
        while True:
            replica = self._pick_healthy(replica_set, exclude)
            if replica is None:
                _settle_exception(
                    outer,
                    shed if shed is not None else ReplicaUnavailable(
                        "no healthy replica available"
                    ),
                )
                return
            if deadline_s is not None and time.perf_counter() >= deadline_s:
                self.metrics.record_deadline_exceeded()
                _settle_exception(outer, DeadlineExceeded(
                    "deadline expired before a replica could serve"
                ))
                return
            try:
                inner = replica.batcher.submit(sample, deadline_s=deadline_s)
            except RequestShed as error:
                # This replica's intake is saturated (or draining); another
                # replica may still have headroom.
                exclude.add(replica.index)
                shed = error
                continue
            break

        def _relay(done: "Future[object]") -> None:
            if done.cancelled():
                outer.cancel()
                return
            error = done.exception()
            if error is None:
                _settle_result(outer, done.result())
            elif isinstance(error, (DeadlineExceeded, RequestShed)):
                # Explicit outcomes pass through: the deadline/shed was
                # the request's fate, not the replica's.
                _settle_exception(outer, error)
            else:
                # Engine failure: supervise the replica, retry elsewhere.
                self._mark_failed(replica, error)
                exclude.add(replica.index)
                if (deadline_s is not None
                        and time.perf_counter() >= deadline_s):
                    self.metrics.record_deadline_exceeded()
                    _settle_exception(outer, DeadlineExceeded(
                        "deadline expired during replica failover"
                    ))
                    return
                self._try_submit(outer, replica_set, sample, deadline_s,
                                 exclude)

        inner.add_done_callback(_relay)

    def predict(self, sample: np.ndarray,
                timeout: Optional[float] = None,
                model: Optional[str] = None) -> int:
        """Synchronous single-sample prediction through the pool."""
        timeout = (timeout if timeout is not None
                   else self.config.request_timeout_s)
        deadline = time.perf_counter() + timeout
        future = self.submit(sample, deadline_s=deadline, model=model)
        try:
            return int(future.result(timeout=timeout))
        except (FuturesTimeoutError, CancelledError):
            self.metrics.record_deadline_exceeded()
            raise DeadlineExceeded(
                "prediction timed out in the replica pool",
                deadline_ms=1000.0 * timeout,
            ) from None

    # ------------------------------------------------------------------ #
    # supervision loop
    # ------------------------------------------------------------------ #
    def _monitor_loop(self) -> None:
        while True:
            self._monitor_wake.wait(timeout=self.config.health_interval_s)
            self._monitor_wake.clear()
            if not self._running:
                return
            now = time.perf_counter()
            due: List[_Replica] = []
            with self._lock:
                for replica in self._replicas:
                    if (replica.state == _FAILED
                            and now >= replica.next_restart_at):
                        replica.state = _RESTARTING
                        due.append(replica)
            for replica in due:
                self._restart_replica(replica)

    def _probe(self, engine) -> None:
        """One real forward pass to verify a restarted engine serves.

        Uses the engine's declared ``input_shape`` when it has one; engines
        without it (bare callables) are probed optimistically by a no-op —
        their next real failure would simply re-enter the restart path.
        """
        shape = getattr(engine, "input_shape", None)
        predict = getattr(engine, "predict", None) or engine
        if shape:
            predict(np.zeros((1,) + tuple(shape), dtype=np.float32))

    def _set_registered_locked(self, replica: _Replica) -> bool:
        return self._sets.get(replica.owner.key) is replica.owner

    def _restart_replica(self, replica: _Replica) -> None:
        old_batcher = replica.batcher
        try:
            if old_batcher is not None:
                # No drain: the queue was already flushed by the failing
                # batch's error propagation, and a wedged engine must not
                # stall the restart.
                old_batcher.stop()
            self._close_engine(replica)
            engine = replica.owner.factory()
            self._probe(engine)
        except BaseException as error:
            # Failed restart: back off (exponentially, capped) and retry.
            with self._lock:
                if (not self._running
                        or not self._set_registered_locked(replica)):
                    replica.state = _STOPPED
                    return
                replica.state = _FAILED
                replica.last_error = error
                replica.fail_count += 1
                backoff = min(
                    self.config.restart_backoff_max_s,
                    self.config.restart_backoff_s
                    * (2.0 ** (replica.fail_count - 1)),
                )
                replica.next_restart_at = time.perf_counter() + backoff
            return
        with self._lock:
            if (not self._running
                    or not self._set_registered_locked(replica)):
                # Supervisor stopped — or a hot-swap retired this model
                # mid-restart.  Either way the fresh engine must not come
                # back into rotation (a rolled-back version stays gone).
                close = getattr(engine, "close", None)
                if callable(close):
                    close()
                replica.state = _STOPPED
                return
            replica.engine = engine
            replica.batcher = MicroBatcher(
                engine, self.config, cache=self.cache, metrics=self.metrics,
                cache_namespace=replica.owner.key,
            ).start()
            replica.state = _HEALTHY
            replica.fail_count = 0
            replica.last_error = None
            self._restarts += 1
            self._publish_health_locked()
        self._obs_restarts.inc()


__all__ = ["ReplicaSupervisor", "DEFAULT_MODEL_KEY"]
