"""Deterministic fault injection for the serving stack.

The robustness tests (and ``serve-bench``'s chaos smoke) need failures that
are *repeatable*: a replica that dies on exactly the third batch, a stall
of exactly 200 ms on the first call, a shard worker SIGKILLed mid-GEMM.
This module provides those as data, not monkey-patching:

* :class:`FaultSchedule` — which engine calls fail, which stall, and for
  how long, keyed by the call index (0-based, counted across the engine's
  lifetime).
* :class:`FaultyEngine` — wraps any engine the
  :class:`~repro.serve.batcher.MicroBatcher` accepts and applies a
  schedule to its ``predict``.  Everything else (``input_shape``,
  ``fuse``, ``close``…) proxies through, so a wrapped
  :class:`~repro.serve.engine.Int8InferenceEngine` is indistinguishable
  from a healthy one between injected faults.
* :func:`flaky_factory` — an engine factory whose first *N* constructions
  yield engines that fail immediately: the knob for exercising the
  supervisor's capped-exponential restart backoff.
* :func:`kill_one_shard_worker` — SIGKILLs a live shard-pool worker under
  an engine, driving the pool's reset path exactly as a real OOM kill
  would.
* :func:`flood` — saturates an intake queue with concurrent submissions
  to provoke shedding (and, during a drain, ``draining`` sheds).
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional

import numpy as np


class InjectedFault(RuntimeError):
    """The error raised by scheduled engine failures."""


class FaultSchedule:
    """Deterministic per-call fault plan for a :class:`FaultyEngine`.

    Parameters
    ----------
    fail_calls:
        Call indices (0-based) that raise :class:`InjectedFault`.
    stall_calls:
        ``{call_index: seconds}`` — calls that sleep before answering,
        modelling a slow replica rather than a dead one.
    fail_after:
        If set, every call with index >= ``fail_after`` fails — a replica
        that dies and stays dead until the supervisor replaces it.
    """

    def __init__(
        self,
        fail_calls: Iterable[int] = (),
        stall_calls: Optional[Dict[int, float]] = None,
        fail_after: Optional[int] = None,
    ) -> None:
        self.fail_calls = frozenset(int(i) for i in fail_calls)
        self.stall_calls = {
            int(i): float(s) for i, s in (stall_calls or {}).items()
        }
        self.fail_after = None if fail_after is None else int(fail_after)

    def stall_s(self, call_index: int) -> float:
        return self.stall_calls.get(call_index, 0.0)

    def should_fail(self, call_index: int) -> bool:
        if self.fail_after is not None and call_index >= self.fail_after:
            return True
        return call_index in self.fail_calls


class FaultyEngine:
    """An engine wrapper that fails and stalls on schedule.

    ``predict`` counts calls (thread-safely) and consults the schedule;
    every other attribute — ``input_shape``, ``fuse``, ``num_classes``,
    ``apply_pins`` — resolves on the wrapped engine, so the batcher's
    config-enforcement handshakes all still work.
    """

    def __init__(self, engine, schedule: Optional[FaultSchedule] = None,
                 stall_sleep: Callable[[float], None] = None) -> None:
        self._engine = engine
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self._calls = 0
        self._calls_lock = threading.Lock()
        self._stall_sleep = stall_sleep
        self.closed = False

    @property
    def calls(self) -> int:
        with self._calls_lock:
            return self._calls

    def predict(self, batch: np.ndarray):
        with self._calls_lock:
            call_index = self._calls
            self._calls += 1
        stall = self.schedule.stall_s(call_index)
        if stall > 0.0:
            sleep = self._stall_sleep
            if sleep is None:
                import time

                sleep = time.sleep
            sleep(stall)
        if self.schedule.should_fail(call_index):
            raise InjectedFault(
                f"injected engine fault on call {call_index}"
            )
        predict = getattr(self._engine, "predict", None)
        if callable(predict):
            return predict(batch)
        return self._engine(batch)

    def close(self) -> None:
        self.closed = True
        close = getattr(self._engine, "close", None)
        if callable(close):
            close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._engine, name)


def flaky_factory(
    base_factory: Callable[[], object],
    fail_first: int = 0,
    schedule_for: Optional[Callable[[int], Optional[FaultSchedule]]] = None,
) -> Callable[[], object]:
    """An engine factory whose early constructions produce broken engines.

    The first ``fail_first`` engines built fail on every call
    (``fail_after=0``), so a supervisor restarting through them exercises
    its backoff ladder; construction ``fail_first`` onward is healthy.
    ``schedule_for(build_index)`` overrides the per-build schedule when
    finer control is needed (return ``None`` for a healthy engine).
    Deterministic and thread-safe.
    """
    lock = threading.Lock()
    builds = [0]

    def factory() -> object:
        with lock:
            index = builds[0]
            builds[0] += 1
        engine = base_factory()
        if schedule_for is not None:
            schedule = schedule_for(index)
        elif index < fail_first:
            schedule = FaultSchedule(fail_after=0)
        else:
            schedule = None
        if schedule is None:
            return engine
        return FaultyEngine(engine, schedule)

    factory.builds = builds  # type: ignore[attr-defined]
    return factory


def _shard_backends_of(engine) -> List:
    """Every shard-style backend (owning worker processes) under ``engine``."""
    executors = list(getattr(engine, "_plan_cache", {}).values())
    executor = getattr(engine, "executor", None)
    if executor is not None and executor not in executors:
        executors.append(executor)
    backends, seen = [], set()
    for ex in executors:
        for backend in ex.step_backend_objs():
            if id(backend) in seen:
                continue
            seen.add(id(backend))
            if getattr(backend, "_workers", None):
                backends.append(backend)
    return backends


def shard_worker_pids(engine) -> List[int]:
    """PIDs of live shard-pool workers serving ``engine`` (may be empty)."""
    pids: List[int] = []
    for backend in _shard_backends_of(engine):
        for process, _conn in list(getattr(backend, "_workers", [])):
            pid = getattr(process, "pid", None)
            if pid and process.is_alive():
                pids.append(pid)
    return pids


def kill_one_shard_worker(engine) -> Optional[int]:
    """SIGKILL one live shard worker under ``engine``.

    Returns the killed PID, or ``None`` when the engine has no live shard
    workers (single-worker inline mode, or a non-shard backend).  The next
    sharded call then takes the pool's documented reset path: detect the
    dead worker, tear the pool down, raise the retryable reset error, and
    respawn on the call after.
    """
    pids = shard_worker_pids(engine)
    if not pids:
        return None
    os.kill(pids[0], signal.SIGKILL)
    return pids[0]


def flood(
    submit: Callable[[np.ndarray], Any],
    sample: np.ndarray,
    count: int,
) -> List[Any]:
    """Fire ``count`` submissions as fast as possible; return the results.

    Each entry is either the future/result ``submit`` returned or the
    exception it raised (``RequestShed`` under saturation) — callers
    assert on the mix.  Submission order is sequential and deterministic.
    """
    outcomes: List[Any] = []
    for _ in range(int(count)):
        try:
            outcomes.append(submit(sample))
        except Exception as error:  # noqa: BLE001 — the outcome *is* the data
            outcomes.append(error)
    return outcomes


__all__ = [
    "InjectedFault",
    "FaultSchedule",
    "FaultyEngine",
    "flaky_factory",
    "shard_worker_pids",
    "kill_one_shard_worker",
    "flood",
]
