"""Multi-model registry: named + versioned artifacts, atomic hot-swap.

One frontend, many models.  The :class:`ModelRegistry` is the name →
version → artifact resolution layer the serving stack was missing: clients
ask for ``resnet18-mini@v2`` (or ``resnet18-mini@latest``, or just the bare
name) and the registry answers with a concrete :class:`ModelVersion` whose
engine is built lazily and shared.

Three properties do the heavy lifting:

* **Fingerprint dedup.**  Every registered artifact is fingerprinted
  (blake2b over its frozen tensors, the same digest family the engine uses
  for its plan-cache key).  Two versions with identical frozen params map
  to *one* canonical engine — one set of staged shard segments, one plan
  cache — so re-registering yesterday's weights under a new version label
  costs nothing.
* **Atomic swap.**  Traffic routing lives in an immutable
  :class:`RoutingSnapshot` replaced wholesale under a single lock.
  ``swap(name, version)`` flips which version new requests resolve to;
  in-flight batches keep the engine object they already hold, so they
  finish on the old version while new arrivals land on the new one — no
  torn state, no mixed batches.
* **Deterministic canary split.**  A routing entry may carry a candidate
  version plus a traffic fraction; assignment hashes ``(seed, name,
  request-key)`` so the same request always lands on the same side of the
  split — reproducible experiments, not coin flips.

The :class:`~repro.serve.canary.CanaryController` sits on top and decides
*when* to flip: it watches per-version latency/error/margin series and
rolls a regressing candidate back (with capped doubling hold-off, DCF
style) before promotion.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.registry import get_registry
from repro.serve.cache import input_digest
from repro.serve.errors import ServeError
from repro.serve.export import InferenceArtifact
from repro.serve.metrics import ModelSeries

#: Version alias that always resolves to the newest registered version.
LATEST = "latest"


class ModelNotFound(ServeError, KeyError):
    """An unknown model name or version was requested."""

    def __str__(self) -> str:  # KeyError quotes its args; keep it readable
        return self.args[0] if self.args else "model not found"


def parse_model_ref(ref: str) -> Tuple[str, Optional[str]]:
    """Split ``name[@version]`` into ``(name, version-or-None)``.

    ``None`` means "no explicit version" — both the bare name and the
    ``@latest`` alias resolve to the newest registered version.  Dotted
    and hyphenated names pass through untouched (only ``@`` separates);
    an empty name or empty version is rejected.
    """
    ref = str(ref).strip()
    name, sep, version = ref.rpartition("@")
    if not sep:
        name, version = ref, ""
    if not name:
        raise ValueError(f"model ref {ref!r} has no name")
    if sep and not version:
        raise ValueError(f"model ref {ref!r} has an empty version")
    if not version or version == LATEST:
        return name, None
    return name, version


def artifact_fingerprint(artifact: InferenceArtifact) -> str:
    """Content digest of an artifact's frozen tensors.

    blake2b over the sorted tensor names and raw bytes — the registry's
    dedup key.  Two versions with equal fingerprints share one engine
    (hence one set of staged shard segments and one plan cache).
    """
    hasher = hashlib.blake2b(digest_size=16)
    for key in sorted(artifact.tensors):
        tensor = np.ascontiguousarray(artifact.tensors[key])
        hasher.update(key.encode("utf-8"))
        hasher.update(str(tensor.dtype).encode())
        hasher.update(str(tensor.shape).encode())
        hasher.update(tensor.tobytes())
    return hasher.hexdigest()


def _assign_canary(seed: int, name: str, key: str, fraction: float) -> bool:
    """Deterministic traffic-split assignment for one request key."""
    digest = hashlib.blake2b(
        f"{seed}:{name}:{key}".encode("utf-8"), digest_size=8
    ).digest()
    return (int.from_bytes(digest, "big") / float(2 ** 64)) < fraction


class ModelVersion:
    """One registered (name, version) with its artifact and fingerprint."""

    __slots__ = ("name", "version", "artifact", "fingerprint",
                 "registered_order", "_prebuilt", "_factory")

    def __init__(self, name: str, version: str,
                 artifact: InferenceArtifact, fingerprint: str,
                 registered_order: int,
                 prebuilt: Optional[object] = None,
                 factory: Optional[Callable[[], object]] = None) -> None:
        self.name = name
        self.version = version
        self.artifact = artifact
        self.fingerprint = fingerprint
        self.registered_order = registered_order
        self._prebuilt = prebuilt
        self._factory = factory

    @property
    def ref(self) -> str:
        return f"{self.name}@{self.version}"

    def __repr__(self) -> str:
        return (f"ModelVersion({self.ref!r}, "
                f"fingerprint={self.fingerprint[:8]}...)")


class _Route:
    """Immutable per-name routing entry (stable + optional canary)."""

    __slots__ = ("stable", "canary", "fraction", "seed")

    def __init__(self, stable: str, canary: Optional[str] = None,
                 fraction: float = 0.0, seed: int = 0) -> None:
        self.stable = stable
        self.canary = canary
        self.fraction = float(fraction)
        self.seed = int(seed)


class RouteDecision:
    """Outcome of routing one request: which version serves it and why."""

    __slots__ = ("model", "pinned", "canary")

    def __init__(self, model: ModelVersion, pinned: bool = False,
                 canary: bool = False) -> None:
        self.model = model
        self.pinned = pinned
        self.canary = canary

    @property
    def name(self) -> str:
        return self.model.name

    @property
    def version(self) -> str:
        return self.model.version

    @property
    def ref(self) -> str:
        return self.model.ref


class ModelRegistry:
    """Named + versioned artifacts with shared engines and atomic routing.

    Parameters
    ----------
    engine_builder:
        ``artifact -> engine`` callable used to build the canonical engine
        for a fingerprint the first time it is needed.  Defaults to
        :func:`~repro.serve.engine.build_engine` (imported lazily so stub
        registries never touch the kernel stack).
    """

    def __init__(
        self,
        engine_builder: Optional[
            Callable[[InferenceArtifact], object]
        ] = None,
    ) -> None:
        self._builder = engine_builder
        self._lock = threading.Lock()          # versions + routing snapshot
        self._engine_lock = threading.Lock()   # fingerprint -> engine memo
        self._versions: "Dict[str, Dict[str, ModelVersion]]" = {}
        self._order: "Dict[str, List[str]]" = {}   # registration order
        self._routing: "Dict[str, _Route]" = {}    # replaced wholesale
        self._engines: "Dict[str, object]" = {}
        self._engine_builds = 0
        self._shared_engines = 0
        self._swaps = 0
        self._register_seq = 0
        self._closed = False
        self.series = ModelSeries()
        obs = get_registry()
        self._obs_swaps = obs.counter(
            "repro_model_swaps_total",
            help="Atomic stable-version swaps performed by the registry.")
        self._obs_versions = obs.gauge(
            "repro_registry_versions",
            help="Model versions currently registered.")

    # ------------------------------------------------------------------ #
    # registration + resolution
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        version: str,
        artifact: InferenceArtifact,
        *,
        engine: Optional[object] = None,
        engine_factory: Optional[Callable[[], object]] = None,
        make_default: bool = True,
    ) -> ModelVersion:
        """Register one (name, version) artifact.

        A prebuilt ``engine`` (tests, faults) or a zero-arg
        ``engine_factory`` (per-replica builds) may override the
        registry's ``engine_builder`` for this version.  The first version
        registered under a name becomes its stable serving version;
        ``make_default=False`` skips that (the version is resolvable but
        carries no traffic until a swap or canary routes to it).
        Registering a duplicate (name, version) raises.
        """
        name = str(name).strip()
        version = str(version).strip()
        if not name or "@" in name:
            raise ValueError(f"invalid model name {name!r}")
        if not version or version == LATEST or "@" in version:
            raise ValueError(f"invalid model version {version!r}")
        fingerprint = artifact_fingerprint(artifact)
        with self._lock:
            if self._closed:
                raise RuntimeError("registry is closed")
            versions = self._versions.setdefault(name, {})
            if version in versions:
                raise ValueError(
                    f"model {name}@{version} is already registered"
                )
            self._register_seq += 1
            model = ModelVersion(
                name, version, artifact, fingerprint,
                registered_order=self._register_seq,
                prebuilt=engine, factory=engine_factory,
            )
            versions[version] = model
            self._order.setdefault(name, []).append(version)
            if make_default and name not in self._routing:
                routing = dict(self._routing)
                routing[name] = _Route(stable=version)
                self._routing = routing
            self._obs_versions.set(
                sum(len(v) for v in self._versions.values())
            )
        if engine is not None:
            # Pin the fingerprint's canonical engine to the prebuilt one
            # (first registration wins — that is the dedup contract).
            with self._engine_lock:
                self._engines.setdefault(fingerprint, engine)
        return model

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._versions)

    def versions(self, name: str) -> List[str]:
        """Registered versions of ``name`` in registration order."""
        with self._lock:
            if name not in self._order:
                raise ModelNotFound(f"unknown model {name!r}")
            return list(self._order[name])

    def resolve(self, ref: str) -> ModelVersion:
        """``name[@version]`` → :class:`ModelVersion` (registry lookup).

        Bare names and ``@latest`` resolve to the newest *registered*
        version — resolution is about what exists, not what serves;
        :meth:`route` answers the traffic question.
        """
        name, version = parse_model_ref(ref)
        with self._lock:
            versions = self._versions.get(name)
            if not versions:
                raise ModelNotFound(f"unknown model {name!r}")
            if version is None:
                version = self._order[name][-1]
            model = versions.get(version)
            if model is None:
                known = ", ".join(self._order[name])
                raise ModelNotFound(
                    f"model {name!r} has no version {version!r} "
                    f"(registered: {known})"
                )
            return model

    def __contains__(self, ref: str) -> bool:
        try:
            self.resolve(ref)
            return True
        except (ModelNotFound, ValueError):
            return False

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def default_name(self) -> str:
        """The single routed name (requests that omit ``model``)."""
        routing = self._routing
        if len(routing) == 1:
            return next(iter(routing))
        if not routing:
            raise ModelNotFound("registry routes no models")
        raise ValueError(
            "request names no model but the registry serves several: "
            + ", ".join(sorted(routing))
        )

    def route(self, ref: Optional[str] = None,
              key: str = "") -> RouteDecision:
        """Pick the version that serves one request.

        Exact ``name@vN`` refs pin that version (bypassing the canary
        split); bare names and ``@latest`` follow the routing snapshot —
        the stable version, or the canary candidate when the seeded hash
        of ``(seed, name, key)`` falls inside the configured fraction.
        """
        if ref is None:
            name, version = self.default_name(), None
        else:
            name, version = parse_model_ref(ref)
        if version is not None:
            return RouteDecision(self.resolve(f"{name}@{version}"),
                                 pinned=True)
        route = self._routing.get(name)
        if route is None:
            # Registered but unrouted names still resolve to latest.
            return RouteDecision(self.resolve(name), pinned=True)
        if route.canary is not None and route.fraction > 0.0:
            if _assign_canary(route.seed, name, key, route.fraction):
                return RouteDecision(
                    self.resolve(f"{name}@{route.canary}"), canary=True
                )
        return RouteDecision(self.resolve(f"{name}@{route.stable}"))

    def serving(self, name: str) -> str:
        """The stable serving version of ``name``."""
        route = self._routing.get(name)
        if route is None:
            raise ModelNotFound(f"model {name!r} is not routed")
        return route.stable

    def canary_of(self, name: str) -> Optional[Tuple[str, float, int]]:
        """``(version, fraction, seed)`` of the active canary, if any."""
        route = self._routing.get(name)
        if route is None or route.canary is None:
            return None
        return route.canary, route.fraction, route.seed

    def swap(self, name: str, version: str) -> Tuple[str, str]:
        """Atomically make ``version`` the stable serving version.

        One lock, one snapshot flip: requests routed before the flip keep
        the old version's engine for their whole batch; requests routed
        after land on the new version.  A canary pointing at the promoted
        version is cleared (it just won).  Returns ``(old, new)``.
        """
        target = self.resolve(f"{name}@{version}")
        with self._lock:
            route = self._routing.get(name)
            old = route.stable if route is not None else target.version
            if route is not None and route.stable == target.version:
                return old, target.version  # no-op swap
            canary = route.canary if route is not None else None
            fraction = route.fraction if route is not None else 0.0
            seed = route.seed if route is not None else 0
            if canary == target.version:
                canary, fraction = None, 0.0
            routing = dict(self._routing)
            routing[name] = _Route(target.version, canary, fraction, seed)
            self._routing = routing
            self._swaps += 1
        self._obs_swaps.inc()
        return old, target.version

    def set_canary(self, name: str, version: str, fraction: float,
                   seed: int = 0) -> ModelVersion:
        """Route ``fraction`` of ``name``'s traffic to ``version``."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"canary fraction must be in (0, 1], got {fraction}"
            )
        target = self.resolve(f"{name}@{version}")
        with self._lock:
            route = self._routing.get(name)
            if route is None:
                raise ModelNotFound(f"model {name!r} is not routed")
            if route.stable == target.version:
                raise ValueError(
                    f"{target.ref} is already the stable version"
                )
            routing = dict(self._routing)
            routing[name] = _Route(route.stable, target.version,
                                   fraction, seed)
            self._routing = routing
        return target

    def clear_canary(self, name: str) -> Optional[str]:
        """Drop the canary split; returns the cleared version (if any)."""
        with self._lock:
            route = self._routing.get(name)
            if route is None or route.canary is None:
                return None
            cleared = route.canary
            routing = dict(self._routing)
            routing[name] = _Route(route.stable, seed=route.seed)
            self._routing = routing
        return cleared

    # ------------------------------------------------------------------ #
    # engines
    # ------------------------------------------------------------------ #
    def _build(self, artifact: InferenceArtifact) -> object:
        if self._builder is not None:
            return self._builder(artifact)
        from repro.serve.engine import build_engine

        return build_engine(artifact)

    def engine(self, ref: str) -> object:
        """The canonical (shared) engine for ``ref``'s fingerprint.

        Built lazily on first use and memoized per *fingerprint*, not per
        version: versions with identical frozen params share one engine,
        one set of staged shard segments, one plan cache.
        """
        model = self.resolve(ref)
        with self._engine_lock:
            engine = self._engines.get(model.fingerprint)
            if engine is not None:
                if model._prebuilt is None or engine is model._prebuilt:
                    self._shared_engines += 1
                return engine
        # Build outside the memo lock (engine builds stage weights and can
        # take a while); first store wins on a build race.
        built = (model._prebuilt if model._prebuilt is not None
                 else model._factory() if model._factory is not None
                 else self._build(model.artifact))
        with self._engine_lock:
            engine = self._engines.setdefault(model.fingerprint, built)
            if engine is built:
                self._engine_builds += 1
        if engine is not built:
            close = getattr(built, "close", None)
            if callable(close):
                close()
        return engine

    def engine_factory(self, ref: str) -> Callable[[], object]:
        """Zero-arg factory for supervisor replicas of ``ref``.

        Prebuilt engines are returned as-is (the test/faults path);
        factory-backed versions call their own factory; otherwise each
        call builds a fresh engine from the artifact — the supervisor's
        unit of recovery after a crash.
        """
        model = self.resolve(ref)

        def factory() -> object:
            if model._prebuilt is not None:
                return model._prebuilt
            if model._factory is not None:
                return model._factory()
            return self._build(model.artifact)

        factory.__name__ = f"engine_factory[{model.ref}]"
        return factory

    # ------------------------------------------------------------------ #
    # direct prediction (in-process path; the frontend routes itself)
    # ------------------------------------------------------------------ #
    def predict(self, sample: np.ndarray, ref: Optional[str] = None,
                key: Optional[str] = None,
                controller: Optional[object] = None) -> Dict[str, object]:
        """Route one sample, run it, and observe the per-version series.

        Returns ``{"label", "model", "version", "ref", "canary",
        "latency_ms", "margin"}``.  Engine failures are observed as
        errors on the routed version, then re-raised — the canary
        controller (``controller`` or one attached via
        :meth:`attach_controller`) sees every outcome.
        """
        sample = np.asarray(sample)
        decision = self.route(
            ref, key=key if key is not None else input_digest(sample)
        )
        engine = self.engine(decision.ref)
        watcher = controller if controller is not None else self._controller
        batch = sample[None, ...]
        started = time.perf_counter()
        margin: Optional[float] = None
        try:
            with_margin = getattr(engine, "predict_with_margin", None)
            if callable(with_margin):
                labels, margins = with_margin(batch)
                label, margin = int(labels[0]), float(margins[0])
            else:
                predict = getattr(engine, "predict", None) or engine
                label = int(np.asarray(predict(batch)).ravel()[0])
        except BaseException:
            latency_ms = 1000.0 * (time.perf_counter() - started)
            self.series.record(decision.name, decision.version,
                               latency_ms, ok=False)
            if watcher is not None:
                watcher.observe(decision.name, decision.version,
                                latency_ms, ok=False)
            raise
        latency_ms = 1000.0 * (time.perf_counter() - started)
        self.series.record(decision.name, decision.version, latency_ms)
        if watcher is not None:
            watcher.observe(decision.name, decision.version, latency_ms,
                            ok=True, margin=margin)
        return {
            "label": label, "model": decision.name,
            "version": decision.version, "ref": decision.ref,
            "canary": decision.canary, "latency_ms": latency_ms,
            "margin": margin,
        }

    _controller: Optional[object] = None

    def attach_controller(self, controller: object) -> None:
        """Attach a canary controller observed by :meth:`predict`."""
        self._controller = controller

    # ------------------------------------------------------------------ #
    # introspection + lifecycle
    # ------------------------------------------------------------------ #
    def describe(self) -> List[Dict[str, object]]:
        """JSON-ready summary (the ``list-models`` wire response)."""
        with self._lock:
            routing = self._routing
            names = sorted(self._versions)
            out: List[Dict[str, object]] = []
            for name in names:
                route = routing.get(name)
                entry: Dict[str, object] = {
                    "name": name,
                    "versions": list(self._order[name]),
                    "latest": self._order[name][-1],
                    "serving": route.stable if route else None,
                    "fingerprints": {
                        version: model.fingerprint
                        for version, model in self._versions[name].items()
                    },
                }
                if route is not None and route.canary is not None:
                    entry["canary"] = {
                        "version": route.canary,
                        "fraction": route.fraction,
                        "seed": route.seed,
                    }
                out.append(entry)
        return out

    def stats(self) -> Dict[str, int]:
        with self._lock:
            versions = sum(len(v) for v in self._versions.values())
            models = len(self._versions)
            swaps = self._swaps
        with self._engine_lock:
            builds = self._engine_builds
            shared = self._shared_engines
            engines = len(self._engines)
        return {
            "models": models, "versions": versions, "engines": engines,
            "engine_builds": builds, "shared_engine_hits": shared,
            "swaps": swaps,
        }

    def close(self) -> None:
        """Close every canonical engine exactly once (idempotent).

        Engine ``close()`` shuts down each cached plan's kernel backends
        (worker pools, shard segments); fingerprint-shared engines are
        closed once, and shared backends tolerate double close.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        with self._engine_lock:
            engines = list(self._engines.values())
            self._engines.clear()
        seen: set = set()
        for engine in engines:
            if id(engine) in seen:
                continue
            seen.add(id(engine))
            close = getattr(engine, "close", None)
            if callable(close):
                try:
                    close()
                except Exception:
                    pass

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "LATEST",
    "ModelNotFound",
    "ModelRegistry",
    "ModelVersion",
    "RouteDecision",
    "artifact_fingerprint",
    "parse_model_ref",
]
