"""Fault-tolerant network front-end: wire protocol, admission, deadlines.

This is where traffic finally enters the runtime over a socket instead of a
Python call.  The design goal is *explicit outcomes under failure*: every
request a client submits resolves to exactly one of

* ``ok``       — a label, computed within the deadline;
* ``shed``     — admission refused (queue saturated, draining, or no
  healthy replica), with an adaptive ``retry_after_ms`` backoff hint; or
* ``deadline_exceeded`` — the deadline passed before a result existed.

Nothing is dropped silently: overload degrades deterministically (the shed
request knows immediately and backs off), not by creeping latency for
everyone — the 802.11-DCF-shaped contract where the *server* publishes the
contention window and well-behaved clients spread themselves over it.

Wire protocol (version 1), symmetric in both directions::

    [4-byte big-endian header length][JSON header][payload_nbytes raw bytes]

The header is JSON; tensor payloads ride as raw bytes after it (shape and
dtype declared in the header), so a request costs one JSON parse plus one
zero-copy ``np.frombuffer``.  Request kinds: ``predict`` (optionally with
``deadline_ms`` and a ``model`` ref such as ``resnet18-mini@v2``),
``ping``, ``metrics``, and — on registry-backed servers — the admin kinds
``list-models``, ``swap`` and ``canary`` (start/rollback/status).

The server runs an asyncio loop in a background thread and feeds a
:class:`~repro.serve.supervisor.ReplicaSupervisor`; the synchronous
:class:`FrontendClient` is the reference client (and the ``serve-bench
--client`` engine).  Graceful drain follows a strict order: stop intake
(new requests shed with ``draining``), flush in-flight work, then close
engines and kernel pools deterministically.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import struct
import threading
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.obs import trace as obs_trace
from repro.obs.registry import get_registry
from repro.serve.cache import input_digest
from repro.serve.canary import CanaryController, CanaryHeldOff
from repro.serve.config import FrontendConfig
from repro.serve.errors import (
    DeadlineExceeded,
    ReplicaUnavailable,
    RequestShed,
)
from repro.serve.registry import ModelNotFound, ModelRegistry
from repro.serve.supervisor import EngineFactory, ReplicaSupervisor

PROTOCOL_VERSION = 1

_LEN = struct.Struct(">I")

#: Upper bound on a single frame header (sanity guard against garbage).
MAX_HEADER_BYTES = 1 << 20

#: Upper bound on a tensor payload (64 MiB — far above any served sample).
MAX_PAYLOAD_BYTES = 64 << 20


def _encode_frame(header: Dict[str, Any], payload: bytes = b"") -> bytes:
    if payload:
        header = dict(header, payload_nbytes=len(payload))
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(raw)) + raw + payload


def _encode_sample(sample: np.ndarray) -> Tuple[Dict[str, Any], bytes]:
    sample = np.ascontiguousarray(sample, dtype=np.float32)
    return ({"shape": list(sample.shape), "dtype": "float32"},
            sample.tobytes())


def _decode_sample(header: Dict[str, Any], payload: bytes) -> np.ndarray:
    shape = tuple(int(v) for v in header.get("shape", ()))
    dtype = np.dtype(str(header.get("dtype", "float32")))
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if expected != len(payload):
        raise ValueError(
            f"payload is {len(payload)} bytes but shape {shape} "
            f"({dtype}) needs {expected}"
        )
    return np.frombuffer(payload, dtype=dtype).reshape(shape)


# --------------------------------------------------------------------------- #
# server
# --------------------------------------------------------------------------- #
class ServeFrontend:
    """Asyncio socket front-end over a supervised replica pool.

    Parameters
    ----------
    engine_factory:
        Zero-argument engine builder, handed to the
        :class:`ReplicaSupervisor` as its unit of recovery.  An existing
        :class:`ReplicaSupervisor` may be passed via ``supervisor`` instead
        (fault-injection tests do this to wrap replicas), or a
        :class:`~repro.serve.registry.ModelRegistry` via ``registry`` for
        multi-model serving — exactly one of the three.
    config:
        :class:`FrontendConfig` — listen address, replica count, admission
        bound, default deadline, drain budget.
    registry / controller:
        A registry-backed front-end serves every routed model through
        per-model replica sets, accepts the ``model`` header field and the
        ``list-models`` / ``swap`` / ``canary`` admin kinds, and drives a
        :class:`~repro.serve.canary.CanaryController` (a configured one
        may be injected; by default rollbacks retire the candidate's
        replica set so a supervised restart cannot resurrect it).
    """

    def __init__(
        self,
        engine_factory: Optional[EngineFactory] = None,
        config: Optional[FrontendConfig] = None,
        supervisor: Optional[ReplicaSupervisor] = None,
        registry: Optional[ModelRegistry] = None,
        controller: Optional[CanaryController] = None,
    ) -> None:
        sources = sum(
            source is not None
            for source in (engine_factory, supervisor, registry)
        )
        if sources != 1:
            raise ValueError(
                "pass exactly one of engine_factory, supervisor or registry"
            )
        if controller is not None and registry is None:
            raise ValueError("controller requires a registry")
        self.config = config if config is not None else FrontendConfig()
        self.registry = registry
        if registry is not None:
            self.supervisor = ReplicaSupervisor(config=self.config)
            self.controller = (
                controller if controller is not None
                else CanaryController(registry)
            )
            # Chain (don't replace) any user rollback hook: the front-end
            # must always retire the rolled-back version's replica set.
            user_hook = self.controller.on_rollback
            def _rollback_hook(name: str, version: str,
                               reason: str) -> None:
                self._on_canary_rollback(name, version, reason)
                if user_hook is not None:
                    user_hook(name, version, reason)
            self.controller.on_rollback = _rollback_hook
        else:
            self.supervisor = (
                supervisor if supervisor is not None
                else ReplicaSupervisor(engine_factory, self.config)
            )
            self.controller = None
        self._swap_lock = threading.Lock()
        self.metrics = self.supervisor.metrics
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._lifecycle = threading.Lock()
        self._draining = False
        self._closed = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._conn_tasks: set = set()
        self._obs_queue_depth = get_registry().gauge(
            "repro_frontend_queue_depth",
            help="Requests admitted by the front-end, not yet answered.")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServeFrontend":
        """Start replicas, the event loop thread, and the listener."""
        with self._lifecycle:
            if self._server is not None:
                return self
            if self._closed:
                raise RuntimeError("front-end already closed")
            if self.registry is not None:
                # Warm a replica set per routed model before the listener
                # opens, so the first request never pays an engine build.
                for name in self.registry.names():
                    try:
                        serving = self.registry.serving(name)
                    except ModelNotFound:
                        continue  # registered but unrouted
                    self._ensure_serving(f"{name}@{serving}")
            self.supervisor.start()
            self._loop = asyncio.new_event_loop()
            self._thread = threading.Thread(
                target=self._loop.run_forever, name="serve-frontend",
                daemon=True,
            )
            self._thread.start()
            future = asyncio.run_coroutine_threadsafe(
                asyncio.start_server(
                    self._handle_connection,
                    host=self.config.host, port=self.config.port,
                ),
                self._loop,
            )
            self._server = future.result(timeout=10.0)
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        if self._server is None:
            raise RuntimeError("front-end not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        return (self.config.host, self.port)

    @property
    def inflight(self) -> int:
        """Admitted wire requests not yet answered."""
        with self._inflight_lock:
            return self._inflight

    def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown, in the documented order.

        1. **Stop intake** — the listener closes and requests already on
           open connections shed with reason ``draining``.
        2. **Flush in-flight work** — admitted requests run to their
           explicit outcome, bounded by ``timeout`` (default the config's
           ``drain_timeout_s``).
        3. **Close the pool** — the supervisor drains each replica batcher
           and closes every engine, which shuts down kernel worker pools
           and unlinks shard segments.

        Idempotent; :meth:`close` calls it before stopping the loop.
        """
        timeout = (timeout if timeout is not None
                   else self.config.drain_timeout_s)
        with self._lifecycle:
            if self._draining:
                return
            self._draining = True
            server, loop = self._server, self._loop
        if server is not None and loop is not None:
            asyncio.run_coroutine_threadsafe(
                self._stop_listener(server), loop
            ).result(timeout=10.0)
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            with self._inflight_lock:
                if self._inflight <= 0:
                    break
            time.sleep(0.001)
        self.supervisor.stop(drain=True, drain_timeout=max(
            0.0, deadline - time.perf_counter()
        ))

    @staticmethod
    async def _stop_listener(server: asyncio.AbstractServer) -> None:
        server.close()
        await server.wait_closed()

    def close(self) -> None:
        """Drain, then stop the event loop thread (idempotent)."""
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
        self.drain()
        loop, self._loop = self._loop, None
        thread, self._thread = self._thread, None
        self._server = None
        if loop is not None:
            async def _cancel_connections() -> None:
                tasks = list(self._conn_tasks)
                for task in tasks:
                    task.cancel()
                if tasks:
                    await asyncio.gather(*tasks, return_exceptions=True)
            try:
                asyncio.run_coroutine_threadsafe(
                    _cancel_connections(), loop
                ).result(timeout=5.0)
            except Exception:
                pass
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=5.0)
            loop.close()

    def __enter__(self) -> "ServeFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # model lifecycle (registry-backed front-ends)
    # ------------------------------------------------------------------ #
    def _require_registry(self) -> ModelRegistry:
        if self.registry is None:
            raise RuntimeError("this front-end serves no model registry")
        return self.registry

    def _ensure_serving(self, ref: str) -> str:
        """Make sure ``ref``'s replica set exists (idempotent); warm it."""
        registry = self._require_registry()
        model = registry.resolve(ref)
        self.supervisor.add_model(
            model.ref, registry.engine_factory(model.ref)
        )
        return model.ref

    def _routed_refs(self) -> set:
        """Every ``name@version`` the routing snapshot still references."""
        registry = self._require_registry()
        refs = set()
        for name in registry.names():
            try:
                refs.add(f"{name}@{registry.serving(name)}")
            except ModelNotFound:
                continue
            canary = registry.canary_of(name)
            if canary is not None:
                refs.add(f"{name}@{canary[0]}")
        return refs

    def _retire_unrouted(self, ref: str) -> None:
        """Drain and drop ``ref``'s replica set once routing left it."""
        if ref in self._routed_refs():
            return
        self.supervisor.remove_model(ref, drain=True)

    def _retire_async(self, ref: str) -> None:
        threading.Thread(
            target=self._retire_unrouted, args=(ref,),
            name=f"retire-{ref}", daemon=True,
        ).start()

    def swap(self, ref: str) -> Tuple[str, str]:
        """Atomic hot-swap: make ``ref`` the stable version of its model.

        Ordering is what makes it hitless: the new version's replica set
        is built and warmed *first*, then the routing snapshot flips under
        the registry lock (new requests land on the new version while
        in-flight batches finish on the old engine), and only then is the
        old version's set drained and retired — in the background, and
        only if nothing routes to it anymore.  Returns ``(old, new)``.
        """
        registry = self._require_registry()
        model = registry.resolve(ref)
        with self._swap_lock:
            self._ensure_serving(model.ref)
            old, new = registry.swap(model.name, model.version)
        if old != new:
            self._retire_async(f"{model.name}@{old}")
        return old, new

    def start_canary(self, ref: str, fraction: float, seed: int = 0,
                     force: bool = False) -> str:
        """Warm ``ref``'s replica set and open a canary split to it."""
        registry = self._require_registry()
        model = registry.resolve(ref)
        if self.controller is None:
            raise RuntimeError("front-end has no canary controller")
        with self._swap_lock:
            self._ensure_serving(model.ref)
            self.controller.start(model.name, model.version, fraction,
                                  seed=seed, force=force)
        return model.ref

    def rollback_canary(self, name: str, reason: str = "admin") -> bool:
        if self.controller is None:
            raise RuntimeError("front-end has no canary controller")
        return self.controller.rollback(name, reason=reason)

    def _on_canary_rollback(self, name: str, version: str,
                            reason: str) -> None:
        # Retire in the background: rollbacks fire from observe() on the
        # serving path, and draining a replica set there would stall it.
        self._retire_async(f"{name}@{version}")

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        pending: set = set()
        try:
            while True:
                try:
                    frame = await self._read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if frame is None:
                    break
                header, payload = frame
                # Requests pipeline: each runs as its own task so one slow
                # predict does not head-of-line-block the connection.
                request_task = asyncio.ensure_future(
                    self._serve_request(header, payload, writer, write_lock)
                )
                pending.add(request_task)
                request_task.add_done_callback(pending.discard)
        except asyncio.CancelledError:
            pass
        finally:
            if pending:
                try:
                    await asyncio.gather(*pending, return_exceptions=True)
                except asyncio.CancelledError:
                    pass
            try:
                writer.close()
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    async def _read_frame(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[Dict[str, Any], bytes]]:
        raw_len = await reader.readexactly(4)
        (header_len,) = _LEN.unpack(raw_len)
        if not 0 < header_len <= MAX_HEADER_BYTES:
            raise ConnectionError(f"bad header length {header_len}")
        header = json.loads(await reader.readexactly(header_len))
        payload = b""
        nbytes = int(header.get("payload_nbytes", 0))
        if nbytes:
            if nbytes > MAX_PAYLOAD_BYTES:
                raise ConnectionError(f"payload too large ({nbytes} bytes)")
            payload = await reader.readexactly(nbytes)
        return header, payload

    async def _respond(self, writer: asyncio.StreamWriter,
                       write_lock: asyncio.Lock,
                       header: Dict[str, Any]) -> None:
        async with write_lock:
            writer.write(_encode_frame(header))
            try:
                await writer.drain()
            except ConnectionError:
                pass

    def _shed_header(self, request_id: Any, reason: str,
                     retry_after_ms: Optional[float] = None) -> Dict[str, Any]:
        if retry_after_ms is None:
            config = self.config
            retry_after_ms = self.metrics.retry_after_ms(
                base_ms=config.shed_retry_base_ms,
                per_depth_ms=config.shed_retry_per_depth_ms,
                cap_ms=config.shed_retry_cap_ms,
            )
        return {"id": request_id, "status": "shed", "reason": reason,
                "retry_after_ms": float(retry_after_ms)}

    async def _serve_request(
        self,
        header: Dict[str, Any],
        payload: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        kind = header.get("kind", "predict")
        request_id = header.get("id")
        if kind == "ping":
            await self._respond(writer, write_lock, {
                "id": request_id, "status": "ok", "pong": True,
                "draining": self._draining,
                "protocol": PROTOCOL_VERSION,
            })
            return
        if kind == "metrics":
            response = {
                "id": request_id, "status": "ok",
                "metrics": self.metrics.snapshot(),
                "replicas": self.supervisor.replica_states(),
                "restarts": self.supervisor.restarts,
                "obs": get_registry().snapshot(),
            }
            if self.registry is not None:
                response["models"] = self.registry.describe()
                response["model_replicas"] = self.supervisor.model_states()
            await self._respond(writer, write_lock, response)
            return
        if kind in ("list-models", "swap", "canary"):
            await self._serve_admin(kind, header, request_id,
                                    writer, write_lock)
            return
        if kind != "predict":
            await self._respond(writer, write_lock, {
                "id": request_id, "status": "error",
                "error": f"unknown request kind {kind!r}",
            })
            return
        await self._serve_predict(header, payload, request_id,
                                  writer, write_lock)

    async def _serve_admin(
        self,
        kind: str,
        header: Dict[str, Any],
        request_id: Any,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Registry admin kinds; sync work runs off the event loop."""
        loop = asyncio.get_running_loop()

        def _run() -> Dict[str, Any]:
            registry = self._require_registry()
            if kind == "list-models":
                return {"status": "ok", "models": registry.describe(),
                        "stats": registry.stats()}
            if kind == "swap":
                ref = header.get("model")
                if not ref:
                    return {"status": "error",
                            "error": "swap needs a model ref"}
                old, new = self.swap(str(ref))
                return {"status": "ok",
                        "swapped": {"from": old, "to": new}}
            action = str(header.get("action", "status"))
            if action == "start":
                ref = header.get("model")
                if not ref:
                    return {"status": "error",
                            "error": "canary start needs a model ref"}
                served = self.start_canary(
                    str(ref),
                    float(header.get("fraction", 0.1)),
                    seed=int(header.get("seed", 0)),
                    force=bool(header.get("force", False)),
                )
                return {"status": "ok", "canary": served}
            if action == "rollback":
                name = header.get("model")
                if not name:
                    return {"status": "error",
                            "error": "canary rollback needs a model name"}
                rolled = self.rollback_canary(
                    str(name), reason=str(header.get("reason", "admin")))
                return {"status": "ok", "rolled_back": rolled}
            if action == "status":
                if self.controller is None:
                    return {"status": "error",
                            "error": "no canary controller"}
                name = header.get("model")
                return {"status": "ok",
                        "canary": self.controller.status(
                            str(name) if name else None)}
            return {"status": "error",
                    "error": f"unknown canary action {action!r}"}

        try:
            response = await loop.run_in_executor(None, _run)
        except CanaryHeldOff as held:
            response = {"status": "error", "error": str(held),
                        "retry_after_s": held.retry_after_s}
        except (ModelNotFound, ValueError, RuntimeError) as error:
            response = {"status": "error", "error": str(error)}
        response["id"] = request_id
        await self._respond(writer, write_lock, response)

    async def _serve_predict(
        self,
        header: Dict[str, Any],
        payload: bytes,
        request_id: Any,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        # --- admission control -------------------------------------- #
        if self._draining:
            self.metrics.record_shed()
            await self._respond(writer, write_lock,
                                self._shed_header(request_id, "draining"))
            return
        admitted = False
        with self._inflight_lock:
            if self._inflight < self.config.max_queue_depth:
                self._inflight += 1
                admitted = True
                depth = self._inflight
        if not admitted:
            self.metrics.record_shed()
            await self._respond(writer, write_lock,
                                self._shed_header(request_id, "queue_full"))
            return
        self._obs_queue_depth.set(depth)
        trace = obs_trace.maybe_trace("frontend.request")
        started = time.perf_counter()
        try:
            outcome = await self._predict_outcome(header, payload, started)
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                depth = self._inflight
            self._obs_queue_depth.set(depth)
        if trace is not None:
            trace.record_span("frontend.predict", started,
                              time.perf_counter(),
                              outcome=outcome.get("status"))
            trace.attrs["outcome"] = outcome.get("status")
            obs_trace.finish_trace(trace)
        outcome["id"] = request_id
        outcome["server_ms"] = 1000.0 * (time.perf_counter() - started)
        await self._respond(writer, write_lock, outcome)

    async def _predict_outcome(
        self, header: Dict[str, Any], payload: bytes, started: float
    ) -> Dict[str, Any]:
        """Run one admitted predict to its explicit outcome header."""
        try:
            sample = _decode_sample(header, payload)
        except Exception as error:
            return {"status": "error", "error": f"bad tensor frame: {error}"}
        model_ref = header.get("model")
        route = None
        model_key: Optional[str] = None
        if self.registry is not None:
            try:
                route = self.registry.route(
                    str(model_ref) if model_ref else None,
                    key=input_digest(sample),
                )
            except (ModelNotFound, ValueError) as error:
                return {"status": "error", "error": str(error)}
            model_key = route.ref
            if not self.supervisor.has_model(model_key):
                # Raced a retire (the set is gone but a stale pin or a
                # just-rolled-back canary asked for it): shed explicitly.
                self.metrics.record_shed()
                return self._shed_header(None, "no_replica")
        elif model_ref:
            return {"status": "error",
                    "error": "server has no model registry; "
                             "omit the model field"}
        deadline_ms = float(
            header.get("deadline_ms") or self.config.default_deadline_ms
        )
        deadline_s = started + deadline_ms / 1000.0
        outcome = await self._routed_outcome(
            sample, model_key, deadline_ms, deadline_s
        )
        if route is not None:
            status = outcome.get("status")
            if status in ("ok", "error", "deadline_exceeded") or (
                    status == "shed"
                    and outcome.get("reason") == "no_replica"):
                # Version-attributed outcomes: results and failures the
                # routed version owns (its engine erred, stalled past the
                # deadline, or its whole set is down) — the canary
                # controller's comparison feed.  Pre-engine load sheds
                # (queue_full, draining) are admission, not the version.
                latency_ms = 1000.0 * (time.perf_counter() - started)
                ok = status == "ok"
                self.metrics.record_model_request(
                    route.name, route.version, latency_ms, ok=ok)
                if self.controller is not None:
                    self.controller.observe(
                        route.name, route.version, latency_ms, ok=ok)
            if outcome.get("status") == "ok":
                outcome["model"] = route.ref
                if route.canary:
                    outcome["canary"] = True
        return outcome

    async def _routed_outcome(
        self,
        sample: np.ndarray,
        model_key: Optional[str],
        deadline_ms: float,
        deadline_s: float,
    ) -> Dict[str, Any]:
        try:
            future = self.supervisor.submit(
                sample, deadline_s=deadline_s, model=model_key
            )
        except RequestShed as shed:
            return self._shed_header(None, shed.reason, shed.retry_after_ms)
        try:
            remaining = max(0.0, deadline_s - time.perf_counter())
            label = await asyncio.wait_for(
                asyncio.wrap_future(future), timeout=remaining
            )
            return {"status": "ok", "label": int(label)}
        except asyncio.TimeoutError:
            # The replica may still be computing; cancelling decides who
            # accounts the outcome (see MicroBatcher._triage_batch).
            if future.cancel():
                self.metrics.record_deadline_exceeded()
            return {"status": "deadline_exceeded",
                    "deadline_ms": deadline_ms}
        except DeadlineExceeded:
            return {"status": "deadline_exceeded",
                    "deadline_ms": deadline_ms}
        except RequestShed as shed:
            return self._shed_header(None, shed.reason, shed.retry_after_ms)
        except ReplicaUnavailable:
            self.metrics.record_shed()
            return self._shed_header(None, "no_replica")
        except asyncio.CancelledError:
            # Drain cancelled the connection task mid-predict: still an
            # explicit outcome for the client.
            self.metrics.record_deadline_exceeded()
            return {"status": "deadline_exceeded",
                    "deadline_ms": deadline_ms}
        except Exception as error:
            # Engine errors that survived every replica retry: surfaced,
            # never swallowed.
            return {"status": "error",
                    "error": f"{type(error).__name__}: {error}"}


# --------------------------------------------------------------------------- #
# client
# --------------------------------------------------------------------------- #
class FrontendClient:
    """Synchronous reference client for the wire protocol.

    One socket, strict request/response (run several clients for
    concurrency — ``serve-bench --client`` does).  Shed responses raise
    :class:`RequestShed` with the server's ``retry_after_ms`` hint;
    :meth:`predict_with_retry` honours it with DCF-style adaptive backoff —
    the contention window doubles on every consecutive shed and collapses
    on success, so a fleet of well-behaved clients spreads itself over the
    server's published drain time instead of retrying in lockstep.
    """

    def __init__(self, host: str, port: int,
                 connect_timeout: float = 5.0, seed: int = 0) -> None:
        self.host, self.port = host, int(port)
        self._sock = socket.create_connection(
            (host, int(port)), timeout=connect_timeout
        )
        self._lock = threading.Lock()
        self._next_id = 0
        self._rng = random.Random(seed)
        self._window = 1.0  # DCF contention window multiplier
        self.sheds_seen = 0
        self.retry_sleep_s = 0.0

    # -------------------------------------------------------------- #
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "FrontendClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _recv_exact(self, nbytes: int) -> bytes:
        chunks = []
        while nbytes:
            chunk = self._sock.recv(nbytes)
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            nbytes -= len(chunk)
        return b"".join(chunks)

    def _roundtrip(self, header: Dict[str, Any], payload: bytes = b"",
                   timeout: Optional[float] = None) -> Dict[str, Any]:
        with self._lock:
            self._next_id += 1
            header = dict(header, id=self._next_id)
            self._sock.settimeout(timeout if timeout is not None else 30.0)
            self._sock.sendall(_encode_frame(header, payload))
            (header_len,) = _LEN.unpack(self._recv_exact(4))
            response = json.loads(self._recv_exact(header_len))
            nbytes = int(response.get("payload_nbytes", 0))
            if nbytes:
                self._recv_exact(nbytes)
            return response

    # -------------------------------------------------------------- #
    def ping(self) -> Dict[str, Any]:
        return self._roundtrip({"kind": "ping"})

    def server_metrics(self) -> Dict[str, Any]:
        """The server-side metrics snapshot + replica states."""
        return self._roundtrip({"kind": "metrics"})

    def list_models(self) -> Dict[str, Any]:
        """Registry summary of a registry-backed server."""
        return self._roundtrip({"kind": "list-models"})

    def swap(self, model_ref: str) -> Dict[str, Any]:
        """Ask the server to hot-swap ``name@version`` to stable."""
        response = self._roundtrip(
            {"kind": "swap", "model": str(model_ref)}, timeout=60.0)
        if response.get("status") != "ok":
            raise RuntimeError(
                f"swap failed: {response.get('error', response)}")
        return response

    def canary_start(self, model_ref: str, fraction: float,
                     seed: int = 0, force: bool = False) -> Dict[str, Any]:
        response = self._roundtrip({
            "kind": "canary", "action": "start", "model": str(model_ref),
            "fraction": float(fraction), "seed": int(seed),
            "force": bool(force),
        }, timeout=60.0)
        if response.get("status") != "ok":
            raise RuntimeError(
                f"canary start failed: {response.get('error', response)}")
        return response

    def canary_rollback(self, name: str,
                        reason: str = "admin") -> Dict[str, Any]:
        response = self._roundtrip({
            "kind": "canary", "action": "rollback", "model": str(name),
            "reason": str(reason),
        }, timeout=60.0)
        if response.get("status") != "ok":
            raise RuntimeError(
                f"canary rollback failed: "
                f"{response.get('error', response)}")
        return response

    def canary_status(self, name: Optional[str] = None) -> Dict[str, Any]:
        header: Dict[str, Any] = {"kind": "canary", "action": "status"}
        if name is not None:
            header["model"] = str(name)
        return self._roundtrip(header)

    def predict(self, sample: np.ndarray,
                deadline_ms: Optional[float] = None,
                model: Optional[str] = None) -> int:
        """One wire prediction; raises the explicit non-result outcomes."""
        return self.predict_routed(sample, deadline_ms=deadline_ms,
                                   model=model)[0]

    def predict_routed(
        self,
        sample: np.ndarray,
        deadline_ms: Optional[float] = None,
        model: Optional[str] = None,
    ) -> Tuple[int, Optional[str]]:
        """Predict and report which model version answered.

        Returns ``(label, model_ref)`` — the ref is the server-routed
        ``name@version`` (``None`` from non-registry servers), the echoed
        version tag the swap/canary soak asserts on.
        """
        meta, payload = _encode_sample(np.asarray(sample))
        header = {"kind": "predict", **meta}
        if deadline_ms is not None:
            header["deadline_ms"] = float(deadline_ms)
        if model is not None:
            header["model"] = str(model)
        socket_timeout = ((deadline_ms or 30000.0) / 1000.0) + 10.0
        response = self._roundtrip(header, payload, timeout=socket_timeout)
        status = response.get("status")
        if status == "ok":
            return int(response["label"]), response.get("model")
        if status == "shed":
            self.sheds_seen += 1
            raise RequestShed(
                retry_after_ms=float(response.get("retry_after_ms", 0.0)),
                reason=str(response.get("reason", "queue_full")),
            )
        if status == "deadline_exceeded":
            raise DeadlineExceeded(
                "server reported deadline exceeded",
                deadline_ms=response.get("deadline_ms"),
            )
        raise RuntimeError(
            f"server error: {response.get('error', response)}"
        )

    def predict_with_retry(
        self,
        sample: np.ndarray,
        deadline_ms: Optional[float] = None,
        max_attempts: int = 6,
        sleep=time.sleep,
        model: Optional[str] = None,
    ) -> int:
        """Predict, backing off adaptively on shed responses.

        Each shed sleeps ``retry_after_ms`` scaled by a uniformly-drawn
        point in the current contention window; the window doubles per
        consecutive shed (capped) and halves on success.  Deterministic
        for a given client ``seed``.
        """
        last: Optional[RequestShed] = None
        for _ in range(max(1, int(max_attempts))):
            try:
                label = self.predict(sample, deadline_ms=deadline_ms,
                                     model=model)
                self._window = max(1.0, self._window / 2.0)
                return label
            except RequestShed as shed:
                last = shed
                wait_s = (shed.retry_after_ms / 1000.0) * (
                    1.0 + self._rng.random() * self._window
                )
                self._window = min(self._window * 2.0, 16.0)
                self.retry_sleep_s += wait_s
                sleep(wait_s)
        raise last if last is not None else RuntimeError("no attempts made")


__all__ = [
    "ServeFrontend",
    "FrontendClient",
    "PROTOCOL_VERSION",
    "MAX_HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
]
