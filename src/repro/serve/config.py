"""Serving configuration.

Unlike the training-side dataclass configs, :class:`ServeConfig` follows the
Hugging Face ``PretrainedConfig`` idiom (explicit keyword arguments stored on
``self``, derived fields computed in ``__init__``, unknown keyword arguments
tolerated) so that serving deployments can carry extra, deployment-specific
settings without the library having to know about them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.runtime.backends import Backend, get_backend
from repro.runtime.plan import AUTO_PINS, validate_pins


class ServeConfig:
    """Configuration of the batched INT8 inference service.

    Parameters
    ----------
    max_batch_size:
        Largest engine batch the micro-batcher will assemble.
    max_wait_ms:
        How long (milliseconds) a worker waits for additional requests after
        dequeuing the first one before dispatching a partial batch.  ``0``
        disables coalescing (every request runs alone — useful as a baseline).
    num_workers:
        Number of batch-serving worker threads.
    cache_capacity:
        Capacity of the LRU prediction cache; ``0`` disables caching.
    dedup_inflight:
        Coalesce requests whose input digest matches one already queued or
        executing: they share the original request's future instead of being
        re-batched.  Complements the cache, which only helps after the first
        answer lands.
    poll_timeout_ms:
        Idle workers re-check the shutdown flag at this interval.
    request_timeout_s:
        Default timeout when synchronously waiting for a prediction.
    backend:
        Runtime kernel backend for the engine (``"reference"``/``"fast"``/
        ``"parallel"``); ``None`` defers to the ambient :mod:`repro.runtime`
        selection (``REPRO_BACKEND`` or the process default).
    pins:
        Optional per-layer backend pins (``{"gemm": "parallel", "unit0":
        "fast"}`` — see :func:`repro.runtime.plan.validate_pins` for the
        spec syntax), or the string ``"auto"`` to resolve every layer to
        its measured winner (see :mod:`repro.runtime.autopin`).  The
        micro-batcher applies them to its engine via ``engine.apply_pins``
        at construction, so they take effect even on an engine built
        without pins; engines that cannot honour pins (bare predict
        callables) are rejected.  The engine memoizes compiled plans per
        ``(units_fingerprint, pins, fusion)`` key, so re-applying a pin
        spec it has seen — including across repeated batcher restarts over
        one engine — hits the cache instead of recompiling.
    fuse:
        Whether this deployment serves fused plans (conv/norm/gemm/
        activation runs collapsed into single steps — the default).
        ``False`` keeps the step-per-module walk, e.g. as a serving A/B
        baseline.  The micro-batcher enforces it on its engine via
        ``engine.set_fusion`` (plan-cache backed, so toggling is free);
        an engine whose fusion mode cannot be switched is rejected when
        the config disagrees with it.
    autoscale_wait / min_wait_ms:
        When ``autoscale_wait`` is true the micro-batcher adapts its
        coalescing window to the queue-depth EWMA, between ``min_wait_ms``
        and ``max_wait_ms``: a deep backlog fills batches by itself (waiting
        only adds latency), an idle queue earns the full window.
    autoscale_workers / min_workers / max_workers / autoscale_cooldown_ms:
        When ``autoscale_workers`` is true the micro-batcher spawns and
        retires serve workers on sustained queue-depth EWMA pressure: an
        EWMA above ``max_batch_size`` (a full batch always waiting) adds a
        worker up to ``max_workers``; an EWMA below a quarter of
        ``max_batch_size`` retires one down to ``min_workers``.
        ``num_workers`` stays the starting count, and scale operations are
        at least ``autoscale_cooldown_ms`` apart so the EWMA signal is
        sustained pressure, not one burst.
    max_queue_depth:
        Admission-control bound on accepted-but-unresolved requests.  At
        the bound, ``submit`` sheds (raises
        :class:`~repro.serve.errors.RequestShed` with an adaptive
        ``retry_after_ms`` hint) instead of queueing — deterministic
        degradation for the shed request rather than creeping latency for
        everyone.  ``0`` (the default) disables admission control.
    shed_retry_base_ms / shed_retry_per_depth_ms / shed_retry_cap_ms:
        The shed backoff hint: ``base + per_depth * queue_depth_EWMA``
        capped at ``cap`` — an idle service hands back the base, a
        saturated one approaches the cap, so well-behaved clients back off
        in proportion to the real backlog.
    """

    config_type = "serve"

    def __init__(
        self,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        num_workers: int = 1,
        cache_capacity: int = 256,
        dedup_inflight: bool = True,
        poll_timeout_ms: float = 20.0,
        request_timeout_s: float = 30.0,
        backend: Any = None,
        pins: Any = None,
        fuse: bool = True,
        autoscale_wait: bool = False,
        min_wait_ms: float = 0.0,
        autoscale_workers: bool = False,
        min_workers: Optional[int] = None,
        max_workers: Optional[int] = None,
        autoscale_cooldown_ms: float = 250.0,
        max_queue_depth: int = 0,
        shed_retry_base_ms: float = 5.0,
        shed_retry_per_depth_ms: float = 2.0,
        shed_retry_cap_ms: float = 1000.0,
        **kwargs: Any,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if min_wait_ms < 0 or min_wait_ms > max_wait_ms:
            raise ValueError(
                f"min_wait_ms must be in [0, max_wait_ms={max_wait_ms}], "
                f"got {min_wait_ms}"
            )
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if cache_capacity < 0:
            raise ValueError(f"cache_capacity must be >= 0, got {cache_capacity}")
        if poll_timeout_ms <= 0:
            raise ValueError(f"poll_timeout_ms must be > 0, got {poll_timeout_ms}")
        if request_timeout_s <= 0:
            raise ValueError(f"request_timeout_s must be > 0, got {request_timeout_s}")

        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.num_workers = int(num_workers)
        self.cache_capacity = int(cache_capacity)
        self.dedup_inflight = bool(dedup_inflight)
        self.poll_timeout_ms = float(poll_timeout_ms)
        self.request_timeout_s = float(request_timeout_s)
        if backend is not None and not isinstance(backend, Backend):
            get_backend(backend)  # fail at construction, not in a worker
        self.backend = backend
        if pins == AUTO_PINS:
            self.pins: Any = AUTO_PINS
        else:
            self.pins = dict(validate_pins(pins)) if pins else None
        self.fuse = bool(fuse)
        self.autoscale_wait = bool(autoscale_wait)
        self.min_wait_ms = float(min_wait_ms)

        self.autoscale_workers = bool(autoscale_workers)
        self.min_workers = (
            1 if min_workers is None else int(min_workers)
        )
        self.max_workers = (
            max(4, self.num_workers) if max_workers is None else int(max_workers)
        )
        if autoscale_cooldown_ms < 0:
            raise ValueError(
                f"autoscale_cooldown_ms must be >= 0, got {autoscale_cooldown_ms}"
            )
        self.autoscale_cooldown_ms = float(autoscale_cooldown_ms)
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0 (0 disables admission "
                f"control), got {max_queue_depth}"
            )
        if shed_retry_base_ms < 0 or shed_retry_per_depth_ms < 0:
            raise ValueError("shed retry hints must be >= 0")
        if shed_retry_cap_ms < shed_retry_base_ms:
            raise ValueError(
                f"shed_retry_cap_ms ({shed_retry_cap_ms}) must be >= "
                f"shed_retry_base_ms ({shed_retry_base_ms})"
            )
        self.max_queue_depth = int(max_queue_depth)
        self.shed_retry_base_ms = float(shed_retry_base_ms)
        self.shed_retry_per_depth_ms = float(shed_retry_per_depth_ms)
        self.shed_retry_cap_ms = float(shed_retry_cap_ms)
        if self.autoscale_workers and not (
            1 <= self.min_workers <= self.num_workers <= self.max_workers
        ):
            raise ValueError(
                "autoscale_workers requires 1 <= min_workers <= num_workers "
                f"<= max_workers, got min={self.min_workers} "
                f"start={self.num_workers} max={self.max_workers}"
            )

        # Derived fields used by the hot path (seconds, not milliseconds).
        self.max_wait_s = self.max_wait_ms / 1000.0
        self.min_wait_s = self.min_wait_ms / 1000.0
        self.poll_timeout_s = self.poll_timeout_ms / 1000.0
        self.autoscale_cooldown_s = self.autoscale_cooldown_ms / 1000.0

        # Deployment-specific extras ride along untouched.
        for key, value in kwargs.items():
            setattr(self, key, value)
        self._extra_keys = tuple(kwargs)

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable view of the configuration."""
        payload = {
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "num_workers": self.num_workers,
            "cache_capacity": self.cache_capacity,
            "dedup_inflight": self.dedup_inflight,
            "poll_timeout_ms": self.poll_timeout_ms,
            "request_timeout_s": self.request_timeout_s,
            "backend": getattr(self.backend, "name", self.backend),
            "pins": self.pins,
            "fuse": self.fuse,
            "autoscale_wait": self.autoscale_wait,
            "min_wait_ms": self.min_wait_ms,
            "autoscale_workers": self.autoscale_workers,
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "autoscale_cooldown_ms": self.autoscale_cooldown_ms,
            "max_queue_depth": self.max_queue_depth,
            "shed_retry_base_ms": self.shed_retry_base_ms,
            "shed_retry_per_depth_ms": self.shed_retry_per_depth_ms,
            "shed_retry_cap_ms": self.shed_retry_cap_ms,
        }
        for key in self._extra_keys:
            payload[key] = getattr(self, key)
        return payload

    def __repr__(self) -> str:
        fields = ", ".join(f"{key}={value!r}" for key, value in self.as_dict().items())
        return f"{type(self).__name__}({fields})"


class FrontendConfig(ServeConfig):
    """Configuration of the fault-tolerant network front-end.

    Extends :class:`ServeConfig` (each replica's micro-batcher is built
    from the shared batching knobs) with the wire / supervision layer:

    Parameters
    ----------
    host / port:
        Listen address.  ``port=0`` binds an ephemeral port (read it back
        from :attr:`ServeFrontend.port` — the test/benchmark idiom).
    num_replicas:
        Engine replicas in the supervised pool.  Each replica owns its own
        micro-batcher; the supervisor routes requests round-robin over the
        healthy ones and around any replica mid-restart.
    default_deadline_ms:
        Deadline applied to requests that do not carry their own.
    restart_backoff_ms / restart_backoff_max_ms:
        Capped exponential backoff between replica restart attempts: the
        first restart waits ``restart_backoff_ms``, each subsequent failure
        doubles the wait up to ``restart_backoff_max_ms``; a successful
        health probe resets the sequence.
    health_interval_ms:
        Supervisor monitor period: how often replica health is checked and
        due restarts are attempted.
    drain_timeout_s:
        Bound on the graceful-drain phase of shutdown (stop intake, flush
        in-flight batches) before engines are closed regardless.
    max_queue_depth:
        Inherited admission bound, but the front-end default is finite
        (128) — a network service must shed deterministically, never queue
        without bound.
    """

    config_type = "frontend"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        num_replicas: int = 1,
        default_deadline_ms: float = 1000.0,
        restart_backoff_ms: float = 50.0,
        restart_backoff_max_ms: float = 2000.0,
        health_interval_ms: float = 25.0,
        drain_timeout_s: float = 10.0,
        max_queue_depth: int = 128,
        **kwargs: Any,
    ) -> None:
        if not 0 <= int(port) <= 65535:
            raise ValueError(
                f"port must be in [0, 65535] (0 binds ephemeral), got {port}"
            )
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        if default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        if restart_backoff_ms <= 0 or restart_backoff_max_ms < restart_backoff_ms:
            raise ValueError(
                "restart backoff requires 0 < restart_backoff_ms <= "
                f"restart_backoff_max_ms, got {restart_backoff_ms} / "
                f"{restart_backoff_max_ms}"
            )
        if health_interval_ms <= 0:
            raise ValueError(
                f"health_interval_ms must be > 0, got {health_interval_ms}"
            )
        if drain_timeout_s < 0:
            raise ValueError(
                f"drain_timeout_s must be >= 0, got {drain_timeout_s}"
            )
        super().__init__(max_queue_depth=max_queue_depth, **kwargs)
        self.host = str(host)
        self.port = int(port)
        self.num_replicas = int(num_replicas)
        self.default_deadline_ms = float(default_deadline_ms)
        self.restart_backoff_ms = float(restart_backoff_ms)
        self.restart_backoff_max_ms = float(restart_backoff_max_ms)
        self.health_interval_ms = float(health_interval_ms)
        self.drain_timeout_s = float(drain_timeout_s)
        # Derived (seconds) for the supervision hot loops.
        self.restart_backoff_s = self.restart_backoff_ms / 1000.0
        self.restart_backoff_max_s = self.restart_backoff_max_ms / 1000.0
        self.health_interval_s = self.health_interval_ms / 1000.0
        self.default_deadline_s = self.default_deadline_ms / 1000.0

    def as_dict(self) -> Dict[str, Any]:
        payload = super().as_dict()
        payload.update({
            "host": self.host,
            "port": self.port,
            "num_replicas": self.num_replicas,
            "default_deadline_ms": self.default_deadline_ms,
            "restart_backoff_ms": self.restart_backoff_ms,
            "restart_backoff_max_ms": self.restart_backoff_max_ms,
            "health_interval_ms": self.health_interval_ms,
            "drain_timeout_s": self.drain_timeout_s,
        })
        return payload
