"""``repro.serve`` — batched INT8 inference for trained FF-INT8 networks.

The training side of the repo answers "can Forward-Forward learn in INT8?";
this package answers "what do you do with the result?".  It covers the
deployment path end to end:

* :func:`export_artifact` / :func:`export_from_checkpoint` freeze trained
  units into an immutable :class:`InferenceArtifact` with pre-quantized INT8
  weights (persist with :func:`save_artifact` / :func:`load_artifact`),
* :class:`Int8InferenceEngine` runs the batched forward-only goodness
  readout over the frozen weights,
* :class:`MicroBatcher` coalesces single-sample requests into engine
  batches, fronted by a :class:`PredictionCache` and instrumented by
  :class:`ServeMetrics`,
* :class:`ServeConfig` carries the serving knobs.

See ``examples/serve_quickstart.py`` for the train → export → serve loop.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.cache import PredictionCache, input_digest
from repro.serve.config import ServeConfig
from repro.serve.engine import (
    FrozenInt8Kernel,
    Int8InferenceEngine,
    build_engine,
    frozen_classifier,
    rowwise_quantize,
)
from repro.serve.export import (
    InferenceArtifact,
    export_artifact,
    export_from_checkpoint,
    freeze_unit_weights,
    load_artifact,
    save_artifact,
)
from repro.serve.metrics import ServeMetrics, latency_percentiles

__all__ = [
    "ServeConfig",
    "InferenceArtifact",
    "export_artifact",
    "export_from_checkpoint",
    "freeze_unit_weights",
    "save_artifact",
    "load_artifact",
    "Int8InferenceEngine",
    "FrozenInt8Kernel",
    "build_engine",
    "frozen_classifier",
    "rowwise_quantize",
    "MicroBatcher",
    "PredictionCache",
    "input_digest",
    "ServeMetrics",
    "latency_percentiles",
]
