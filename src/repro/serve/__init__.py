"""``repro.serve`` — batched INT8 inference for trained FF-INT8 networks.

The training side of the repo answers "can Forward-Forward learn in INT8?";
this package answers "what do you do with the result?".  It covers the
deployment path end to end:

* :func:`export_artifact` / :func:`export_from_checkpoint` freeze trained
  units into an immutable :class:`InferenceArtifact` with pre-quantized INT8
  weights (persist with :func:`save_artifact` / :func:`load_artifact`),
* :class:`Int8InferenceEngine` runs the batched forward-only goodness
  readout over the frozen weights,
* :class:`MicroBatcher` coalesces single-sample requests into engine
  batches, fronted by a :class:`PredictionCache` and instrumented by
  :class:`ServeMetrics`,
* :class:`ReplicaSupervisor` pools engine replicas (grouped into
  per-model replica sets) with supervised restart-and-reroute, and
  :class:`ServeFrontend` / :class:`FrontendClient` put the whole stack on
  a socket with explicit request outcomes (result, :class:`RequestShed`,
  :class:`DeadlineExceeded`) — nothing drops silently,
* :class:`ModelRegistry` names and versions artifacts
  (``resnet18-mini@v2``, ``@latest``), dedups identical frozen params by
  fingerprint, and hot-swaps the stable serving version atomically;
  :class:`CanaryController` routes a deterministic traffic split to a
  candidate version and auto-rolls-back on regression with capped
  doubling hold-off,
* :class:`ServeConfig` / :class:`FrontendConfig` carry the serving knobs,
* :mod:`repro.serve.faults` injects deterministic failures for the
  robustness tests and the chaos smoke.

See ``examples/serve_quickstart.py`` for the train → export → serve loop
and ``examples/frontend_quickstart.py`` for serving over the wire.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.cache import PredictionCache, input_digest
from repro.serve.config import FrontendConfig, ServeConfig
from repro.serve.errors import (
    DeadlineExceeded,
    ReplicaUnavailable,
    RequestShed,
    ServeError,
)
from repro.serve.engine import (
    FrozenInt8Kernel,
    Int8InferenceEngine,
    build_engine,
    frozen_classifier,
    rowwise_quantize,
)
from repro.serve.export import (
    InferenceArtifact,
    export_artifact,
    export_from_checkpoint,
    freeze_unit_weights,
    load_artifact,
    save_artifact,
)
from repro.serve.canary import CanaryController, CanaryHeldOff
from repro.serve.frontend import FrontendClient, ServeFrontend
from repro.serve.metrics import ModelSeries, ServeMetrics, latency_percentiles
from repro.serve.registry import (
    ModelNotFound,
    ModelRegistry,
    ModelVersion,
    artifact_fingerprint,
    parse_model_ref,
)
from repro.serve.supervisor import ReplicaSupervisor

__all__ = [
    "ModelRegistry",
    "ModelVersion",
    "ModelNotFound",
    "ModelSeries",
    "CanaryController",
    "CanaryHeldOff",
    "artifact_fingerprint",
    "parse_model_ref",
    "ServeConfig",
    "FrontendConfig",
    "ServeError",
    "RequestShed",
    "DeadlineExceeded",
    "ReplicaUnavailable",
    "ServeFrontend",
    "FrontendClient",
    "ReplicaSupervisor",
    "InferenceArtifact",
    "export_artifact",
    "export_from_checkpoint",
    "freeze_unit_weights",
    "save_artifact",
    "load_artifact",
    "Int8InferenceEngine",
    "FrozenInt8Kernel",
    "build_engine",
    "frozen_classifier",
    "rowwise_quantize",
    "MicroBatcher",
    "PredictionCache",
    "input_digest",
    "ServeMetrics",
    "latency_percentiles",
]
