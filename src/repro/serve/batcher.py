"""Thread-safe micro-batching request queue in front of the INT8 engine.

Single-sample inference wastes most of its time in per-call overhead; the
engine's INT8 GEMMs only approach peak throughput on real batches.  The
micro-batcher bridges the two: clients submit individual samples, worker
threads coalesce whatever is queued (up to ``max_batch_size``, waiting at
most ``max_wait_ms`` for stragglers) and run one engine pass per batch.
Because the engine quantizes activations per sample, coalescing never
changes a prediction — only its latency.

The batcher also fronts the engine with the LRU prediction cache, coalesces
requests whose input digest matches one already in flight (they share the
original future — the cache can only help *after* the first answer lands),
and feeds the metrics collector, so it is the one object a deployment
interacts with.

Both halves of serve autoscaling read the same queue-depth EWMA signal:
``autoscale_wait`` adapts the coalescing window per batch, and
``autoscale_workers`` spawns/retires worker threads between
``min_workers`` and ``max_workers`` when the pressure is sustained
(cooldown-limited, so one burst cannot thrash the pool).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import trace as obs_trace
from repro.obs.registry import get_registry
from repro.runtime.dispatch import use_backend
from repro.serve.cache import PredictionCache, input_digest
from repro.serve.config import ServeConfig
from repro.serve.errors import DeadlineExceeded, RequestShed
from repro.serve.metrics import ServeMetrics

PredictFn = Callable[[np.ndarray], np.ndarray]

_SHUTDOWN = object()
_RETIRE = object()


class _Request:
    """One queued sample together with its completion future.

    ``deadline`` is an absolute ``time.perf_counter()`` instant (or ``None``
    for no deadline): workers check it when they dequeue the request, so an
    expired request resolves to :class:`DeadlineExceeded` instead of burning
    an engine-pass slot on an answer nobody is waiting for.
    """

    __slots__ = ("sample", "key", "future", "enqueued_at", "deadline",
                 "trace")

    def __init__(self, sample: np.ndarray, key: Optional[str],
                 enqueued_at: float,
                 deadline: Optional[float] = None,
                 trace: Optional[obs_trace.Trace] = None) -> None:
        self.sample = sample
        self.key = key
        self.future: "Future[object]" = Future()
        self.enqueued_at = enqueued_at
        self.deadline = deadline
        self.trace = trace


class MicroBatcher:
    """Coalesces single-sample requests into batched engine calls.

    Parameters
    ----------
    engine:
        Either an object with a ``predict(batch) -> labels`` method (such as
        :class:`~repro.serve.engine.Int8InferenceEngine`) or a bare callable
        with the same signature.
    config:
        Batching knobs (see :class:`~repro.serve.config.ServeConfig`).
    cache / metrics:
        Injected for tests and shared deployments; sensible defaults are
        created from the config otherwise.
    """

    def __init__(
        self,
        engine: Union[PredictFn, object],
        config: Optional[ServeConfig] = None,
        cache: Optional[PredictionCache] = None,
        metrics: Optional[ServeMetrics] = None,
        cache_namespace: Optional[str] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        pins = getattr(self.config, "pins", None)
        if pins:
            apply_pins = getattr(engine, "apply_pins", None)
            if not callable(apply_pins):
                raise TypeError(
                    "ServeConfig.pins requires an engine exposing "
                    "apply_pins(pins) (e.g. Int8InferenceEngine); a bare "
                    "predict callable cannot honour per-layer pins"
                )
            # Recompiling here (idempotent) guarantees the config's pins are
            # in force even when the engine was built without them.  Auto
            # pins measure at this deployment's coalesced batch height —
            # when the engine's apply_pins accepts it (signature-checked:
            # a TypeError from inside pin application must propagate, not
            # silently retry at the wrong height).
            import inspect

            try:
                takes_batch = "batch_size" in inspect.signature(
                    apply_pins
                ).parameters
            except (TypeError, ValueError):  # builtins, exotic callables
                takes_batch = False
            if takes_batch:
                apply_pins(pins, batch_size=self.config.max_batch_size)
            else:
                apply_pins(pins)
        fuse = bool(getattr(self.config, "fuse", True))
        # Engines that don't report a fusion mode are presumed fused (the
        # compile default), so asking for the unfused baseline from one
        # that cannot switch is rejected — not silently ignored.
        if bool(getattr(engine, "fuse", True)) != fuse:
            # Same contract as pins: the config must actually be in force
            # on the engine that serves, not just recorded in as_dict().
            set_fusion = getattr(engine, "set_fusion", None)
            if not callable(set_fusion):
                raise TypeError(
                    "ServeConfig.fuse requires an engine exposing "
                    "set_fusion(fuse) (e.g. Int8InferenceEngine)"
                )
            set_fusion(fuse)
        predict = getattr(engine, "predict", None)
        self._predict: PredictFn = predict if callable(predict) else engine
        if not callable(self._predict):
            raise TypeError(
                "engine must expose predict(batch) or itself be callable"
            )
        self.cache = (
            cache
            if cache is not None
            else PredictionCache(self.config.cache_capacity)
        )
        self.metrics = metrics if metrics is not None else ServeMetrics()
        # Engines that declare a cache namespace (the artifact fingerprint)
        # get their cache/dedup keys prefixed with it, so engines sharing
        # one PredictionCache — replicas of different model versions, or a
        # post-swap engine — can never serve another version's entries,
        # while fingerprint-identical versions still share them.
        # The engine's own namespace (the artifact fingerprint) wins, so
        # fingerprint-identical versions keep sharing entries; the caller's
        # fallback (e.g. the supervisor's replica-set key) isolates engines
        # that declare nothing.
        namespace = (getattr(engine, "cache_namespace", None)
                     or cache_namespace)
        self._cache_namespace = str(namespace) if namespace else None
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._lifecycle_lock = threading.Lock()
        self._running = False
        # In-flight requests by input digest, for request coalescing.
        self._pending: dict = {}
        self._pending_lock = threading.Lock()
        # Admission/drain state: how many accepted requests have not yet
        # resolved (queued or mid-batch), and whether the batcher is
        # draining (new submissions shed, in-flight ones finish).
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._draining = False
        # Adaptive coalescing window (autoscale_wait); plain float writes
        # are atomic, so workers update it lock-free.
        self._current_wait_s = self.config.max_wait_s
        # Worker autoscaling (autoscale_workers): sequence number for
        # thread names, last scale-op timestamp for the cooldown, and a
        # running log of scale events for reporting.
        self._worker_seq = 0
        self._last_scale_at = 0.0
        self._scale_ups = 0
        self._scale_downs = 0
        # Autoscaling state published into the observability registry: the
        # live worker count, the adaptive window, and scale events — the
        # signals that show whether the EWMA policy is doing its job.
        registry = get_registry()
        self._obs_workers = registry.gauge(
            "repro_serve_workers", help="Live serve worker threads.")
        self._obs_wait_ms = registry.gauge(
            "repro_serve_wait_window_ms",
            help="Current adaptive coalescing window, ms.")
        self._obs_scale_ups = registry.counter(
            "repro_serve_scale_ups_total", help="Worker scale-up events.")
        self._obs_scale_downs = registry.counter(
            "repro_serve_scale_downs_total", help="Worker scale-down events.")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _spawn_worker_locked(self) -> None:
        """Create and start one worker thread (lifecycle lock held)."""
        thread = threading.Thread(
            target=self._worker_loop,
            name=f"serve-worker-{self._worker_seq}",
            daemon=True,
        )
        self._worker_seq += 1
        self._threads.append(thread)
        self._obs_workers.set(len(self._threads))
        thread.start()

    def start(self) -> "MicroBatcher":
        """Spawn the worker threads (idempotent)."""
        with self._lifecycle_lock:
            if self._running:
                return self
            self._running = True
            for _ in range(self.config.num_workers):
                self._spawn_worker_locked()
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop intake and wait until every accepted request has resolved.

        New submissions shed (:class:`RequestShed`, reason ``"draining"``)
        from the moment this is called; requests already accepted keep
        their no-silent-drop guarantee — each resolves to a result, a
        deadline error, or the engine error that killed its batch.  Returns
        ``True`` when the in-flight count reached zero within ``timeout``
        seconds (default: the config's ``request_timeout_s``).  The
        batcher keeps running — call :meth:`stop` (or ``stop(drain=True)``
        which does both) to also retire the workers.
        """
        self._draining = True
        deadline = time.perf_counter() + (
            timeout if timeout is not None else self.config.request_timeout_s
        )
        while time.perf_counter() < deadline:
            with self._inflight_lock:
                if self._inflight <= 0:
                    return True
            time.sleep(0.001)
        with self._inflight_lock:
            return self._inflight <= 0

    def stop(self, drain: bool = False,
             drain_timeout: Optional[float] = None) -> None:
        """Signal every worker to exit and join them.

        With ``drain=True`` intake closes first and the in-flight requests
        are flushed (bounded by ``drain_timeout``) before the workers are
        retired — the graceful half of the front-end's shutdown order.
        Without it, queued requests simply survive for a later
        :meth:`start` (the historical contract).
        """
        if drain:
            self.drain(timeout=drain_timeout)
        with self._lifecycle_lock:
            if not self._running:
                self._draining = False
                return
            self._running = False
            threads, self._threads = self._threads, []
            self._obs_workers.set(0)
        for _ in threads:
            self._queue.put(_SHUTDOWN)
        for thread in threads:
            thread.join()
        # Swallow leftover lifecycle tokens (a retire enqueued just before
        # stop, or a shutdown token a retiring worker never consumed) so a
        # later start() begins with a clean queue.
        drained = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN and item is not _RETIRE:
                drained.append(item)
        for item in drained:
            self._queue.put(item)
        # A drained batcher reopens intake once fully stopped, so a later
        # start() serves again.
        self._draining = False

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # request API
    # ------------------------------------------------------------------ #
    def submit(self, sample: np.ndarray,
               deadline_s: Optional[float] = None) -> "Future[object]":
        """Enqueue one sample; returns a future resolving to its label.

        ``deadline_s`` is an absolute ``time.perf_counter()`` instant; a
        request still unserved when it passes resolves to
        :class:`DeadlineExceeded` instead of silently occupying the queue.
        Raises :class:`RequestShed` when admission control refuses the
        request (intake queue at ``max_queue_depth``, or draining) — the
        exception carries the adaptive ``retry_after_ms`` backoff hint.

        When tracing is enabled and this request is sampled, its whole life
        — cache/dedup verdicts here, the coalesce wait, the engine pass and
        every kernel step under it — lands in one trace; otherwise the
        ``trace is None`` branches cost one comparison each.
        """
        return self._submit(sample, deadline_s)[0]

    def retry_after_ms(self) -> float:
        """The adaptive backoff hint attached to shed responses."""
        config = self.config
        return self.metrics.retry_after_ms(
            base_ms=getattr(config, "shed_retry_base_ms", 5.0),
            per_depth_ms=getattr(config, "shed_retry_per_depth_ms", 2.0),
            cap_ms=getattr(config, "shed_retry_cap_ms", 1000.0),
        )

    def _shed(self, reason: str) -> RequestShed:
        self.metrics.record_shed()
        return RequestShed(self.retry_after_ms(), reason=reason)

    def _submit(
        self, sample: np.ndarray, deadline_s: Optional[float] = None
    ) -> Tuple["Future[object]", Optional[_Request]]:
        """Shared submit path; returns ``(future, request-or-None)``.

        The request handle (``None`` for cache hits and dedup riders, which
        own no queue slot) is what :meth:`predict` needs to *abandon* a
        timed-out request — releasing its dedup/pending slot instead of
        leaving a dead future other submitters would coalesce onto.
        """
        if not self._running:
            self.start()
        if self._draining:
            raise self._shed("draining")
        max_depth = int(getattr(self.config, "max_queue_depth", 0) or 0)
        if max_depth > 0:
            with self._inflight_lock:
                saturated = self._inflight >= max_depth
            if saturated:
                raise self._shed("queue_full")
        trace = obs_trace.maybe_trace("serve.request")
        sample = np.asarray(sample, dtype=np.float32)
        key: Optional[str] = None
        if self.cache.capacity > 0 or self.config.dedup_inflight:
            key = input_digest(sample)
            if self._cache_namespace is not None:
                key = f"{self._cache_namespace}:{key}"
        if key is not None and self.cache.capacity > 0:
            lookup_started = time.perf_counter() if trace is not None else 0.0
            hit = self.cache.get(key)
            if trace is not None:
                trace.record_span(
                    "batcher.cache", lookup_started, time.perf_counter(),
                    hit=hit is not None,
                )
            if hit is not None:
                self.metrics.record_cached()
                if trace is not None:
                    obs_trace.finish_trace(trace)
                future: "Future[object]" = Future()
                future.set_result(hit)
                return future, None
        request = _Request(sample, key, time.perf_counter(),
                           deadline=deadline_s, trace=trace)
        if key is not None and self.config.dedup_inflight:
            with self._pending_lock:
                existing = self._pending.get(key)
                if existing is not None:
                    self.metrics.record_deduped()
                    if trace is not None:
                        now = time.perf_counter()
                        trace.record_span(
                            "batcher.dedup", request.enqueued_at, now,
                            coalesced_onto=(
                                existing.trace.trace_id
                                if existing.trace is not None else None
                            ),
                        )
                        obs_trace.finish_trace(trace)
                    return existing.future, None
                self._pending[key] = request
        with self._inflight_lock:
            self._inflight += 1
        depth = self._queue.qsize()
        self.metrics.record_enqueue(depth)
        self._queue.put(request)
        if trace is not None:
            now = time.perf_counter()
            trace.record_span(
                "batcher.enqueue", request.enqueued_at, now,
                queue_depth=depth,
            )
        return request.future, request

    def _abandon(self, request: _Request) -> None:
        """Release a timed-out request's slots so nothing waits on it.

        The dedup/pending slot is freed first — a later identical key must
        submit fresh instead of coalescing onto a future nobody will
        resolve — then the future is cancelled so a worker that dequeues
        the request later drops it instead of computing an unwanted
        answer.  When the cancel loses the race (a worker already marked
        the batch running), the in-flight engine pass resolves the future
        normally; either way exactly one outcome is observed per waiter.
        """
        self._release_pending(request)
        if request.future.cancel():
            # The worker will never see this request complete; its queue
            # slot is accounted for when the worker dequeues and drops it.
            pass

    def predict(self, sample: np.ndarray, timeout: Optional[float] = None) -> int:
        """Synchronous single-sample prediction through the batcher.

        A timeout is a first-class :class:`DeadlineExceeded` outcome: the
        request's dedup/pending slot is released and its queue entry
        cancelled before the exception propagates, so a later identical
        key never waits on the dead future (and an unserved entry never
        wastes an engine pass).
        """
        timeout = timeout if timeout is not None else self.config.request_timeout_s
        deadline = time.perf_counter() + timeout
        future, request = self._submit(sample, deadline_s=deadline)
        try:
            return int(future.result(timeout=timeout))
        except FuturesTimeoutError:
            if request is not None:
                self._abandon(request)
            self.metrics.record_deadline_exceeded()
            raise DeadlineExceeded(
                "prediction timed out", deadline_ms=1000.0 * timeout
            ) from None
        except CancelledError:
            # A dedup rider whose leader abandoned the shared future: the
            # leader released the slot, so this waiter resolves the same
            # way the leader did.
            self.metrics.record_deadline_exceeded()
            raise DeadlineExceeded(
                "coalesced request abandoned before completion",
                deadline_ms=1000.0 * timeout,
            ) from None

    def predict_many(
        self, samples: Sequence[np.ndarray], timeout: Optional[float] = None
    ) -> np.ndarray:
        """Submit a burst of samples and gather their labels in order."""
        timeout = timeout if timeout is not None else self.config.request_timeout_s
        deadline = time.perf_counter() + timeout
        submissions = [self._submit(sample, deadline_s=deadline)
                       for sample in samples]
        labels = []
        for future, request in submissions:
            try:
                labels.append(int(future.result(timeout=timeout)))
            except (FuturesTimeoutError, CancelledError):
                if request is not None:
                    self._abandon(request)
                self.metrics.record_deadline_exceeded()
                raise DeadlineExceeded(
                    "burst prediction timed out",
                    deadline_ms=1000.0 * timeout,
                ) from None
        return np.asarray(labels, dtype=np.int64)

    @property
    def inflight(self) -> int:
        """Accepted requests not yet resolved (queued or mid-batch)."""
        with self._inflight_lock:
            return self._inflight

    @property
    def draining(self) -> bool:
        """True while intake is closed for a graceful drain."""
        return self._draining

    @property
    def current_wait_ms(self) -> float:
        """The coalescing window workers currently apply (milliseconds)."""
        return 1000.0 * self._current_wait_s

    @property
    def current_num_workers(self) -> int:
        """How many serve workers are live right now."""
        with self._lifecycle_lock:
            return len(self._threads)

    @property
    def autoscale_events(self) -> dict:
        """Worker scale operations performed so far (``up``/``down``)."""
        return {"up": self._scale_ups, "down": self._scale_downs}

    def format_report(self, title: str = "serving metrics") -> str:
        """Metrics report including the cache hit-rate and autoscale state."""
        extra_rows = []
        if getattr(self.config, "autoscale_wait", False):
            extra_rows.append(["adaptive max_wait (ms)", self.current_wait_ms])
        if getattr(self.config, "autoscale_workers", False):
            extra_rows.append(["workers (current)", self.current_num_workers])
            extra_rows.append(["worker scale-ups", self._scale_ups])
            extra_rows.append(["worker scale-downs", self._scale_downs])
        return self.metrics.format_report(
            title, cache_stats=self.cache.stats(),
            extra_rows=extra_rows or None,
        )

    # ------------------------------------------------------------------ #
    # worker internals
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        # Workers exit only by consuming a shutdown or retire token.  An
        # early-exit on the idle-poll path would leave its token in the
        # queue, where it would instantly kill a worker of a later start().
        while True:
            try:
                first = self._queue.get(timeout=self.config.poll_timeout_s)
            except queue.Empty:
                # Idle polls decay the queue-depth EWMA toward the live
                # depth (no enqueues means nothing else updates it) and
                # then evaluate autoscaling, so a pool scaled up for a
                # burst drains back to min_workers afterwards.
                if getattr(self.config, "autoscale_workers", False):
                    self.metrics.observe_queue_depth(self._queue.qsize())
                self._maybe_autoscale()
                continue
            if first is _SHUTDOWN:
                return
            if first is _RETIRE:
                if self._retire_self():
                    return
                continue
            batch = self._gather_batch(first)
            self._serve_batch(batch)
            self._maybe_autoscale()

    def _retire_self(self) -> bool:
        """Consume a retire token; True when this worker should exit.

        Stale tokens (left over from before a stop/start cycle, or racing a
        concurrent retire that already brought the count to the floor) are
        swallowed instead of underflowing ``min_workers``.
        """
        with self._lifecycle_lock:
            if (
                self._running
                and len(self._threads) > self.config.min_workers
            ):
                current = threading.current_thread()
                if current in self._threads:
                    self._threads.remove(current)
                    # Counted here, at consumption: tokens swallowed at the
                    # floor must not show up as scale-downs in the report.
                    self._scale_downs += 1
                    self._obs_scale_downs.inc()
                    self._obs_workers.set(len(self._threads))
                    return True
        return False

    def _maybe_autoscale(self) -> None:
        """Spawn or retire one worker when queue pressure is sustained.

        The queue-depth EWMA is the same signal the adaptive coalescing
        window uses: above ``max_batch_size`` a full batch is always
        waiting, so one more worker drains real backlog; below a quarter
        of it the extra worker only adds contention.  The cooldown keeps
        reactions to *sustained* pressure — one burst cannot thrash the
        pool.
        """
        config = self.config
        if not getattr(config, "autoscale_workers", False):
            return
        ewma = self.metrics.queue_depth_ewma()
        with self._lifecycle_lock:
            # Cooldown, decision and the event log all live under the one
            # lock: two workers crossing the threshold together must not
            # both stamp a scale event for a single pool change.
            now = time.perf_counter()
            if now - self._last_scale_at < config.autoscale_cooldown_s:
                return
            if not self._running:
                return
            count = len(self._threads)
            if (
                ewma > config.max_batch_size
                and count < config.max_workers
                # Live-queue gate: sustained *history* alone must not grow
                # an idle pool — there has to be backlog right now for a
                # new worker to drain.
                and self._queue.qsize() > 0
            ):
                self._spawn_worker_locked()
                self._scale_ups += 1
                self._obs_scale_ups.inc()
                self._last_scale_at = now
                return
            if (
                ewma < 0.25 * config.max_batch_size
                and count > config.min_workers
            ):
                self._last_scale_at = now
                self._queue.put(_RETIRE)

    def _wait_window_s(self) -> float:
        """The coalescing window for the next batch (adaptive when enabled).

        Queue-depth EWMA near ``max_batch_size`` means batches fill from the
        backlog on their own, so waiting only adds latency — the window
        shrinks toward ``min_wait_ms``.  An idle queue earns the full
        ``max_wait_ms`` to coalesce stragglers.
        """
        config = self.config
        if not getattr(config, "autoscale_wait", False):
            return config.max_wait_s
        fill = min(1.0, self.metrics.queue_depth_ewma() / config.max_batch_size)
        wait = config.max_wait_s - (config.max_wait_s - config.min_wait_s) * fill
        # Clamp: the interpolation can land an ulp outside the bounds.
        wait = min(max(wait, config.min_wait_s), config.max_wait_s)
        self._current_wait_s = wait
        self._obs_wait_ms.set(1000.0 * wait)
        return wait

    def _gather_batch(self, first: _Request) -> List[_Request]:
        """Collect up to ``max_batch_size`` requests within the wait window."""
        batch = [first]
        deadline = time.perf_counter() + self._wait_window_s()
        while len(batch) < self.config.max_batch_size:
            remaining = deadline - time.perf_counter()
            try:
                if remaining <= 0:
                    item = self._queue.get_nowait()
                else:
                    item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _SHUTDOWN or item is _RETIRE:
                # Keep the lifecycle token available for another worker (or
                # this one's next loop turn) and serve what we gathered.
                self._queue.put(item)
                break
            batch.append(item)
            if remaining <= 0:
                break
        return batch

    def _release_pending(self, request: _Request) -> None:
        if request.key is not None and self.config.dedup_inflight:
            with self._pending_lock:
                if self._pending.get(request.key) is request:
                    del self._pending[request.key]

    def _retire_request(self, request: _Request) -> None:
        """Account one accepted request as resolved (any outcome)."""
        self._release_pending(request)
        with self._inflight_lock:
            self._inflight -= 1

    def _triage_batch(self, batch: List[_Request]) -> List[_Request]:
        """Drop abandoned/expired requests; mark the rest running.

        Every dropped request still resolves explicitly: an abandoned one
        was already cancelled (its client raised ``DeadlineExceeded`` and
        released the slots), an expired one gets ``DeadlineExceeded`` set
        here.  Marking survivors *running* closes the abandon race — a
        client's ``Future.cancel`` can no longer win after this point, so
        each future has exactly one resolver.
        """
        now = time.perf_counter()
        live: List[_Request] = []
        for request in batch:
            expired = request.deadline is not None and now >= request.deadline
            if not request.future.set_running_or_notify_cancel():
                # Abandoned by its client; outcome was counted there.
                self._retire_request(request)
                if request.trace is not None:
                    request.trace.attrs["outcome"] = "abandoned"
                    obs_trace.finish_trace(request.trace)
                continue
            if expired:
                request.future.set_exception(DeadlineExceeded(
                    "deadline expired while queued",
                    deadline_ms=1000.0 * (request.deadline
                                          - request.enqueued_at),
                ))
                self.metrics.record_deadline_exceeded()
                self._retire_request(request)
                if request.trace is not None:
                    request.trace.attrs["outcome"] = "deadline_exceeded"
                    obs_trace.finish_trace(request.trace)
                continue
            live.append(request)
        return live

    def _serve_batch(self, batch: List[_Request]) -> None:
        batch = self._triage_batch(batch)
        if not batch:
            return
        inputs = np.stack([request.sample for request in batch])
        # Traced requests get a coalesce-wait span; the first of them
        # "leads" the batch — the engine pass runs bound to its trace, so
        # per-KernelStep spans nest under its engine.predict.  The other
        # traced riders get a shared engine.predict span pointing at the
        # leader, since one engine pass served them all.
        traced = [request for request in batch if request.trace is not None]
        gathered = time.perf_counter() if traced else 0.0
        for request in traced:
            request.trace.record_span(
                "batcher.coalesce_wait", request.enqueued_at, gathered,
                batch_size=len(batch),
            )
        leader = traced[0] if traced else None
        try:
            # Worker threads do not inherit the submitter's thread-local
            # backend override, so the config's backend selection is applied
            # here (None defers to the ambient runtime default).
            with use_backend(getattr(self.config, "backend", None)):
                if leader is not None:
                    with obs_trace.use_trace(leader.trace):
                        with obs_trace.span(
                            "engine.predict", batch_size=len(batch)
                        ):
                            labels = self._predict(inputs)
                else:
                    labels = self._predict(inputs)
        except BaseException as error:  # propagate to every waiting client
            for request in batch:
                request.future.set_exception(error)
                self._retire_request(request)
            for request in traced:
                request.trace.attrs["error"] = type(error).__name__
                obs_trace.finish_trace(request.trace)
            return
        finished = time.perf_counter()
        labels = np.asarray(labels)
        latencies_ms = [
            1000.0 * (finished - request.enqueued_at) for request in batch
        ]
        self.metrics.record_batch(latencies_ms)
        for request, label in zip(batch, labels):
            value = int(label)
            if request.key is not None and self.cache.capacity > 0:
                self.cache.put(request.key, value)
            request.future.set_result(value)
            self._retire_request(request)
        for request in traced:
            if request is not leader:
                request.trace.record_span(
                    "engine.predict", gathered, finished,
                    batch_size=len(batch),
                    shared_with_trace=leader.trace.trace_id,
                )
            obs_trace.finish_trace(request.trace)
