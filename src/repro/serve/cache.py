"""LRU prediction cache keyed on an input digest.

Serving workloads are often heavy-tailed: a small set of inputs (hot images,
health-check probes, retried requests) accounts for a large share of traffic.
Because FF inference runs one forward pass per candidate label, a cache hit
saves ``num_classes`` INT8 passes, so even modest hit rates pay for the
hashing.  Keys are content digests of the raw input array (dtype + shape +
bytes), so numerically identical requests hit regardless of object identity.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

import numpy as np


def input_digest(sample: np.ndarray) -> str:
    """Content digest of one input sample (dtype, shape and raw bytes)."""
    array = np.ascontiguousarray(sample)
    hasher = hashlib.sha1()
    hasher.update(str(array.dtype).encode())
    hasher.update(str(array.shape).encode())
    hasher.update(array.tobytes())
    return hasher.hexdigest()


class PredictionCache:
    """Thread-safe LRU cache of per-sample predictions with hit/miss counters.

    A ``capacity`` of 0 disables the cache: every lookup misses and stores
    are dropped, which lets callers keep one unconditional code path.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[Any]:
        """Look up a cached prediction, refreshing its recency on a hit."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) a prediction, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Consistent snapshot of the counters for reports and benchmarks.

        Hits, misses and the entry count are read together under the lock, so
        the derived hit rate can never mix counters from two different
        moments while worker threads keep serving.
        """
        with self._lock:
            hits = self.hits
            misses = self.misses
            entries = len(self._entries)
        total = hits + misses
        return {
            "capacity": self.capacity,
            "entries": entries,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return float(self.stats()["hit_rate"])
