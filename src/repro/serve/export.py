"""Freeze trained networks into immutable INT8 inference artifacts.

Training keeps weights in float32 and re-quantizes them on every step; at
deployment time that work is pure overhead.  ``export_artifact`` snapshots a
trained stack of FF units into an :class:`InferenceArtifact`:

* weights of every compute-heavy layer (Linear / Conv2d / DepthwiseConv2d)
  pre-quantized to INT8 with deterministic nearest rounding and their
  per-layer (optionally per-output-channel) scales precomputed,
* every remaining parameter (biases, norm affine terms) in float32,
* normalization buffers (BatchNorm running statistics) that live outside
  ``named_parameters`` and would otherwise be lost,
* the metadata needed to rebuild a matching overlay + goodness readout.

Artifacts are persisted with :mod:`repro.utils.serialization` as an ``.npz``
(tensors) plus ``.json`` (metadata) pair, mirroring the FF checkpoint format.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.checkpoint import FFCheckpoint, restore_units
from repro.models.base import ModelBundle
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import _BatchNormBase
from repro.quant.qconfig import QuantConfig
from repro.quant.suq import quantize
from repro.utils.serialization import (
    archive_base,
    archive_path,
    load_json,
    load_parameters,
    save_json,
    save_parameters,
)

PathLike = Union[str, Path]

ARTIFACT_FORMAT_VERSION = 1

# Tensor-key suffixes distinguishing the three tensor kinds in the archive.
QUANT_SUFFIX = "::q"
SCALE_SUFFIX = "::scale"
BUFFER_SUFFIX = "::buffer"

_QUANTIZABLE = (Linear, Conv2d, DepthwiseConv2d)
_BUFFER_NAMES = ("running_mean", "running_var")


def named_modules(module: Module, prefix: str = "") -> Iterator[Tuple[str, Module]]:
    """Yield ``(qualified_name, module)`` pairs, matching parameter paths."""
    yield prefix, module
    for name, child in module._modules.items():
        yield from named_modules(child, f"{prefix}{name}.")


def _join(prefix: str, name: str) -> str:
    return f"{prefix}{name}"


@dataclass
class InferenceArtifact:
    """Immutable snapshot of a trained network, ready for INT8 serving."""

    tensors: Dict[str, np.ndarray]
    metadata: Dict[str, object]

    # ------------------------------------------------------------------ #
    @property
    def num_units(self) -> int:
        return int(self.metadata["num_units"])

    @property
    def num_classes(self) -> int:
        return int(self.metadata["num_classes"])

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return tuple(int(v) for v in self.metadata["input_shape"])

    @property
    def flatten_input(self) -> bool:
        return bool(self.metadata["flatten_input"])

    @property
    def goodness_name(self) -> str:
        return str(self.metadata["goodness"])

    @property
    def overlay_amplitude(self) -> float:
        return float(self.metadata["overlay_amplitude"])

    @property
    def skip_first_layer(self) -> bool:
        return bool(self.metadata["skip_first_layer"])

    def quantized_keys(self) -> List[str]:
        """Base names of all INT8-quantized weight tensors."""
        return sorted(
            key[: -len(QUANT_SUFFIX)]
            for key in self.tensors
            if key.endswith(QUANT_SUFFIX)
        )

    def nbytes(self) -> int:
        """Total artifact payload size in bytes."""
        return int(sum(tensor.nbytes for tensor in self.tensors.values()))


def freeze_unit_weights(
    units: Sequence[Module], per_channel: bool = False
) -> Dict[str, np.ndarray]:
    """Snapshot unit parameters, pre-quantizing compute-heavy weights.

    Weight quantization is deterministic (nearest rounding): stochastic
    rounding is a *training* device for unbiased gradients and has no place
    in a frozen artifact, where run-to-run reproducibility matters more.
    """
    config = QuantConfig(bits=8, rounding="nearest", per_channel=per_channel)
    tensors: Dict[str, np.ndarray] = {}
    for index, unit in enumerate(units):
        prefix = f"unit{index}."
        quantized_names = set()
        for path, module in named_modules(unit):
            if isinstance(module, _QUANTIZABLE):
                weight = module.weight.data
                # The kernels consume weights as (out_channels, K) matrices;
                # for Linear this reshape is already the identity.
                matrix = weight.reshape(weight.shape[0], -1)
                axis = 0 if per_channel else None
                q, scale = quantize(matrix, config, axis=axis)
                base = _join(prefix, f"{path}weight")
                tensors[base + QUANT_SUFFIX] = q.reshape(weight.shape)
                tensors[base + SCALE_SUFFIX] = np.asarray(scale, dtype=np.float64)
                quantized_names.add(f"{path}weight")
            elif isinstance(module, _BatchNormBase):
                for buffer_name in _BUFFER_NAMES:
                    key = _join(prefix, f"{path}{buffer_name}") + BUFFER_SUFFIX
                    tensors[key] = np.asarray(getattr(module, buffer_name)).copy()
        for name, param in unit.named_parameters():
            if name in quantized_names:
                continue
            tensors[_join(prefix, name)] = param.data.copy()
    return tensors


def export_artifact(
    units: Sequence[Module],
    bundle: ModelBundle,
    *,
    goodness: str = "sum_squares",
    overlay_amplitude: float = 1.0,
    theta: float = 2.0,
    skip_first_layer: Optional[bool] = None,
    per_channel: bool = False,
    registry_name: Optional[str] = None,
    registry_kwargs: Optional[Dict[str, object]] = None,
    extra_metadata: Optional[Dict[str, object]] = None,
) -> InferenceArtifact:
    """Freeze trained FF ``units`` (or BP backbone blocks) for serving.

    ``registry_name``/``registry_kwargs``, when provided, let the engine
    rebuild the module skeleton via :func:`repro.models.build_model` without
    the caller having to reconstruct a matching :class:`ModelBundle`.
    """
    if len(units) != len(bundle.backbone_blocks):
        raise ValueError(
            f"got {len(units)} units but bundle {bundle.name!r} has "
            f"{len(bundle.backbone_blocks)} backbone blocks"
        )
    if skip_first_layer is None:
        skip_first_layer = len(units) >= 2
    metadata: Dict[str, object] = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "model_name": bundle.name,
        "num_units": len(units),
        "num_classes": bundle.num_classes,
        "flatten_input": bundle.flatten_input,
        "input_shape": list(bundle.input_shape),
        "goodness": goodness,
        "overlay_amplitude": overlay_amplitude,
        "theta": theta,
        "skip_first_layer": bool(skip_first_layer),
        "bits": 8,
        "per_channel": bool(per_channel),
    }
    if registry_name is not None:
        metadata["registry_name"] = registry_name
        metadata["registry_kwargs"] = dict(registry_kwargs or {})
    if extra_metadata:
        metadata.update(extra_metadata)
    tensors = freeze_unit_weights(units, per_channel=per_channel)
    return InferenceArtifact(tensors=tensors, metadata=metadata)


def export_from_checkpoint(
    checkpoint: FFCheckpoint,
    bundle: ModelBundle,
    *,
    per_channel: bool = False,
    registry_name: Optional[str] = None,
    registry_kwargs: Optional[Dict[str, object]] = None,
) -> InferenceArtifact:
    """Freeze a saved :class:`FFCheckpoint` into an inference artifact."""
    units = restore_units(checkpoint, bundle)
    meta = checkpoint.metadata
    return export_artifact(
        units,
        bundle,
        goodness=str(meta.get("goodness", "sum_squares")),
        overlay_amplitude=float(meta.get("overlay_amplitude", 1.0)),
        theta=float(meta.get("theta", 2.0)),
        per_channel=per_channel,
        registry_name=registry_name,
        registry_kwargs=registry_kwargs,
        extra_metadata={"source": "ff_checkpoint"},
    )


# --------------------------------------------------------------------------- #
# persistence
# --------------------------------------------------------------------------- #
def save_artifact(artifact: InferenceArtifact, path: PathLike) -> Path:
    """Write ``<path>.npz`` (tensors) + ``<path>.json`` (metadata)."""
    base = archive_base(path)
    tensor_path = save_parameters(artifact.tensors, archive_path(base, ".npz"))
    save_json(artifact.metadata, archive_path(base, ".json"))
    return tensor_path


def load_artifact(path: PathLike) -> InferenceArtifact:
    """Load an artifact written by :func:`save_artifact`."""
    base = archive_base(path)
    tensors = load_parameters(archive_path(base, ".npz"))
    metadata = load_json(archive_path(base, ".json"))
    version = int(metadata.get("format_version", -1))
    if version != ARTIFACT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported artifact format version {version}; "
            f"this build reads version {ARTIFACT_FORMAT_VERSION}"
        )
    return InferenceArtifact(tensors=tensors, metadata=metadata)
