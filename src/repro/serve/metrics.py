"""Serving metrics: latency percentiles, throughput and queue-depth stats.

The serving stack is judged by tail latency, not by mean throughput alone.
The collector keeps a bounded **reservoir** of per-request latencies: below
the cap (default 8192 samples) percentiles are exact; above it the
reservoir is a uniform random sample of everything seen (Algorithm R with a
fixed seed), so percentiles become an unbiased approximation while counts,
means and maxima stay exact from running aggregates.  The cap is what makes
a long-lived serving process safe — the previous design kept every sample
and grew without bound under sustained traffic.

Every collector also publishes into the process-wide observability
registry (:mod:`repro.obs.registry`): request/batch/cache/dedup counters, a
fixed-bucket latency histogram, and the queue-depth EWMA gauge — the
scrapeable view (`repro_serve_*`) of the same traffic this object
summarizes per-report.  Registry writes happen per *batch*, outside this
collector's lock, so the hot path pays one histogram fold per dispatch, not
per request.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis import format_table
from repro.obs.registry import MetricsRegistry, get_registry

PERCENTILES = (50.0, 95.0, 99.0)

#: default reservoir capacity: exact percentiles for every benchmark-scale
#: run, a few hundred KB at most for a long-lived server.
DEFAULT_SAMPLE_CAP = 8192


def latency_percentiles(
    latencies_ms: Sequence[float], percentiles: Sequence[float] = PERCENTILES
) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for a latency sample."""
    if not len(latencies_ms):
        return {f"p{int(p)}": 0.0 for p in percentiles}
    values = np.asarray(latencies_ms, dtype=np.float64)
    return {
        f"p{int(p)}": float(np.percentile(values, p)) for p in percentiles
    }


class _Reservoir:
    """Bounded uniform sample with exact running count/sum/max.

    Algorithm R: the first ``cap`` values are kept verbatim (exact
    percentiles); from then on value ``n`` replaces a random slot with
    probability ``cap/n``, keeping the sample uniform over everything seen.
    The RNG is seeded, so runs are reproducible.  Not thread-safe — the
    owning collector serializes access under its own lock.
    """

    __slots__ = ("cap", "count", "total", "peak", "_samples", "_rng")

    def __init__(self, cap: int, seed: int = 0) -> None:
        if cap < 1:
            raise ValueError(f"reservoir cap must be >= 1, got {cap}")
        self.cap = int(cap)
        self.count = 0
        self.total = 0.0
        self.peak = 0.0
        self._samples: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.count == 1 or value > self.peak:
            self.peak = value
        if len(self._samples) < self.cap:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.cap:
            self._samples[slot] = value

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    def samples(self) -> List[float]:
        return list(self._samples)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def clear(self) -> None:
        self.count = 0
        self.total = 0.0
        self.peak = 0.0
        self._samples.clear()


class ModelSeries:
    """Labeled per-(model, version) request series in the obs registry.

    One memoized triple per (model, version): a request counter, an error
    counter and a latency histogram, all labeled ``{model=..., version=
    ...}`` — the per-version comparison feed the canary controller and the
    ``serve-bench`` records read.  Shared by :class:`ServeMetrics` (the
    frontend path) and :class:`~repro.serve.registry.ModelRegistry` (the
    in-process path).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry if registry is not None else get_registry()
        self._lock = threading.Lock()
        self._series: dict = {}

    def _for(self, model: str, version: str):
        key = (str(model), str(version))
        with self._lock:
            entry = self._series.get(key)
            if entry is None:
                labels = {"model": key[0], "version": key[1]}
                entry = (
                    self._registry.counter(
                        "repro_model_requests_total",
                        help="Requests served per model version.",
                        **labels),
                    self._registry.counter(
                        "repro_model_errors_total",
                        help="Failed requests per model version.",
                        **labels),
                    self._registry.histogram(
                        "repro_model_latency_ms",
                        help="Per-request latency per model version, ms.",
                        **labels),
                )
                self._series[key] = entry
        return entry

    def record(self, model: str, version: str, latency_ms: float,
               ok: bool = True) -> None:
        requests, errors, latency = self._for(model, version)
        requests.inc()
        if not ok:
            errors.inc()
        latency.observe(float(latency_ms))


class ServeMetrics:
    """Thread-safe collector for the micro-batching inference service.

    ``ewma_alpha`` weights the exponentially-weighted moving average of the
    sampled queue depths — the load signal the micro-batcher's adaptive
    coalescing window feeds on (higher alpha reacts faster, lower alpha
    smooths bursts).  ``sample_cap`` bounds the latency/batch/queue
    reservoirs (memory stays O(cap) forever; percentiles are exact below
    the cap and uniformly sampled above it).  ``registry`` is the
    observability registry the collector publishes counters into; it
    defaults to the process-wide one.
    """

    def __init__(
        self,
        clock=time.perf_counter,
        ewma_alpha: float = 0.2,
        sample_cap: int = DEFAULT_SAMPLE_CAP,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self._clock = clock
        self._ewma_alpha = float(ewma_alpha)
        self._lock = threading.Lock()
        self.sample_cap = int(sample_cap)
        self._latencies = _Reservoir(self.sample_cap)
        self._batch_sizes = _Reservoir(self.sample_cap)
        self._queue_depths = _Reservoir(self.sample_cap)
        self._queue_depth_ewma = 0.0
        self._batches = 0
        self._cached_requests = 0
        self._deduped_requests = 0
        self._shed_requests = 0
        self._deadline_exceeded_requests = 0
        self._first_ts: Optional[float] = None
        self._last_ts: Optional[float] = None
        registry = registry if registry is not None else get_registry()
        self._obs_requests = registry.counter(
            "repro_serve_requests_total", help="Requests answered.")
        self._obs_batches = registry.counter(
            "repro_serve_batches_total", help="Engine batches dispatched.")
        self._obs_cached = registry.counter(
            "repro_serve_cached_total",
            help="Requests served from the prediction cache.")
        self._obs_deduped = registry.counter(
            "repro_serve_deduped_total",
            help="Requests coalesced onto identical in-flight ones.")
        self._obs_latency = registry.histogram(
            "repro_serve_latency_ms", help="Per-request latency, ms.")
        self._obs_queue_ewma = registry.gauge(
            "repro_serve_queue_depth_ewma",
            help="EWMA of the sampled batcher queue depth.")
        self._obs_shed = registry.counter(
            "repro_requests_shed_total",
            help="Requests refused admission (load shedding).")
        self._obs_deadline = registry.counter(
            "repro_request_deadline_exceeded_total",
            help="Requests whose deadline expired before a result.")
        self.models = ModelSeries(registry)

    def record_model_request(self, model: str, version: str,
                             latency_ms: float, ok: bool = True) -> None:
        """Attribute one answered request to a (model, version) series."""
        self.models.record(model, version, latency_ms, ok=ok)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def _fold_queue_depth_locked(self, queue_depth: int) -> None:
        """The one EWMA update both depth signals share (lock held)."""
        alpha = self._ewma_alpha
        self._queue_depth_ewma = (
            (1.0 - alpha) * self._queue_depth_ewma + alpha * queue_depth
        )

    def record_enqueue(self, queue_depth: int) -> None:
        """Note a request entering the queue (samples the queue depth)."""
        with self._lock:
            if self._first_ts is None:
                self._first_ts = self._clock()
            self._queue_depths.add(int(queue_depth))
            self._fold_queue_depth_locked(queue_depth)

    def observe_queue_depth(self, queue_depth: int) -> None:
        """Fold a passive queue-depth observation into the EWMA.

        Enqueues sample the depth on their own; idle pollers call this so
        the EWMA decays toward the *live* depth when no requests arrive —
        otherwise the signal would freeze at its last burst value and
        autoscaling could never drain (or worse, keep scaling up) an idle
        pool.  Unlike :meth:`record_enqueue` this records no sample row.
        """
        with self._lock:
            self._fold_queue_depth_locked(queue_depth)
            ewma = self._queue_depth_ewma
        self._obs_queue_ewma.set(ewma)

    def queue_depth_ewma(self) -> float:
        """Current exponentially-weighted moving average of the queue depth."""
        with self._lock:
            return self._queue_depth_ewma

    def record_batch(self, latencies_ms: Sequence[float]) -> None:
        """Record one dispatched engine batch and its per-request latencies."""
        now = self._clock()
        latencies = [float(value) for value in latencies_ms]
        with self._lock:
            if self._first_ts is None:
                self._first_ts = now
            self._last_ts = now
            self._batches += 1
            self._batch_sizes.add(len(latencies))
            self._latencies.extend(latencies)
            ewma = self._queue_depth_ewma
        # Registry publication outside the lock: one counter add, one
        # histogram fold and one gauge write per dispatched batch.
        self._obs_requests.inc(len(latencies))
        self._obs_batches.inc()
        self._obs_latency.observe_many(latencies)
        self._obs_queue_ewma.set(ewma)

    def record_cached(self, latency_ms: float = 0.0) -> None:
        """Record a request answered straight from the prediction cache."""
        now = self._clock()
        with self._lock:
            if self._first_ts is None:
                self._first_ts = now
            self._last_ts = now
            self._cached_requests += 1
            self._latencies.add(float(latency_ms))
        self._obs_requests.inc()
        self._obs_cached.inc()
        self._obs_latency.observe(float(latency_ms))

    def record_shed(self) -> None:
        """Record a request refused admission (load shedding).

        Shed requests never enter the latency reservoirs — they were never
        served — but they are first-class outcomes: the shed rate is the
        front-end's primary overload signal.
        """
        now = self._clock()
        with self._lock:
            if self._first_ts is None:
                self._first_ts = now
            self._last_ts = now
            self._shed_requests += 1
        self._obs_shed.inc()

    def record_deadline_exceeded(self) -> None:
        """Record a request whose deadline expired before a result."""
        now = self._clock()
        with self._lock:
            if self._first_ts is None:
                self._first_ts = now
            self._last_ts = now
            self._deadline_exceeded_requests += 1
        self._obs_deadline.inc()

    def retry_after_ms(
        self,
        base_ms: float = 5.0,
        per_depth_ms: float = 2.0,
        cap_ms: float = 1000.0,
    ) -> float:
        """Adaptive backoff hint for shed responses, from the queue EWMA.

        The hint grows linearly with the sustained backlog (the same
        queue-depth EWMA the batcher's autoscalers read): an idle service
        hands back ``base_ms``, a saturated one approaches ``cap_ms``.
        Well-behaved clients sleeping this long spread a thundering herd
        over the time the backlog actually needs to drain — adaptive
        backoff with the *server* publishing the contention window.
        """
        with self._lock:
            ewma = self._queue_depth_ewma
        return float(min(cap_ms, base_ms + per_depth_ms * max(0.0, ewma)))

    def record_deduped(self) -> None:
        """Record a request coalesced onto an identical in-flight one.

        Deduplicated requests share the original's future, so their own
        latency is not sampled separately.
        """
        with self._lock:
            self._deduped_requests += 1
        self._obs_deduped.inc()

    def reset(self) -> None:
        """Drop all recorded samples (registry counters keep accumulating)."""
        with self._lock:
            self._latencies.clear()
            self._batch_sizes.clear()
            self._queue_depths.clear()
            self._queue_depth_ewma = 0.0
            self._batches = 0
            self._cached_requests = 0
            self._deduped_requests = 0
            self._shed_requests = 0
            self._deadline_exceeded_requests = 0
            self._first_ts = None
            self._last_ts = None

    # ------------------------------------------------------------------ #
    # derived statistics
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, float]:
        """Aggregate statistics over everything recorded so far.

        Counts, means and maxima come from exact running aggregates;
        latency percentiles come from the reservoir — exact while the
        request count is within ``sample_cap``, a uniform-sample
        approximation beyond it (``latency_samples`` vs ``requests`` tells
        which regime a snapshot is in).
        """
        with self._lock:
            requests = self._latencies.count
            latency_mean = self._latencies.mean()
            latency_max = self._latencies.peak
            latency_samples = self._latencies.samples()
            batches = self._batches
            batch_mean = self._batch_sizes.mean()
            batch_max = self._batch_sizes.peak
            depth_mean = self._queue_depths.mean()
            depth_max = self._queue_depths.peak
            queue_ewma = self._queue_depth_ewma
            cached = self._cached_requests
            deduped = self._deduped_requests
            shed = self._shed_requests
            deadline_exceeded = self._deadline_exceeded_requests
            first_ts, last_ts = self._first_ts, self._last_ts

        elapsed_s = (last_ts - first_ts) if (first_ts is not None and
                                             last_ts is not None) else 0.0
        summary: Dict[str, float] = {
            "requests": float(requests),
            "batches": float(batches),
            "cached_requests": float(cached),
            "deduped_requests": float(deduped),
            "shed_requests": float(shed),
            "deadline_exceeded_requests": float(deadline_exceeded),
            "shed_rate": (
                shed / (requests + shed) if (requests + shed) else 0.0
            ),
            "elapsed_s": float(elapsed_s),
            "throughput_rps": requests / elapsed_s if elapsed_s > 0 else 0.0,
            "mean_batch_size": float(batch_mean),
            "max_batch_size": float(batch_max),
            "mean_queue_depth": float(depth_mean),
            "max_queue_depth": float(depth_max),
            "queue_depth_ewma": float(queue_ewma),
            "mean_latency_ms": float(latency_mean),
            "max_latency_ms": float(latency_max),
            "latency_samples": float(len(latency_samples)),
            "sample_cap": float(self.sample_cap),
        }
        summary.update(latency_percentiles(latency_samples))
        return summary

    def format_report(
        self,
        title: str = "serving metrics",
        cache_stats: Optional[Dict[str, float]] = None,
        extra_rows: Optional[Sequence[Sequence[object]]] = None,
    ) -> str:
        """Render the snapshot as the repo's standard ASCII table.

        ``cache_stats`` (a :meth:`PredictionCache.stats` snapshot) appends
        the prediction cache's hit-rate to the report; ``extra_rows`` lets
        the caller surface derived state (e.g. the micro-batcher's adaptive
        coalescing window).
        """
        snap = self.snapshot()
        approx = snap["latency_samples"] < snap["requests"]
        rows = [
            ["requests", snap["requests"]],
            ["batches dispatched", snap["batches"]],
            ["cache-served requests", snap["cached_requests"]],
            ["deduped in-flight requests", snap["deduped_requests"]],
            ["shed requests", snap["shed_requests"]],
            ["deadline-exceeded requests", snap["deadline_exceeded_requests"]],
            ["throughput (req/s)", snap["throughput_rps"]],
            ["mean batch size", snap["mean_batch_size"]],
            ["max queue depth", snap["max_queue_depth"]],
            ["latency p50 (ms)", snap["p50"]],
            ["latency p95 (ms)", snap["p95"]],
            ["latency p99 (ms)", snap["p99"]],
            ["latency max (ms)", snap["max_latency_ms"]],
            [
                "latency samples"
                + (" (reservoir, approx pcts)" if approx else " (exact pcts)"),
                snap["latency_samples"],
            ],
            ["latency sample cap", snap["sample_cap"]],
        ]
        if cache_stats is not None:
            rows.append(["cache hit rate", float(cache_stats["hit_rate"])])
            rows.append(["cache entries", float(cache_stats["entries"])])
        if extra_rows:
            rows.extend([list(row) for row in extra_rows])
        return format_table(["metric", "value"], rows, title=title,
                            float_format="{:.3f}")
