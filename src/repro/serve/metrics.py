"""Serving metrics: latency percentiles, throughput and queue-depth stats.

The serving stack is judged by tail latency, not by mean throughput alone, so
the collector keeps every per-request latency and derives p50/p95/p99 on
demand.  At serving-benchmark scale (thousands of requests) the raw samples
are tiny compared to the model, and exact percentiles are worth more than a
streaming sketch.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis import format_table

PERCENTILES = (50.0, 95.0, 99.0)


def latency_percentiles(
    latencies_ms: Sequence[float], percentiles: Sequence[float] = PERCENTILES
) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for a latency sample."""
    if not len(latencies_ms):
        return {f"p{int(p)}": 0.0 for p in percentiles}
    values = np.asarray(latencies_ms, dtype=np.float64)
    return {
        f"p{int(p)}": float(np.percentile(values, p)) for p in percentiles
    }


class ServeMetrics:
    """Thread-safe collector for the micro-batching inference service.

    ``ewma_alpha`` weights the exponentially-weighted moving average of the
    sampled queue depths — the load signal the micro-batcher's adaptive
    coalescing window feeds on (higher alpha reacts faster, lower alpha
    smooths bursts).
    """

    def __init__(self, clock=time.perf_counter, ewma_alpha: float = 0.2) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self._clock = clock
        self._ewma_alpha = float(ewma_alpha)
        self._lock = threading.Lock()
        self._latencies_ms: List[float] = []
        self._batch_sizes: List[int] = []
        self._queue_depths: List[int] = []
        self._queue_depth_ewma = 0.0
        self._cached_requests = 0
        self._deduped_requests = 0
        self._first_ts: Optional[float] = None
        self._last_ts: Optional[float] = None

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def _fold_queue_depth_locked(self, queue_depth: int) -> None:
        """The one EWMA update both depth signals share (lock held)."""
        alpha = self._ewma_alpha
        self._queue_depth_ewma = (
            (1.0 - alpha) * self._queue_depth_ewma + alpha * queue_depth
        )

    def record_enqueue(self, queue_depth: int) -> None:
        """Note a request entering the queue (samples the queue depth)."""
        with self._lock:
            if self._first_ts is None:
                self._first_ts = self._clock()
            self._queue_depths.append(int(queue_depth))
            self._fold_queue_depth_locked(queue_depth)

    def observe_queue_depth(self, queue_depth: int) -> None:
        """Fold a passive queue-depth observation into the EWMA.

        Enqueues sample the depth on their own; idle pollers call this so
        the EWMA decays toward the *live* depth when no requests arrive —
        otherwise the signal would freeze at its last burst value and
        autoscaling could never drain (or worse, keep scaling up) an idle
        pool.  Unlike :meth:`record_enqueue` this records no sample row.
        """
        with self._lock:
            self._fold_queue_depth_locked(queue_depth)

    def queue_depth_ewma(self) -> float:
        """Current exponentially-weighted moving average of the queue depth."""
        with self._lock:
            return self._queue_depth_ewma

    def record_batch(self, latencies_ms: Sequence[float]) -> None:
        """Record one dispatched engine batch and its per-request latencies."""
        now = self._clock()
        with self._lock:
            if self._first_ts is None:
                self._first_ts = now
            self._last_ts = now
            self._batch_sizes.append(len(latencies_ms))
            self._latencies_ms.extend(float(value) for value in latencies_ms)

    def record_cached(self, latency_ms: float = 0.0) -> None:
        """Record a request answered straight from the prediction cache."""
        now = self._clock()
        with self._lock:
            if self._first_ts is None:
                self._first_ts = now
            self._last_ts = now
            self._cached_requests += 1
            self._latencies_ms.append(float(latency_ms))

    def record_deduped(self) -> None:
        """Record a request coalesced onto an identical in-flight one.

        Deduplicated requests share the original's future, so their own
        latency is not sampled separately.
        """
        with self._lock:
            self._deduped_requests += 1

    def reset(self) -> None:
        """Drop all recorded samples."""
        with self._lock:
            self._latencies_ms.clear()
            self._batch_sizes.clear()
            self._queue_depths.clear()
            self._queue_depth_ewma = 0.0
            self._cached_requests = 0
            self._deduped_requests = 0
            self._first_ts = None
            self._last_ts = None

    # ------------------------------------------------------------------ #
    # derived statistics
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, float]:
        """Aggregate statistics over everything recorded so far."""
        with self._lock:
            latencies = list(self._latencies_ms)
            batch_sizes = list(self._batch_sizes)
            queue_depths = list(self._queue_depths)
            queue_ewma = self._queue_depth_ewma
            cached = self._cached_requests
            deduped = self._deduped_requests
            first_ts, last_ts = self._first_ts, self._last_ts

        elapsed_s = (last_ts - first_ts) if (first_ts is not None and
                                             last_ts is not None) else 0.0
        requests = len(latencies)
        summary: Dict[str, float] = {
            "requests": float(requests),
            "batches": float(len(batch_sizes)),
            "cached_requests": float(cached),
            "deduped_requests": float(deduped),
            "elapsed_s": float(elapsed_s),
            "throughput_rps": requests / elapsed_s if elapsed_s > 0 else 0.0,
            "mean_batch_size": float(np.mean(batch_sizes)) if batch_sizes else 0.0,
            "max_batch_size": float(max(batch_sizes)) if batch_sizes else 0.0,
            "mean_queue_depth": float(np.mean(queue_depths)) if queue_depths else 0.0,
            "max_queue_depth": float(max(queue_depths)) if queue_depths else 0.0,
            "queue_depth_ewma": float(queue_ewma),
            "mean_latency_ms": float(np.mean(latencies)) if latencies else 0.0,
            "max_latency_ms": float(max(latencies)) if latencies else 0.0,
        }
        summary.update(latency_percentiles(latencies))
        return summary

    def format_report(
        self,
        title: str = "serving metrics",
        cache_stats: Optional[Dict[str, float]] = None,
        extra_rows: Optional[Sequence[Sequence[object]]] = None,
    ) -> str:
        """Render the snapshot as the repo's standard ASCII table.

        ``cache_stats`` (a :meth:`PredictionCache.stats` snapshot) appends
        the prediction cache's hit-rate to the report; ``extra_rows`` lets
        the caller surface derived state (e.g. the micro-batcher's adaptive
        coalescing window).
        """
        snap = self.snapshot()
        rows = [
            ["requests", snap["requests"]],
            ["batches dispatched", snap["batches"]],
            ["cache-served requests", snap["cached_requests"]],
            ["deduped in-flight requests", snap["deduped_requests"]],
            ["throughput (req/s)", snap["throughput_rps"]],
            ["mean batch size", snap["mean_batch_size"]],
            ["max queue depth", snap["max_queue_depth"]],
            ["latency p50 (ms)", snap["p50"]],
            ["latency p95 (ms)", snap["p95"]],
            ["latency p99 (ms)", snap["p99"]],
            ["latency max (ms)", snap["max_latency_ms"]],
        ]
        if cache_stats is not None:
            rows.append(["cache hit rate", float(cache_stats["hit_rate"])])
            rows.append(["cache entries", float(cache_stats["entries"])])
        if extra_rows:
            rows.extend([list(row) for row in extra_rows])
        return format_table(["metric", "value"], rows, title=title,
                            float_format="{:.3f}")
