"""Canary rollout controller: watch a candidate, roll back on regression.

A swap is all-or-nothing; a *canary* is how you earn the right to swap.
The :class:`CanaryController` routes a seeded deterministic fraction of a
model's traffic to a candidate version (via the registry's routing
snapshot), accumulates per-version sliding windows of latency, error and
goodness-margin observations, and compares candidate against stable once
both windows have enough samples:

* error rate above stable by more than ``error_margin``     → regression
* mean latency above ``latency_ratio`` × stable's (floored) → regression
* mean goodness margin below ``margin_ratio`` × stable's    → regression

A regression triggers an automatic **rollback**: the canary split is
cleared atomically (new requests all land on stable again) and the model
enters a **hold-off** window before another canary may start — doubling on
every consecutive failure and capped, exactly the adaptive-backoff shape
802.11 DCF uses for retransmissions: a flapping candidate must not thunder
back into the traffic path.  A successful :meth:`promote` swaps the
candidate to stable and resets the hold-off.

Counters: ``repro_canary_rollbacks_total`` counts rollbacks;
``repro_canary_fraction{model=...}`` gauges the live split per model.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.registry import get_registry
from repro.serve.errors import ServeError


class CanaryHeldOff(ServeError):
    """A canary start was refused because the model is in hold-off."""

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class _Window:
    """Sliding window of (ok, latency_ms, margin) observations."""

    __slots__ = ("entries",)

    def __init__(self, size: int) -> None:
        self.entries: Deque[Tuple[bool, float, Optional[float]]] = deque(
            maxlen=size
        )

    def add(self, ok: bool, latency_ms: float,
            margin: Optional[float]) -> None:
        self.entries.append((bool(ok), float(latency_ms), margin))

    def __len__(self) -> int:
        return len(self.entries)

    def error_rate(self) -> float:
        if not self.entries:
            return 0.0
        return sum(1 for ok, _, _ in self.entries if not ok) / len(self)

    def mean_latency_ms(self) -> float:
        if not self.entries:
            return 0.0
        return sum(lat for _, lat, _ in self.entries) / len(self)

    def mean_margin(self) -> Optional[float]:
        margins = [m for _, _, m in self.entries if m is not None]
        if not margins:
            return None
        return sum(margins) / len(margins)


class _Holdoff:
    """Capped doubling hold-off state for one model name."""

    __slots__ = ("fail_count", "retry_at", "holdoff_s")

    def __init__(self) -> None:
        self.fail_count = 0
        self.retry_at = 0.0
        self.holdoff_s = 0.0


class CanaryController:
    """Drives canary rollouts over a :class:`ModelRegistry`.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.registry.ModelRegistry` whose routing
        snapshot this controller mutates (``set_canary`` /
        ``clear_canary`` / ``swap``).
    window / min_samples:
        Sliding-window length per (name, version) and the per-side sample
        floor before a verdict is attempted.
    latency_ratio / latency_floor_ms:
        Candidate regresses when its mean latency exceeds
        ``latency_ratio × max(stable mean, latency_floor_ms)`` — the floor
        keeps microsecond-fast stables from flagging harmless noise.
    error_margin:
        Absolute error-rate headroom over stable before rollback.
    margin_ratio:
        Minimum candidate goodness-margin as a fraction of stable's
        (only enforced when both sides report margins).
    holdoff_base_s / holdoff_max_s:
        Capped doubling hold-off between failed promotions.
    on_rollback / on_promote:
        ``(name, version, reason)`` / ``(name, version)`` callbacks,
        invoked outside the controller lock (the frontend retires
        replica sets here).
    """

    def __init__(
        self,
        registry,
        *,
        window: int = 64,
        min_samples: int = 16,
        latency_ratio: float = 1.5,
        latency_floor_ms: float = 1.0,
        error_margin: float = 0.05,
        margin_ratio: float = 0.5,
        holdoff_base_s: float = 0.5,
        holdoff_max_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_rollback: Optional[Callable[[str, str, str], None]] = None,
        on_promote: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if window <= 0 or min_samples <= 0:
            raise ValueError("window and min_samples must be positive")
        if latency_ratio <= 1.0:
            raise ValueError("latency_ratio must exceed 1.0")
        if holdoff_base_s <= 0 or holdoff_max_s < holdoff_base_s:
            raise ValueError("need 0 < holdoff_base_s <= holdoff_max_s")
        self.registry = registry
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.latency_ratio = float(latency_ratio)
        self.latency_floor_ms = float(latency_floor_ms)
        self.error_margin = float(error_margin)
        self.margin_ratio = float(margin_ratio)
        self.holdoff_base_s = float(holdoff_base_s)
        self.holdoff_max_s = float(holdoff_max_s)
        self.clock = clock
        self.on_rollback = on_rollback
        self.on_promote = on_promote
        self._lock = threading.Lock()
        self._windows: "Dict[Tuple[str, str], _Window]" = {}
        self._holdoffs: "Dict[str, _Holdoff]" = {}
        self._rollbacks = 0
        self._last_rollback: "Dict[str, Tuple[str, str]]" = {}
        obs = get_registry()
        self._obs_rollbacks = obs.counter(
            "repro_canary_rollbacks_total",
            help="Canary candidates rolled back on regression.")
        self._obs_fraction_for: "Dict[str, object]" = {}
        registry.attach_controller(self)

    # ------------------------------------------------------------------ #
    def _fraction_gauge(self, name: str):
        gauge = self._obs_fraction_for.get(name)
        if gauge is None:
            gauge = get_registry().gauge(
                "repro_canary_fraction",
                help="Live canary traffic fraction per model.",
                model=str(name))
            self._obs_fraction_for[name] = gauge
        return gauge

    def _window_for_locked(self, name: str, version: str) -> _Window:
        key = (name, version)
        window = self._windows.get(key)
        if window is None:
            window = _Window(self.window)
            self._windows[key] = window
        return window

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self, name: str, version: str, fraction: float,
              seed: int = 0, force: bool = False) -> None:
        """Begin a canary rollout of ``name@version`` at ``fraction``.

        Raises :class:`CanaryHeldOff` while the model's hold-off window is
        open (unless ``force``); both sides' comparison windows restart
        fresh so stale observations cannot pre-judge the candidate.
        """
        with self._lock:
            hold = self._holdoffs.get(name)
            now = self.clock()
            if hold is not None and not force and now < hold.retry_at:
                raise CanaryHeldOff(
                    f"canary for {name!r} held off another "
                    f"{hold.retry_at - now:.3f}s after "
                    f"{hold.fail_count} failed rollout(s)",
                    retry_after_s=hold.retry_at - now,
                )
        # set_canary validates (resolvable, not already stable) and flips
        # the routing snapshot atomically.
        self.registry.set_canary(name, version, fraction, seed=seed)
        with self._lock:
            stable = self.registry.serving(name)
            self._windows[(name, version)] = _Window(self.window)
            self._windows[(name, stable)] = _Window(self.window)
        self._fraction_gauge(name).set(float(fraction))

    def active(self, name: str) -> Optional[str]:
        """The candidate version under canary for ``name``, if any."""
        canary = self.registry.canary_of(name)
        return canary[0] if canary is not None else None

    # ------------------------------------------------------------------ #
    # observation + verdict
    # ------------------------------------------------------------------ #
    def observe(self, name: str, version: str, latency_ms: float,
                ok: bool = True, margin: Optional[float] = None) -> None:
        """Feed one request outcome; evaluates the live canary, if any."""
        with self._lock:
            self._window_for_locked(name, version).add(
                ok, latency_ms, margin
            )
        canary = self.registry.canary_of(name)
        if canary is None:
            return
        candidate = canary[0]
        if version not in (candidate, self.registry.serving(name)):
            return
        reason = self._verdict(name, candidate)
        if reason is not None:
            self.rollback(name, reason=reason)

    def _verdict(self, name: str, candidate: str) -> Optional[str]:
        """Compare candidate vs stable windows; a reason means rollback."""
        stable = self.registry.serving(name)
        with self._lock:
            cand = self._windows.get((name, candidate))
            base = self._windows.get((name, stable))
            if (cand is None or base is None
                    or len(cand) < self.min_samples
                    or len(base) < self.min_samples):
                return None
            cand_err, base_err = cand.error_rate(), base.error_rate()
            cand_lat, base_lat = (cand.mean_latency_ms(),
                                  base.mean_latency_ms())
            cand_margin, base_margin = cand.mean_margin(), base.mean_margin()
        if cand_err > base_err + self.error_margin:
            return (f"error rate {cand_err:.3f} exceeds stable "
                    f"{base_err:.3f} + {self.error_margin}")
        floor = max(base_lat, self.latency_floor_ms)
        if cand_lat > self.latency_ratio * floor:
            return (f"latency {cand_lat:.3f}ms exceeds "
                    f"{self.latency_ratio}x stable {base_lat:.3f}ms")
        if (cand_margin is not None and base_margin is not None
                and base_margin > 0
                and cand_margin < self.margin_ratio * base_margin):
            return (f"goodness margin {cand_margin:.4f} below "
                    f"{self.margin_ratio}x stable {base_margin:.4f}")
        return None

    # ------------------------------------------------------------------ #
    # rollback / promote
    # ------------------------------------------------------------------ #
    def rollback(self, name: str, reason: str = "regression") -> bool:
        """Clear the canary split and open (or double) the hold-off.

        Returns ``False`` when no canary was active (idempotent under the
        observe/evaluate race: exactly one caller wins the clear).
        """
        cleared = self.registry.clear_canary(name)
        if cleared is None:
            return False
        with self._lock:
            hold = self._holdoffs.setdefault(name, _Holdoff())
            hold.fail_count += 1
            hold.holdoff_s = min(
                self.holdoff_max_s,
                self.holdoff_base_s * (2.0 ** (hold.fail_count - 1)),
            )
            hold.retry_at = self.clock() + hold.holdoff_s
            self._rollbacks += 1
            self._last_rollback[name] = (cleared, reason)
            self._windows.pop((name, cleared), None)
        self._obs_rollbacks.inc()
        self._fraction_gauge(name).set(0.0)
        if self.on_rollback is not None:
            self.on_rollback(name, cleared, reason)
        return True

    def promote(self, name: str) -> Tuple[str, str]:
        """Swap the candidate to stable; resets the hold-off."""
        canary = self.registry.canary_of(name)
        if canary is None:
            raise ValueError(f"model {name!r} has no active canary")
        candidate = canary[0]
        old, new = self.registry.swap(name, candidate)
        with self._lock:
            self._holdoffs.pop(name, None)
        self._fraction_gauge(name).set(0.0)
        if self.on_promote is not None:
            self.on_promote(name, candidate)
        return old, new

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def rollbacks(self) -> int:
        with self._lock:
            return self._rollbacks

    def holdoff_s(self, name: str) -> float:
        """Seconds until another canary may start for ``name`` (0 = now)."""
        with self._lock:
            hold = self._holdoffs.get(name)
            if hold is None:
                return 0.0
            return max(0.0, hold.retry_at - self.clock())

    def status(self, name: Optional[str] = None) -> List[Dict[str, object]]:
        """JSON-ready per-model canary state (the wire ``canary`` status)."""
        names = [name] if name is not None else self.registry.names()
        out: List[Dict[str, object]] = []
        for model_name in names:
            entry: Dict[str, object] = {"name": model_name}
            canary = self.registry.canary_of(model_name)
            if canary is not None:
                entry["candidate"] = canary[0]
                entry["fraction"] = canary[1]
                entry["seed"] = canary[2]
            with self._lock:
                hold = self._holdoffs.get(model_name)
                if hold is not None:
                    entry["failed_rollouts"] = hold.fail_count
                    entry["holdoff_s"] = max(
                        0.0, hold.retry_at - self.clock()
                    )
                last = self._last_rollback.get(model_name)
                if last is not None:
                    entry["last_rollback"] = {
                        "version": last[0], "reason": last[1],
                    }
            out.append(entry)
        return out


__all__ = ["CanaryController", "CanaryHeldOff"]
