"""Serving outcome errors: every request resolves to exactly one outcome.

The fault-tolerant serving path guarantees **no silent drops**: a submitted
request terminates in exactly one of three explicit outcomes — a result, a
:class:`RequestShed` (the service refused admission and told the client how
long to back off), or a :class:`DeadlineExceeded` (the request's deadline
passed before a result could be produced).  These exceptions *are* that
contract: anything the batcher, supervisor or front-end cannot answer is
raised as one of them, never swallowed, and each carries enough context for
a client to act (retry hint, elapsed budget).

Kept dependency-free so the batcher, supervisor, front-end and wire client
can all share them without import cycles.
"""

from __future__ import annotations

from typing import Optional


class ServeError(RuntimeError):
    """Base class for explicit serving outcomes."""


class RequestShed(ServeError):
    """The service refused admission (queue saturated, draining, no replica).

    ``retry_after_ms`` is the server's adaptive backoff hint, derived from
    the intake queue-depth EWMA: the deeper the sustained backlog, the
    longer well-behaved clients are told to wait — the DCF-style
    contention-window idea, with the server publishing the window.
    ``reason`` distinguishes *why* admission failed (``"queue_full"``,
    ``"draining"``, ``"no_replica"``) so shed accounting can be sliced.
    """

    def __init__(self, retry_after_ms: float = 0.0,
                 reason: str = "queue_full") -> None:
        self.retry_after_ms = float(retry_after_ms)
        self.reason = str(reason)
        super().__init__(
            f"request shed ({self.reason}); retry after "
            f"{self.retry_after_ms:.1f} ms"
        )


class DeadlineExceeded(ServeError):
    """The request's deadline passed before a result could be produced.

    Raised by the batcher when a queued request's deadline expires before
    (or while waiting for) its engine pass, by the supervisor when every
    in-budget replica attempt is exhausted, and by the synchronous client
    helpers on timeout.  The request's pending/dedup slot is always
    released before this raises — a later identical key never waits on a
    dead future.
    """

    def __init__(self, message: str = "deadline exceeded",
                 deadline_ms: Optional[float] = None) -> None:
        self.deadline_ms = deadline_ms
        if deadline_ms is not None:
            message = f"{message} (deadline {deadline_ms:.1f} ms)"
        super().__init__(message)


class ReplicaUnavailable(ServeError):
    """No healthy replica could take the request right now.

    An *internal* signal between the supervisor and the front-end: the
    front-end maps it to a :class:`RequestShed` response (reason
    ``"no_replica"``) so the wire contract stays three-outcome.
    """


__all__ = ["ServeError", "RequestShed", "DeadlineExceeded",
           "ReplicaUnavailable"]
