"""Batched forward-only INT8 execution engine for frozen artifacts.

Two properties distinguish this engine from the training-side
:class:`~repro.quant.int8_ops.Int8Engine`:

* **Frozen weights.**  Weights were quantized once at export; the engine
  never re-derives weight scales or touches observers, gradient buffers or
  activation caches.
* **Per-sample activation scales.**  Activations are quantized with one
  scale per *row* (nearest rounding) instead of one scale per batch.  Row
  operations are independent, so a sample's prediction is bit-identical
  whatever batch it is served in — the micro-batcher may coalesce requests
  freely without changing any answer — and a batched engine pass agrees
  bit-for-bit with per-sample :class:`FFGoodnessClassifier` inference over
  the same frozen units.

Classification itself folds the ``num_classes`` label overlays into the
batch dimension: one vectorized pass over ``(num_classes * N)`` rows replaces
the per-label loop, which is where the batched throughput comes from.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifier import FFGoodnessClassifier
from repro.core.goodness import GoodnessFunction, build_goodness
from repro.data.overlay import LabelOverlay
from repro.models.base import ModelBundle
from repro.models.registry import build_model
from repro.nn.module import Module
from repro.nn.norm import _BatchNormBase
from repro.quant.int8_ops import OpCounts, int8_matmul
from repro.serve.export import (
    _BUFFER_NAMES,
    _QUANTIZABLE,
    BUFFER_SUFFIX,
    QUANT_SUFFIX,
    SCALE_SUFFIX,
    InferenceArtifact,
    named_modules,
)


def rowwise_quantize(
    values: np.ndarray, qmax: int = 127, counts: Optional[OpCounts] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize each row of ``values`` with its own scale (nearest rounding).

    Returns ``(q, scales)`` with ``q`` int8 shaped like ``values`` and
    ``scales`` of shape ``(rows,)``.  Rows are quantized independently, which
    makes the result invariant to how rows are grouped into batches — the
    property the micro-batcher relies on.  All arithmetic stays in float32
    (deterministic and row-wise, so bit-identity across batch compositions is
    preserved) to keep the serving hot path off the float64 slow lane.
    """
    values = np.asarray(values, dtype=np.float32)
    flat = np.abs(values.reshape(values.shape[0], -1))
    extremes = flat.max(axis=1) if flat.size else np.zeros(
        values.shape[0], dtype=np.float32
    )
    scales = (np.maximum(extremes, np.float32(1e-12)) / np.float32(qmax)).astype(
        np.float32
    )
    levels = values / scales.reshape((-1,) + (1,) * (values.ndim - 1))
    np.rint(levels, out=levels)
    np.clip(levels, -qmax, qmax, out=levels)
    q = levels.astype(np.int8)
    if counts is not None:
        counts.fp32_cmp += int(values.size)
        counts.fp32_add += int(values.size)
    return q, scales


class FrozenInt8Kernel:
    """Inference-only quantized engine attached to a single frozen layer.

    Implements the ``quant_engine`` protocol that :class:`Linear`,
    :class:`Conv2d` and :class:`DepthwiseConv2d` dispatch to, but with the
    weight operand fixed at construction: the module's float32 weight is
    ignored and the pre-quantized INT8 matrix is used instead.  The gradient
    entry points raise — an exported artifact cannot be trained.
    """

    def __init__(
        self,
        weight_q: np.ndarray,
        weight_scale: np.ndarray,
        counts: Optional[OpCounts] = None,
        qmax: int = 127,
    ) -> None:
        if weight_q.dtype != np.int8:
            raise TypeError(f"frozen weights must be int8, got {weight_q.dtype}")
        if weight_q.ndim != 2:
            raise ValueError(
                f"frozen weights must be a 2-D matrix, got shape {weight_q.shape}"
            )
        self.weight_q = np.ascontiguousarray(weight_q)
        self.weight_qT = np.ascontiguousarray(weight_q.T)
        self.weight_scale = np.asarray(weight_scale, dtype=np.float64)
        # The hot path rescales in float32; precompute the narrowed scales.
        self._weight_scale32 = self.weight_scale.astype(np.float32)
        self.qmax = int(qmax)
        self.counts = counts if counts is not None else OpCounts()
        # INT8 GEMM via float32 BLAS: every product is <= qmax^2 and any
        # partial sum of K such terms is bounded by K * qmax^2, so while that
        # bound stays below 2^24 (float32's exact-integer range) the sgemm
        # result is the exact integer accumulation — bit-identical to the
        # int32 path for every summation order, and an order of magnitude
        # faster than NumPy's non-BLAS integer matmul.
        reduce_dim = self.weight_qT.shape[0]
        self._exact_f32 = reduce_dim * qmax * qmax < 2 ** 24
        self._weight_qT_f32 = (
            self.weight_qT.astype(np.float32) if self._exact_f32 else None
        )

    # ------------------------------------------------------------------ #
    def _rescale(self, acc: np.ndarray, row_scales: np.ndarray) -> np.ndarray:
        out = acc.astype(np.float32)
        out *= row_scales[:, None]
        if self._weight_scale32.ndim == 1:
            out *= self._weight_scale32[None, :]
        else:
            out *= self._weight_scale32
        return out

    def linear_forward(self, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """``x @ frozen_weight.T`` with INT8 operands (``weight`` ignored)."""
        x_q, x_scales = rowwise_quantize(x, self.qmax, self.counts)
        if self._exact_f32:
            acc = x_q.astype(np.float32) @ self._weight_qT_f32
            macs = int(x_q.shape[0] * x_q.shape[1] * self.weight_qT.shape[1])
            self.counts.int8_mul += macs
            self.counts.int8_add += macs
        else:
            acc = int8_matmul(x_q, self.weight_qT, counts=self.counts)
        return self._rescale(acc, x_scales)

    def depthwise_forward(self, cols: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Depthwise inner product with INT8 operands (``weight`` ignored)."""
        c_q, c_scales = rowwise_quantize(cols, self.qmax, self.counts)
        acc = np.einsum(
            "pck,ck->pc",
            c_q.astype(np.int32),
            self.weight_q.astype(np.int32),
            dtype=np.int64,
        )
        macs = int(cols.shape[0] * cols.shape[1] * cols.shape[2])
        self.counts.int8_mul += macs
        self.counts.int8_add += macs
        return self._rescale(acc, c_scales)

    # ------------------------------------------------------------------ #
    def linear_weight_grad(self, grad_output: np.ndarray, x: np.ndarray):
        raise RuntimeError(
            "FrozenInt8Kernel is inference-only; exported artifacts cannot "
            "compute weight gradients"
        )

    def depthwise_weight_grad(self, grad_matrix: np.ndarray, cols: np.ndarray):
        raise RuntimeError(
            "FrozenInt8Kernel is inference-only; exported artifacts cannot "
            "compute weight gradients"
        )


# --------------------------------------------------------------------------- #
# artifact -> frozen modules
# --------------------------------------------------------------------------- #
def _restore_frozen_units(
    artifact: InferenceArtifact, bundle: ModelBundle, counts: OpCounts
) -> List[Module]:
    """Rebuild the bundle's FF units with frozen INT8 kernels attached."""
    units = bundle.ff_units()
    if len(units) != artifact.num_units:
        raise ValueError(
            f"artifact stores {artifact.num_units} units but bundle "
            f"{bundle.name!r} produces {len(units)}; model configuration mismatch"
        )
    for index, unit in enumerate(units):
        prefix = f"unit{index}."
        frozen_names = set()
        for path, module in named_modules(unit):
            if isinstance(module, _QUANTIZABLE):
                base = f"{prefix}{path}weight"
                try:
                    q = artifact.tensors[base + QUANT_SUFFIX]
                    scale = artifact.tensors[base + SCALE_SUFFIX]
                except KeyError as error:
                    raise KeyError(
                        f"artifact is missing frozen weight tensor {error.args[0]!r}"
                    ) from None
                matrix = np.ascontiguousarray(q.reshape(q.shape[0], -1))
                scale = np.asarray(scale, dtype=np.float64)
                broadcast = scale[:, None] if scale.ndim == 1 else scale
                dequantized = (matrix.astype(np.float64) * broadcast).astype(
                    np.float32
                )
                module.weight.copy_(dequantized.reshape(module.weight.data.shape))
                module.quant_engine = FrozenInt8Kernel(matrix, scale, counts=counts)
                frozen_names.add(f"{path}weight")
            elif isinstance(module, _BatchNormBase):
                for buffer_name in _BUFFER_NAMES:
                    key = f"{prefix}{path}{buffer_name}{BUFFER_SUFFIX}"
                    if key in artifact.tensors:
                        setattr(
                            module,
                            buffer_name,
                            artifact.tensors[key].astype(np.float32).copy(),
                        )
        for name, param in unit.named_parameters():
            if name in frozen_names:
                continue
            key = f"{prefix}{name}"
            if key not in artifact.tensors:
                raise KeyError(f"artifact is missing parameter {key!r}")
            param.copy_(artifact.tensors[key])
        unit.eval()
        unit.set_activation_caching(False)
    return units


def _bundle_from_metadata(artifact: InferenceArtifact) -> ModelBundle:
    registry_name = artifact.metadata.get("registry_name")
    if registry_name is None:
        raise ValueError(
            "artifact carries no registry reference; pass a matching "
            "ModelBundle explicitly"
        )
    kwargs = dict(artifact.metadata.get("registry_kwargs") or {})
    if "input_shape" in kwargs:
        kwargs["input_shape"] = tuple(kwargs["input_shape"])
    return build_model(str(registry_name), **kwargs)


class Int8InferenceEngine:
    """Batched goodness-readout inference over frozen INT8 units.

    The engine owns nothing trainable: units run in eval mode with activation
    caching disabled, so a forward pass allocates no gradient or cache state.
    """

    def __init__(
        self,
        units: Sequence[Module],
        overlay: LabelOverlay,
        goodness: Optional[GoodnessFunction] = None,
        flatten_input: bool = False,
        skip_first_layer: Optional[bool] = None,
        counts: Optional[OpCounts] = None,
    ) -> None:
        if not units:
            raise ValueError("engine needs at least one frozen unit")
        self.units = list(units)
        self.overlay = overlay
        self.goodness = goodness if goodness is not None else build_goodness(
            "sum_squares"
        )
        self.flatten_input = flatten_input
        if skip_first_layer is None:
            skip_first_layer = len(self.units) >= 2
        self.skip_first_layer = skip_first_layer
        self.counts = counts if counts is not None else OpCounts()
        for unit in self.units:
            unit.eval()
            unit.set_activation_caching(False)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_artifact(
        cls, artifact: InferenceArtifact, bundle: Optional[ModelBundle] = None
    ) -> "Int8InferenceEngine":
        """Materialize an engine from an exported artifact.

        When ``bundle`` is omitted the module skeleton is rebuilt from the
        artifact's registry reference.  The passed bundle's blocks are frozen
        in place (weights overwritten, INT8 kernels attached) — do not keep
        training it afterwards.
        """
        if bundle is None:
            bundle = _bundle_from_metadata(artifact)
        if bundle.num_classes != artifact.num_classes:
            raise ValueError(
                f"bundle has {bundle.num_classes} classes but artifact stores "
                f"{artifact.num_classes}"
            )
        counts = OpCounts()
        units = _restore_frozen_units(artifact, bundle, counts)
        overlay = LabelOverlay(
            num_classes=artifact.num_classes, amplitude=artifact.overlay_amplitude
        )
        return cls(
            units,
            overlay,
            goodness=build_goodness(artifact.goodness_name),
            flatten_input=artifact.flatten_input,
            skip_first_layer=artifact.skip_first_layer,
            counts=counts,
        )

    # ------------------------------------------------------------------ #
    @property
    def num_classes(self) -> int:
        return self.overlay.num_classes

    def _forward_goodness(self, inputs: np.ndarray) -> np.ndarray:
        """Accumulated goodness per row (same contract as the classifier)."""
        hidden = inputs.reshape(inputs.shape[0], -1) if self.flatten_input else inputs
        total = np.zeros(inputs.shape[0], dtype=np.float64)
        for index, unit in enumerate(self.units):
            hidden = unit(hidden)
            if self.skip_first_layer and index == 0:
                continue
            total += self.goodness.value(hidden)
        return total.astype(np.float32)

    def goodness_matrix(self, inputs: np.ndarray) -> np.ndarray:
        """Goodness for every (sample, label) pair in one vectorized pass.

        All label overlays are folded into the batch dimension, so the whole
        readout costs one traversal of the network instead of
        ``num_classes`` separate ones.
        """
        inputs = np.asarray(inputs, dtype=np.float32)
        if inputs.shape[0] == 0:
            return np.zeros((0, self.num_classes), dtype=np.float32)
        candidates = self.overlay.candidates(inputs)
        num_labels, batch = candidates.shape[0], candidates.shape[1]
        folded = candidates.reshape((num_labels * batch,) + candidates.shape[2:])
        totals = self._forward_goodness(folded)
        return np.ascontiguousarray(totals.reshape(num_labels, batch).T)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted labels for a batch of raw (un-overlaid) inputs."""
        return np.argmax(self.goodness_matrix(inputs), axis=1)

    def predict_one(self, sample: np.ndarray) -> int:
        """Predicted label for a single sample (no batch dimension)."""
        return int(self.predict(np.asarray(sample)[None])[0])


def build_engine(
    artifact: InferenceArtifact, bundle: Optional[ModelBundle] = None
) -> Int8InferenceEngine:
    """Convenience alias for :meth:`Int8InferenceEngine.from_artifact`."""
    return Int8InferenceEngine.from_artifact(artifact, bundle)


def frozen_classifier(
    artifact: InferenceArtifact, bundle: Optional[ModelBundle] = None
) -> FFGoodnessClassifier:
    """A :class:`FFGoodnessClassifier` over the artifact's frozen units.

    This is the per-sample reference implementation: it traverses the same
    frozen INT8 kernels one label overlay at a time.  Because activation
    scales are per-row, its predictions are bit-identical to the batched
    engine — the equivalence the serving tests pin down.
    """
    if bundle is None:
        bundle = _bundle_from_metadata(artifact)
    counts = OpCounts()
    units = _restore_frozen_units(artifact, bundle, counts)
    overlay = LabelOverlay(
        num_classes=artifact.num_classes, amplitude=artifact.overlay_amplitude
    )
    return FFGoodnessClassifier(
        units,
        overlay,
        goodness=build_goodness(artifact.goodness_name),
        flatten_input=artifact.flatten_input,
        skip_first_layer=artifact.skip_first_layer,
    )
