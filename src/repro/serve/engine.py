"""Batched forward-only INT8 execution engine for frozen artifacts.

Two properties distinguish this engine from the training-side
:class:`~repro.quant.int8_ops.Int8Engine`:

* **Frozen weights.**  Weights were quantized once at export; the engine
  never re-derives weight scales or touches observers, gradient buffers or
  activation caches.
* **Per-sample activation scales.**  Activations are quantized with one
  scale per *row* (nearest rounding) instead of one scale per batch.  Row
  operations are independent, so a sample's prediction is bit-identical
  whatever batch it is served in — the micro-batcher may coalesce requests
  freely without changing any answer — and a batched engine pass agrees
  bit-for-bit with per-sample :class:`FFGoodnessClassifier` inference over
  the same frozen units.

Execution routes through :mod:`repro.runtime`: the frozen units are compiled
into an :class:`~repro.runtime.plan.ExecutionPlan` whose folded-label
read-out (all ``num_classes`` overlays stacked into the batch dimension) is
one traversal instead of ``num_classes``; the INT8 GEMMs dispatch to the
selected kernel backend (the ``fast`` backend runs them as exact-float32
BLAS calls with fused per-row quantization — the default serving path).
"""

from __future__ import annotations

import atexit
import hashlib
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifier import FFGoodnessClassifier
from repro.core.goodness import GoodnessFunction, build_goodness
from repro.data.overlay import LabelOverlay
from repro.models.base import ModelBundle
from repro.models.registry import build_model
from repro.nn.module import Module
from repro.nn.norm import _BatchNormBase
from repro.obs import trace as obs_trace
from repro.obs.registry import get_registry
from repro.quant.int8_ops import OpCounts
from repro.runtime import dispatch

# Plan-memoization traffic published into the observability registry: a
# rising compile count under steady traffic means cache keys are churning
# (pins or fusion flapping), which is a serving-latency bug.
_OBS_PLAN_COMPILES = get_registry().counter(
    "repro_plan_compiles_total", help="Execution plans compiled.")
_OBS_PLAN_CACHE_HITS = get_registry().counter(
    "repro_plan_cache_hits_total", help="Plan-cache hits.")

# Every live engine registers in this WeakSet so one interpreter-exit hook
# is the single last-resort cleanup path: whatever an interrupted caller
# (Ctrl-C mid-bench, a crashed test) leaves open still gets its kernel
# pools stopped and shard segments unlinked.  ``close()`` stays the primary
# path and is idempotent, so the hook double-closing an already-closed
# engine is free.
_LIVE_ENGINES: "weakref.WeakSet" = weakref.WeakSet()
_ATEXIT_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def _close_live_engines() -> None:
    for engine in list(_LIVE_ENGINES):
        try:
            engine.close()
        except Exception:
            pass


def _register_live_engine(engine) -> None:
    global _ATEXIT_REGISTERED
    with _ATEXIT_LOCK:
        if not _ATEXIT_REGISTERED:
            atexit.register(_close_live_engines)
            _ATEXIT_REGISTERED = True
        _LIVE_ENGINES.add(engine)
from repro.runtime.backends import exact_f32_possible
from repro.runtime.dispatch import BackendLike
from repro.runtime.executor import PlanExecutor
from repro.serve.export import (
    _BUFFER_NAMES,
    _QUANTIZABLE,
    BUFFER_SUFFIX,
    QUANT_SUFFIX,
    SCALE_SUFFIX,
    InferenceArtifact,
    named_modules,
)


def rowwise_quantize(
    values: np.ndarray, qmax: int = 127, counts: Optional[OpCounts] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize each row of ``values`` with its own scale (nearest rounding).

    Returns ``(q, scales)`` with ``q`` int8 shaped like ``values`` and
    ``scales`` of shape ``(rows,)``.  Rows are quantized independently, which
    makes the result invariant to how rows are grouped into batches — the
    property the micro-batcher relies on.  All arithmetic stays in float32
    (deterministic and row-wise, so bit-identity across batch compositions is
    preserved) to keep the serving hot path off the float64 slow lane.
    """
    return dispatch.rowwise_quantize(values, qmax, counts=counts)


class FrozenInt8Kernel:
    """Inference-only quantized engine attached to a single frozen layer.

    Implements the ``quant_engine`` protocol that :class:`Linear`,
    :class:`Conv2d` and :class:`DepthwiseConv2d` dispatch to, but with the
    weight operand fixed at construction: the module's float32 weight is
    ignored and the pre-quantized INT8 matrix is used instead.  The gradient
    entry points raise — an exported artifact cannot be trained.
    """

    def __init__(
        self,
        weight_q: np.ndarray,
        weight_scale: np.ndarray,
        counts: Optional[OpCounts] = None,
        qmax: int = 127,
        backend: BackendLike = None,
    ) -> None:
        if weight_q.dtype != np.int8:
            raise TypeError(f"frozen weights must be int8, got {weight_q.dtype}")
        if weight_q.ndim != 2:
            raise ValueError(
                f"frozen weights must be a 2-D matrix, got shape {weight_q.shape}"
            )
        self.weight_q = np.ascontiguousarray(weight_q)
        self.weight_qT = np.ascontiguousarray(weight_q.T)
        self.weight_scale = np.asarray(weight_scale, dtype=np.float64)
        # The hot path rescales in float32; precompute the narrowed scales.
        self._weight_scale32 = self.weight_scale.astype(np.float32)
        self.qmax = int(qmax)
        self.counts = counts if counts is not None else OpCounts()
        self.backend = backend
        # Whether an exact-float32 GEMM is possible for this layer (see the
        # fast backend): every partial sum of K = reduce_dim products stays
        # below 2^24, float32's exact-integer range.
        reduce_dim = self.weight_qT.shape[0]
        self._exact_f32 = exact_f32_possible(reduce_dim, self.qmax)
        # Float32 copy of the transposed weight, materialized lazily and
        # only for backends that read it (a reference-backend engine never
        # pays the 4x memory).
        self._weight_qT_f32: Optional[np.ndarray] = None

    def rhs_f32_for(self, backend) -> Optional[np.ndarray]:
        """The stable float32 GEMM operand this kernel feeds ``backend``.

        Public staging hook: backends that keep weights in out-of-process
        storage (:meth:`ShardBackend.stage_plan_weights
        <repro.runtime.backends.shard.ShardBackend.stage_plan_weights>`)
        fingerprint this exact array, so it must be the same object the
        hot path later passes as ``rhs_f32`` — which it is: both routes
        share this method.  Returns ``None`` when the backend never reads
        a float32 copy or the reduction is not exact in float32.
        """
        if not (self._exact_f32 and backend.wants_f32_rhs):
            return None
        if self._weight_qT_f32 is None:
            # Worker threads may race here; both compute the same array and
            # the attribute store is atomic, so the duplicate work is benign.
            self._weight_qT_f32 = self.weight_qT.astype(np.float32)
        return self._weight_qT_f32

    # Backwards-compatible alias (pre-1.4 name).
    _rhs_f32_for = rhs_f32_for

    # ------------------------------------------------------------------ #
    def _rescale(self, acc: np.ndarray, row_scales: np.ndarray) -> np.ndarray:
        out = acc.astype(np.float32)
        out *= row_scales[:, None]
        if self._weight_scale32.ndim == 1:
            out *= self._weight_scale32[None, :]
        else:
            out *= self._weight_scale32
        return out

    def linear_forward(self, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """``x @ frozen_weight.T`` with INT8 operands (``weight`` ignored)."""
        backend = dispatch.active_backend(self.backend)
        acc, x_scales = dispatch.rowwise_quantized_gemm(
            x,
            self.weight_qT,
            qmax=self.qmax,
            rhs_f32=self.rhs_f32_for(backend),
            exact_f32=self._exact_f32,
            counts=self.counts,
            backend=backend,
        )
        return self._rescale(acc, x_scales)

    def depthwise_forward(self, cols: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Depthwise inner product with INT8 operands (``weight`` ignored)."""
        c_q, c_scales = dispatch.rowwise_quantize(
            cols, self.qmax, counts=self.counts, backend=self.backend
        )
        acc = dispatch.int8_depthwise(
            c_q, self.weight_q, counts=self.counts, backend=self.backend
        )
        return self._rescale(acc, c_scales)

    # ------------------------------------------------------------------ #
    def linear_weight_grad(self, grad_output: np.ndarray, x: np.ndarray):
        raise RuntimeError(
            "FrozenInt8Kernel is inference-only; exported artifacts cannot "
            "compute weight gradients"
        )

    def depthwise_weight_grad(self, grad_matrix: np.ndarray, cols: np.ndarray):
        raise RuntimeError(
            "FrozenInt8Kernel is inference-only; exported artifacts cannot "
            "compute weight gradients"
        )


# --------------------------------------------------------------------------- #
# artifact -> frozen modules
# --------------------------------------------------------------------------- #
def _restore_frozen_units(
    artifact: InferenceArtifact,
    bundle: ModelBundle,
    counts: OpCounts,
    backend: BackendLike = None,
) -> List[Module]:
    """Rebuild the bundle's FF units with frozen INT8 kernels attached."""
    units = bundle.ff_units()
    if len(units) != artifact.num_units:
        raise ValueError(
            f"artifact stores {artifact.num_units} units but bundle "
            f"{bundle.name!r} produces {len(units)}; model configuration mismatch"
        )
    for index, unit in enumerate(units):
        prefix = f"unit{index}."
        frozen_names = set()
        for path, module in named_modules(unit):
            if isinstance(module, _QUANTIZABLE):
                base = f"{prefix}{path}weight"
                try:
                    q = artifact.tensors[base + QUANT_SUFFIX]
                    scale = artifact.tensors[base + SCALE_SUFFIX]
                except KeyError as error:
                    raise KeyError(
                        f"artifact is missing frozen weight tensor {error.args[0]!r}"
                    ) from None
                matrix = np.ascontiguousarray(q.reshape(q.shape[0], -1))
                scale = np.asarray(scale, dtype=np.float64)
                broadcast = scale[:, None] if scale.ndim == 1 else scale
                dequantized = (matrix.astype(np.float64) * broadcast).astype(
                    np.float32
                )
                module.weight.copy_(dequantized.reshape(module.weight.data.shape))
                module.quant_engine = FrozenInt8Kernel(
                    matrix, scale, counts=counts, backend=backend
                )
                frozen_names.add(f"{path}weight")
            elif isinstance(module, _BatchNormBase):
                for buffer_name in _BUFFER_NAMES:
                    key = f"{prefix}{path}{buffer_name}{BUFFER_SUFFIX}"
                    if key in artifact.tensors:
                        setattr(
                            module,
                            buffer_name,
                            artifact.tensors[key].astype(np.float32).copy(),
                        )
        for name, param in unit.named_parameters():
            if name in frozen_names:
                continue
            key = f"{prefix}{name}"
            if key not in artifact.tensors:
                raise KeyError(f"artifact is missing parameter {key!r}")
            param.copy_(artifact.tensors[key])
        unit.eval()
        unit.set_activation_caching(False)
    return units


def _bundle_from_metadata(artifact: InferenceArtifact) -> ModelBundle:
    registry_name = artifact.metadata.get("registry_name")
    if registry_name is None:
        raise ValueError(
            "artifact carries no registry reference; pass a matching "
            "ModelBundle explicitly"
        )
    kwargs = dict(artifact.metadata.get("registry_kwargs") or {})
    if "input_shape" in kwargs:
        kwargs["input_shape"] = tuple(kwargs["input_shape"])
    return build_model(str(registry_name), **kwargs)


class Int8InferenceEngine:
    """Batched goodness-readout inference over frozen INT8 units.

    The engine owns nothing trainable: units run in eval mode with activation
    caching disabled, so a forward pass allocates no gradient or cache state.
    The folded-label read-out executes the units' compiled plan once for all
    ``num_classes`` overlays — valid because the frozen kernels quantize
    activations per row.

    Compiled plans are **memoized** per ``(units_fingerprint, pins, fusion)``
    key: the units are frozen, so a pin spec (or ``"auto"`` resolution
    height) seen before maps to the exact executor compiled for it —
    repeated :meth:`apply_pins` calls and A/B sweeps over pin policies stop
    paying plan compilation, auto-pin measurement, or weight re-staging.
    :attr:`plan_compiles` / :meth:`plan_cache_stats` expose the counters
    the cache tests (and ``serve-bench``) read.
    """

    def __init__(
        self,
        units: Sequence[Module],
        overlay: LabelOverlay,
        goodness: Optional[GoodnessFunction] = None,
        flatten_input: bool = False,
        skip_first_layer: Optional[bool] = None,
        counts: Optional[OpCounts] = None,
        backend: BackendLike = None,
        pins: Optional[dict] = None,
        fuse: bool = True,
        input_shape: Optional[Tuple[int, ...]] = None,
    ) -> None:
        if not units:
            raise ValueError("engine needs at least one frozen unit")
        self.units = list(units)
        self.overlay = overlay
        self.goodness = goodness if goodness is not None else build_goodness(
            "sum_squares"
        )
        self.flatten_input = flatten_input
        if skip_first_layer is None:
            skip_first_layer = len(self.units) >= 2
        self.skip_first_layer = skip_first_layer
        self.counts = counts if counts is not None else OpCounts()
        self.fuse = bool(fuse)
        self.input_shape = tuple(input_shape) if input_shape else None
        self._backend = backend
        for unit in self.units:
            unit.eval()
            unit.set_activation_caching(False)
        # Plan memoization state.  The units fingerprint is computed once —
        # the weights are frozen for the engine's lifetime — and anchors
        # every cache key, so a key can never outlive the weights it was
        # compiled for.
        self._units_fp = self._units_fingerprint(self.units)
        self._plan_cache: Dict[tuple, PlanExecutor] = {}
        self._plan_compiles = 0
        self._plan_cache_hits = 0
        self._active_pins = pins
        self._active_rows = self._auto_rows()
        # Units are permanently eval from here on; static_eval spares the
        # per-batch mode save/restore walk on the serving hot path.  The
        # compiled plan fuses norm/gemm/conv/activation runs and honours
        # the per-layer backend pins (``pins="auto"`` resolves them from
        # measured timings at the folded-label batch height).
        self.executor = self._executor_for(pins, self._auto_rows())
        # Backends with out-of-process weight storage (shard) stage the
        # frozen weights once now, not on the first served request.
        self.executor.stage_shared_weights()
        _register_live_engine(self)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_artifact(
        cls,
        artifact: InferenceArtifact,
        bundle: Optional[ModelBundle] = None,
        backend: BackendLike = None,
        pins: Optional[dict] = None,
        fuse: bool = True,
    ) -> "Int8InferenceEngine":
        """Materialize an engine from an exported artifact.

        When ``bundle`` is omitted the module skeleton is rebuilt from the
        artifact's registry reference.  The passed bundle's blocks are frozen
        in place (weights overwritten, INT8 kernels attached) — do not keep
        training it afterwards.  ``backend`` pins a kernel backend for this
        engine; by default the ambient runtime selection applies.  ``pins``
        overrides the backend per layer (a pinned layer outranks even the
        engine-level backend).  ``fuse=False`` compiles strictly unfused
        plans (the step-per-module walk; useful as a serving A/B baseline).
        """
        if bundle is None:
            bundle = _bundle_from_metadata(artifact)
        if bundle.num_classes != artifact.num_classes:
            raise ValueError(
                f"bundle has {bundle.num_classes} classes but artifact stores "
                f"{artifact.num_classes}"
            )
        counts = OpCounts()
        units = _restore_frozen_units(artifact, bundle, counts, backend=backend)
        overlay = LabelOverlay(
            num_classes=artifact.num_classes, amplitude=artifact.overlay_amplitude
        )
        return cls(
            units,
            overlay,
            goodness=build_goodness(artifact.goodness_name),
            flatten_input=artifact.flatten_input,
            skip_first_layer=artifact.skip_first_layer,
            counts=counts,
            backend=backend,
            pins=pins,
            fuse=fuse,
            input_shape=artifact.input_shape,
        )

    # ------------------------------------------------------------------ #
    # plan memoization
    # ------------------------------------------------------------------ #
    @staticmethod
    def _units_fingerprint(units: Sequence[Module]) -> str:
        """Content digest over every frozen parameter of the unit stack.

        The same blake2b family the shard backend fingerprints staged
        weight segments with; computed once at construction (the engine's
        weights are immutable) and folded into every plan-cache key.
        """
        digest = hashlib.blake2b(digest_size=16)
        for index, unit in enumerate(units):
            for name, param in unit.named_parameters():
                digest.update(f"unit{index}.{name}".encode())
                digest.update(np.ascontiguousarray(param.data).tobytes())
        return digest.hexdigest()

    def _plan_key(self, pins, auto_rows: int) -> tuple:
        """Cache key for one compiled plan: (units, pins, fusion [, rows])."""
        if pins is None:
            pins_key = None
        elif isinstance(pins, str):  # AUTO_PINS: resolution depends on rows
            pins_key = (pins, int(auto_rows))
        else:
            pins_key = tuple(sorted(dict(pins).items()))
        return (self._units_fp, pins_key, self.fuse)

    def _executor_for(self, pins, auto_rows: int) -> PlanExecutor:
        key = self._plan_key(pins, auto_rows)
        executor = self._plan_cache.get(key)
        if executor is not None:
            self._plan_cache_hits += 1
            _OBS_PLAN_CACHE_HITS.inc()
            return executor
        executor = PlanExecutor.for_units(
            self.units, flatten_input=self.flatten_input,
            backend=self._backend, static_eval=True, fuse=self.fuse,
            pins=pins, auto_rows=auto_rows,
            auto_input_shape=(
                None if self.flatten_input else self.input_shape
            ),
        )
        self._plan_compiles += 1
        _OBS_PLAN_COMPILES.inc()
        self._plan_cache[key] = executor
        return executor

    @property
    def plan_compiles(self) -> int:
        """How many plans this engine actually compiled (cache misses)."""
        return self._plan_compiles

    def plan_cache_stats(self) -> Dict[str, int]:
        """Snapshot of the plan-memoization counters."""
        return {
            "compiles": self._plan_compiles,
            "hits": self._plan_cache_hits,
            "entries": len(self._plan_cache),
        }

    def _auto_rows(self, batch_size: Optional[int] = None) -> int:
        """Expected GEMM rows for auto-pinning: folded labels x batch."""
        return self.overlay.num_classes * int(batch_size or 32)

    def apply_pins(
        self, pins, batch_size: Optional[int] = None
    ) -> "Int8InferenceEngine":
        """Swap the execution plan to one compiled with ``pins``.

        Replaces any pins the plan was compiled with; the micro-batcher
        calls this so ``ServeConfig.pins`` reaches an engine that was built
        without them.  ``pins`` may be a spec mapping or ``"auto"``
        (measured resolution at ``batch_size`` coalesced requests — the
        engine folds all label overlays into the batch dimension, so the
        GEMM height is ``num_classes * batch_size``).  Plans are memoized
        per ``(units_fingerprint, pins, fusion)``: a pin spec seen before
        returns its already-compiled executor (object identity), so
        A/B-ing pin policies — or the batcher re-applying the config's
        pins — never recompiles or re-measures.  Returns ``self`` for
        chaining.
        """
        self._active_pins = pins
        self._active_rows = self._auto_rows(batch_size)
        self.executor = self._executor_for(pins, self._active_rows)
        # Cheap on a cache hit: weights staged for this plan are fingerprint
        # token hits in the shard backend's segment cache.  Still called so
        # a closed-then-reused engine restages into fresh segments.
        self.executor.stage_shared_weights()
        return self

    def set_fusion(self, fuse: bool) -> "Int8InferenceEngine":
        """Switch between fused and strictly unfused plans.

        Keeps the active pins; the swapped-to plan is memoized like any
        other (``fuse`` is part of every cache key), so A/B-ing fusion is
        as free as A/B-ing pin specs.  The micro-batcher calls this so
        ``ServeConfig(fuse=False)`` reaches an engine built fused.
        """
        fuse = bool(fuse)
        if fuse == self.fuse:
            return self
        self.fuse = fuse
        self.executor = self._executor_for(
            self._active_pins, self._active_rows
        )
        self.executor.stage_shared_weights()
        return self

    def close(self) -> None:
        """Release kernel-backend pools this engine's plans route to.

        The engine owns the serving pool lifecycle: closing it shuts down
        the worker pools (thread or process) of every backend any of its
        **cached** plans — not just the active one — is pinned or
        configured to use, which also unlinks the shard segments those
        plans staged (no shared memory outlives the engine).  Backends
        restart their pools lazily, so closing a shared backend is safe
        for other engines — they pay one pool restart, never a wrong
        answer.  Idempotent.
        """
        executors = list(getattr(self, "_plan_cache", {}).values())
        executor = getattr(self, "executor", None)
        if executor is not None and executor not in executors:
            executors.append(executor)
        seen = set()
        for ex in executors:
            for backend in ex.step_backend_objs():
                if id(backend) not in seen:
                    seen.add(id(backend))
                    backend.shutdown()

    def __enter__(self) -> "Int8InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def num_classes(self) -> int:
        return self.overlay.num_classes

    def goodness_matrix(self, inputs: np.ndarray) -> np.ndarray:
        """Goodness for every (sample, label) pair in one vectorized pass.

        All label overlays are folded into the batch dimension, so the whole
        readout costs one traversal of the network instead of
        ``num_classes`` separate ones.
        """
        return self.executor.goodness_matrix(
            inputs, self.overlay, self.goodness, self.skip_first_layer,
            fold_labels=True,
        )

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted labels for a batch of raw (un-overlaid) inputs.

        When tracing is on and the caller did not already bind a request
        trace (the micro-batcher does), a sampled direct call becomes its
        own root trace, so per-step spans are captured for un-batched
        engine use too.  Tracing off costs one module-flag read.
        """
        if obs_trace.tracing_enabled() and not obs_trace.has_active_trace():
            trace = obs_trace.maybe_trace(
                "engine.predict", batch=int(np.asarray(inputs).shape[0])
            )
            if trace is not None:
                with obs_trace.use_trace(trace):
                    labels = np.argmax(self.goodness_matrix(inputs), axis=1)
                obs_trace.finish_trace(trace)
                return labels
        return np.argmax(self.goodness_matrix(inputs), axis=1)

    def predict_one(self, sample: np.ndarray) -> int:
        """Predicted label for a single sample (no batch dimension)."""
        return int(self.predict(np.asarray(sample)[None])[0])

    def predict_with_margin(
        self, inputs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Labels plus per-sample goodness margin (top-1 minus top-2).

        One :meth:`goodness_matrix` traversal answers both; the margin is
        the confidence series the canary controller compares per version
        (a candidate whose margins collapse is regressing even when its
        argmax labels still agree).
        """
        matrix = np.asarray(self.goodness_matrix(inputs))
        labels = np.argmax(matrix, axis=1)
        if matrix.shape[1] < 2:
            margins = matrix[:, 0].astype(np.float64)
        else:
            top2 = np.partition(matrix, -2, axis=1)[:, -2:]
            margins = (top2[:, 1] - top2[:, 0]).astype(np.float64)
        return labels, margins

    @property
    def cache_namespace(self) -> str:
        """Namespace for shared prediction-cache keys: the units digest.

        Two engines share cached predictions exactly when their frozen
        params are identical — so a post-swap engine can never serve
        another version's cached outputs, while fingerprint-deduped
        versions still share entries.
        """
        return self._units_fp


def build_engine(
    artifact: InferenceArtifact,
    bundle: Optional[ModelBundle] = None,
    backend: BackendLike = None,
    pins: Optional[dict] = None,
    fuse: bool = True,
) -> Int8InferenceEngine:
    """Convenience alias for :meth:`Int8InferenceEngine.from_artifact`."""
    return Int8InferenceEngine.from_artifact(
        artifact, bundle, backend=backend, pins=pins, fuse=fuse
    )


def frozen_classifier(
    artifact: InferenceArtifact,
    bundle: Optional[ModelBundle] = None,
    backend: BackendLike = None,
) -> FFGoodnessClassifier:
    """A :class:`FFGoodnessClassifier` over the artifact's frozen units.

    This is the per-sample reference implementation: it traverses the same
    frozen INT8 kernels one label overlay at a time.  Because activation
    scales are per-row, its predictions are bit-identical to the batched
    engine — the equivalence the serving tests pin down.
    """
    if bundle is None:
        bundle = _bundle_from_metadata(artifact)
    counts = OpCounts()
    units = _restore_frozen_units(artifact, bundle, counts, backend=backend)
    overlay = LabelOverlay(
        num_classes=artifact.num_classes, amplitude=artifact.overlay_amplitude
    )
    return FFGoodnessClassifier(
        units,
        overlay,
        goodness=build_goodness(artifact.goodness_name),
        flatten_input=artifact.flatten_input,
        skip_first_layer=artifact.skip_first_layer,
        backend=backend,
    )
