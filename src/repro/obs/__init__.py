"""``repro.obs`` — the unified telemetry layer (tracing + metrics).

Two halves, one import surface:

* :mod:`repro.obs.trace` — structured request tracing.  Spans with parent
  links record each hop of a request's life (batcher enqueue → coalesce
  wait → cache/dedup → plan execution → per-``KernelStep`` timing with
  backend attribution → shard IPC) into a bounded ring buffer.  Off by
  default; ``REPRO_TRACE_SAMPLE`` or :func:`enable_tracing` turn it on.
* :mod:`repro.obs.registry` — a process-wide metrics registry (counters,
  gauges, fixed-bucket histograms) that the serve stack, plan cache, shard
  pool and autopin publish into, exportable as a JSON snapshot or
  Prometheus text exposition.

Both are stdlib+NumPy only and import nothing from the rest of ``repro``,
so any module — including low-level backends — may depend on them without
creating cycles.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS_MS,
    REGISTRY,
    get_registry,
)
from repro.obs.trace import (
    Span,
    Trace,
    clear_buffer,
    current_trace,
    disable_tracing,
    enable_tracing,
    finish_trace,
    format_trace,
    has_active_trace,
    maybe_trace,
    slowest_traces,
    span,
    trace_buffer,
    tracing_enabled,
    use_trace,
)

__all__ = [
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "REGISTRY",
    "get_registry",
    # tracing
    "Span",
    "Trace",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "maybe_trace",
    "finish_trace",
    "use_trace",
    "current_trace",
    "has_active_trace",
    "span",
    "trace_buffer",
    "slowest_traces",
    "clear_buffer",
    "format_trace",
]
