"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Every control loop the serving stack grows — queue-depth shedding, canary
rollback, shard-worker heartbeats — needs *live, scrapeable* signals, not
post-hoc report tables.  The registry is that signal plane: named metrics
that :class:`~repro.serve.metrics.ServeMetrics`, the micro-batcher's
autoscalers, the engine's plan cache, the shard pool and ``autopin`` all
publish into, readable two ways:

* :meth:`MetricsRegistry.snapshot` — a JSON-serializable dict, attached to
  benchmark records (``meta.obs``) and the ``serve-bench --output`` summary
  so perf numbers always carry their context;
* :meth:`MetricsRegistry.render_prometheus` — Prometheus text exposition
  (version 0.0.4), so a future network front-end can expose ``/metrics``
  with a one-line handler.

Design constraints, in order: **hot-path cheapness** (a counter increment is
one lock + one add; histograms take whole batches per lock acquisition via
:meth:`Histogram.observe_many` and keep fixed buckets — no per-sample
storage, ever), **thread safety** (serve workers, shard parents and client
threads all publish concurrently), and **zero dependencies** (stdlib +
NumPy only, so any module in the repo may import it without cycles).

Metrics follow the Prometheus naming idiom: ``repro_`` prefix, base units
in the name (``_ms``, ``_bytes``), ``_total`` suffix on counters.  Labelled
series are separate metric objects sharing a name (``counter(name,
backend="fast")``); the exposition groups them under one ``# TYPE`` block.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram bucket upper bounds for millisecond latencies — spans
#: sub-cache-hit (0.1 ms) to stuck-request (1 s) on the serving path.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _series_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """The exposition-style series identifier (``name{k="v",...}``)."""
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared identity/lock plumbing for every metric kind."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.help = help_text
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def series(self) -> str:
        """``name{label="value",...}`` — the snapshot/exposition key."""
        return _series_key(self.name, self.labels)


class Counter(_Metric):
    """Monotonically increasing count (requests served, pool resets, ...)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str,
                 labels: Tuple[Tuple[str, str], ...]) -> None:
        super().__init__(name, help_text, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Metric):
    """A value that goes both ways (live workers, staged bytes, EWMA)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 labels: Tuple[Tuple[str, str], ...]) -> None:
        super().__init__(name, help_text, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Metric):
    """Fixed-bucket histogram: per-bucket counts + sum, no sample storage.

    Buckets are upper bounds (``le`` in Prometheus terms) with an implicit
    ``+Inf``; observations cost one bisect + one add, and
    :meth:`observe_many` folds a whole batch of values under a single lock
    acquisition — the form the serve hot path uses, so per-request overhead
    amortizes to one NumPy ``searchsorted`` per dispatched batch.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labels: Tuple[Tuple[str, str], ...],
                 buckets: Sequence[float]) -> None:
        super().__init__(name, help_text, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate histogram buckets: {buckets}")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # (+Inf last)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        array = np.asarray(list(values), dtype=np.float64)
        if array.size == 0:
            return
        indices = np.searchsorted(self.buckets, array, side="left")
        folded = np.bincount(indices, minlength=len(self._counts))
        total = float(array.sum())
        with self._lock:
            for index, count in enumerate(folded):
                self._counts[index] += int(count)
            self._sum += total
            self._count += int(array.size)

    def value(self) -> Dict[str, Any]:
        """Cumulative bucket counts plus sum/count (one consistent read)."""
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = running + counts[-1]
        return {"buckets": cumulative, "sum": total, "count": count}


class MetricsRegistry:
    """Get-or-create home of every metric; snapshot + exposition renderer.

    One registry normally serves the whole process (:data:`REGISTRY` /
    :func:`get_registry`); tests construct private ones.  ``counter`` /
    ``gauge`` / ``histogram`` are idempotent per ``(name, labels)`` — a
    second caller gets the same object, and a kind clash (a gauge where a
    counter lives) raises instead of silently corrupting the series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[Tuple[str, tuple], _Metric]" = {}

    # ------------------------------------------------------------------ #
    def _get_or_create(self, cls, name: str, help_text: str,
                       labels: Dict[str, str], **kwargs) -> _Metric:
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        label_items = tuple(sorted(
            (str(key), str(value)) for key, value in (labels or {}).items()
        ))
        for key, _ in label_items:
            if not _LABEL_PATTERN.match(key):
                raise ValueError(f"invalid label name {key!r}")
        registry_key = (name, label_items)
        with self._lock:
            metric = self._metrics.get(registry_key)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, not {cls.kind}"
                    )
                return metric
            metric = cls(name, help_text, label_items, **kwargs)
            self._metrics[registry_key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    # ------------------------------------------------------------------ #
    def metrics(self) -> List[_Metric]:
        """Every registered metric, name-sorted (stable output order)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(metrics, key=lambda metric: (metric.name, metric.labels))

    def find(self, name: str, **labels: str) -> List[_Metric]:
        """Every series sharing ``name`` whose labels include ``labels``.

        The labeled-series query: ``find("repro_model_latency_ms",
        model="mlp-mini")`` returns one metric per version — how the
        canary controller and reports walk a family without knowing the
        label values up front.
        """
        wanted = {(str(key), str(value)) for key, value in labels.items()}
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(
            (metric for metric in metrics
             if metric.name == name and wanted.issubset(set(metric.labels))),
            key=lambda metric: metric.labels,
        )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable view of every metric's current value.

        The shape benchmark records and ``serve-bench --output`` embed:
        ``{"counters": {series: value}, "gauges": {...}, "histograms":
        {series: {"buckets": ..., "sum": ..., "count": ...}}}``.
        """
        payload: Dict[str, Any] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for metric in self.metrics():
            payload[f"{metric.kind}s"][metric.series] = metric.value()
        return payload

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition (version 0.0.4)."""
        lines: List[str] = []
        seen_header = set()
        for metric in self.metrics():
            if metric.name not in seen_header:
                seen_header.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                value = metric.value()
                for bound, count in value["buckets"].items():
                    bucket_labels = metric.labels + (("le", bound),)
                    lines.append(
                        f"{_series_key(metric.name + '_bucket', bucket_labels)}"
                        f" {count}"
                    )
                lines.append(
                    f"{_series_key(metric.name + '_sum', metric.labels)} "
                    f"{value['sum']:g}"
                )
                lines.append(
                    f"{_series_key(metric.name + '_count', metric.labels)} "
                    f"{value['count']}"
                )
            else:
                lines.append(f"{metric.series} {metric.value():g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document (the CLI dump format)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every metric (tests; a live process never resets)."""
        with self._lock:
            self._metrics.clear()


#: the process-wide default registry every built-in publisher writes to.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return REGISTRY


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "REGISTRY",
    "get_registry",
]
