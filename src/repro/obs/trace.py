"""Structured request tracing: spans, sampling, and a bounded trace buffer.

Answers the question no aggregate can: *where did this request's 4 ms go?*
A :class:`Trace` is one request's tree of :class:`Span` records — batcher
enqueue, coalesce wait, cache/dedup checks, plan execution, every
``KernelStep`` with the backend that ran it, shard IPC round-trips — held
in a bounded thread-safe ring buffer (newest ``REPRO_TRACE_BUFFER`` traces,
default 256) that ``serve-bench --trace N`` and ``obs-snapshot`` read back.

The design is dominated by one requirement: **tracing off must cost nearly
nothing** on the serve hot path (the overhead guard benchmark holds the
line at <1%).  Hence:

* a module-level ``_STATE.enabled`` flag checked before *any* allocation —
  :func:`maybe_trace` is one attribute load + branch when off;
* inside the executor the guard is :func:`has_active_trace`, a thread-local
  attribute read, so un-traced requests never touch the span machinery even
  while another thread is being traced;
* sampling (``REPRO_TRACE_SAMPLE=0.01`` ⇒ every ~100th request) is a
  deterministic counter stride, not an RNG draw, so sampled runs are
  reproducible and the rejected-path cost is one integer increment.

Span payloads are plain slotted objects created only on the traced path;
attrs are small dicts of primitives (backend name, row counts, fused flag).
Parent links come from a thread-local span stack managed by the
:func:`span` context manager, so nested instrumentation composes without
threading ids through call signatures.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Trace",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "maybe_trace",
    "finish_trace",
    "use_trace",
    "current_trace",
    "has_active_trace",
    "span",
    "trace_buffer",
    "slowest_traces",
    "clear_buffer",
    "format_trace",
]

_DEFAULT_BUFFER = 256


class Span:
    """One timed hop inside a trace (slotted: traces are bulk objects)."""

    __slots__ = ("span_id", "parent_id", "name", "start_s", "duration_ms",
                 "attrs")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 start_s: float, duration_ms: float,
                 attrs: Dict[str, Any]) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.duration_ms = duration_ms
        self.attrs = attrs

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_ms": self.duration_ms,
            "attrs": dict(self.attrs),
        }


class Trace:
    """One request's spans.  Span id 0 is the root; children append under a
    lock because a traced request crosses threads (client → batch worker →
    shard parent)."""

    __slots__ = ("trace_id", "name", "start_s", "duration_ms", "attrs",
                 "_spans", "_lock", "_next_id")

    def __init__(self, trace_id: int, name: str, start_s: float,
                 attrs: Dict[str, Any]) -> None:
        self.trace_id = trace_id
        self.name = name
        self.start_s = start_s
        self.duration_ms = 0.0  # sealed by finish_trace()
        self.attrs = attrs
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._next_id = itertools.count(1)

    # ------------------------------------------------------------------ #
    def reserve_id(self) -> int:
        """A fresh span id (itertools.count is atomic under the GIL)."""
        return next(self._next_id)

    def record_span(self, name: str, start_s: float, end_s: float,
                    parent_id: Optional[int] = 0,
                    span_id: Optional[int] = None,
                    **attrs: Any) -> Span:
        """Append a completed span; parent defaults to the root (id 0)."""
        entry = Span(
            span_id=self.reserve_id() if span_id is None else span_id,
            parent_id=parent_id,
            name=name,
            start_s=start_s,
            duration_ms=(end_s - start_s) * 1e3,
            attrs=attrs,
        )
        with self._lock:
            self._spans.append(entry)
        return entry

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the ``serve-bench --output`` trace dump)."""
        root = {
            "span_id": 0,
            "parent_id": None,
            "name": self.name,
            "start_s": self.start_s,
            "duration_ms": self.duration_ms,
            "attrs": dict(self.attrs),
        }
        return {
            "trace_id": self.trace_id,
            "duration_ms": self.duration_ms,
            "spans": [root] + [entry.as_dict() for entry in self.spans()],
        }


class _TraceState:
    """Module-level switchboard: enabled flag, sampling stride, buffer."""

    def __init__(self) -> None:
        self.enabled = False
        self.stride = 1          # trace every Nth maybe_trace() call
        self._counter = 0
        self._trace_ids = itertools.count(1)
        self._lock = threading.Lock()
        maxlen = _DEFAULT_BUFFER
        raw = os.environ.get("REPRO_TRACE_BUFFER")
        if raw:
            try:
                maxlen = max(1, int(raw))
            except ValueError:
                pass
        self.buffer: "deque[Trace]" = deque(maxlen=maxlen)
        self._configure_from_env()

    def _configure_from_env(self) -> None:
        raw = os.environ.get("REPRO_TRACE_SAMPLE")
        if not raw:
            return
        try:
            rate = float(raw)
        except ValueError:
            return
        if rate > 0:
            self.configure(rate)

    def configure(self, sample: float) -> None:
        if not 0 < sample <= 1:
            raise ValueError(f"sample rate must be in (0, 1], got {sample}")
        self.stride = max(1, round(1.0 / sample))
        self.enabled = True

    def should_sample(self) -> bool:
        """Deterministic stride sampling — one int increment per rejection."""
        with self._lock:
            self._counter += 1
            return self._counter % self.stride == 0

    def next_trace_id(self) -> int:
        return next(self._trace_ids)


_STATE = _TraceState()


class _TLS(threading.local):
    def __init__(self) -> None:
        self.trace: Optional[Trace] = None
        self.parent_id: int = 0


_TLS_STATE = _TLS()


# ---------------------------------------------------------------------- #
# control surface
# ---------------------------------------------------------------------- #
def enable_tracing(sample: float = 1.0) -> None:
    """Turn tracing on, sampling roughly every ``1/sample``-th request."""
    _STATE.configure(sample)


def disable_tracing() -> None:
    """Turn tracing off (the near-zero-overhead default)."""
    _STATE.enabled = False


def tracing_enabled() -> bool:
    return _STATE.enabled


def maybe_trace(name: str, **attrs: Any) -> Optional[Trace]:
    """Start a trace for this request, or ``None`` (off / not sampled).

    The disabled path is one attribute load and a branch — this is the
    call every request makes, so it must stay allocation-free when off.
    """
    if not _STATE.enabled:
        return None
    if not _STATE.should_sample():
        return None
    return Trace(
        trace_id=_STATE.next_trace_id(),
        name=name,
        start_s=perf_counter(),
        attrs=attrs,
    )


def finish_trace(trace: Optional[Trace],
                 end_s: Optional[float] = None) -> None:
    """Seal the root duration and push the trace into the ring buffer."""
    if trace is None:
        return
    trace.duration_ms = ((end_s if end_s is not None else perf_counter())
                         - trace.start_s) * 1e3
    _STATE.buffer.append(trace)


def current_trace() -> Optional[Trace]:
    """The trace the calling thread is executing under, if any."""
    return _TLS_STATE.trace


def has_active_trace() -> bool:
    """Cheap executor-side guard: is *this thread* inside a traced request?"""
    return _TLS_STATE.trace is not None


@contextmanager
def use_trace(trace: Optional[Trace],
              parent_id: int = 0) -> Iterator[Optional[Trace]]:
    """Bind ``trace`` as the calling thread's active trace.

    The batch worker uses this to run the engine "on behalf of" a traced
    request, so executor spans land in that request's tree.  ``None`` is
    accepted and makes the block a no-op, keeping call sites branch-free.
    """
    if trace is None:
        yield None
        return
    previous_trace = _TLS_STATE.trace
    previous_parent = _TLS_STATE.parent_id
    _TLS_STATE.trace = trace
    _TLS_STATE.parent_id = parent_id
    try:
        yield trace
    finally:
        _TLS_STATE.trace = previous_trace
        _TLS_STATE.parent_id = previous_parent


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Dict[str, Any]]:
    """Record a timed span under the thread's active trace.

    Yields the (mutable) attrs dict so the body can attach results known
    only mid-flight (rows, backend, cache verdict).  With no active trace
    this is a cheap no-op yielding a throwaway dict.
    """
    trace = _TLS_STATE.trace
    if trace is None:
        yield attrs
        return
    parent_id = _TLS_STATE.parent_id
    span_id = trace.reserve_id()
    previous_parent = parent_id
    _TLS_STATE.parent_id = span_id
    start_s = perf_counter()
    try:
        yield attrs
    finally:
        end_s = perf_counter()
        _TLS_STATE.parent_id = previous_parent
        trace.record_span(name, start_s, end_s, parent_id=parent_id,
                          span_id=span_id, **attrs)


# ---------------------------------------------------------------------- #
# buffer access + rendering
# ---------------------------------------------------------------------- #
def trace_buffer() -> List[Trace]:
    """Snapshot of the ring buffer, oldest first."""
    return list(_STATE.buffer)


def slowest_traces(n: int = 5) -> List[Trace]:
    """The ``n`` slowest buffered traces (slowest first)."""
    return sorted(_STATE.buffer, key=lambda trace: -trace.duration_ms)[:n]


def clear_buffer() -> None:
    _STATE.buffer.clear()


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = " ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
    return f"  [{inner}]"


def format_trace(trace: Trace) -> str:
    """Render one trace as an indented tree, children in start order.

    Example::

        trace #7 serve.request  4.213 ms
        ├─ batcher.cache  0.031 ms  [hit=False]
        ├─ batcher.enqueue  0.008 ms  [queue_depth=3]
        ├─ batcher.coalesce_wait  1.102 ms  [batch_size=8]
        └─ engine.predict  2.951 ms
           ├─ unit0.fused  1.204 ms  [backend=fast fused=True rows=8]
           └─ unit1.gemm  0.933 ms  [backend=shard fused=False rows=8]
    """
    spans = sorted(trace.spans(), key=lambda entry: entry.start_s)
    children: Dict[int, List[Span]] = {}
    for entry in spans:
        children.setdefault(
            0 if entry.parent_id is None else entry.parent_id, []
        ).append(entry)

    lines = [
        f"trace #{trace.trace_id} {trace.name}  {trace.duration_ms:.3f} ms"
        f"{_format_attrs(trace.attrs)}"
    ]

    def walk(parent_id: int, prefix: str) -> None:
        siblings = children.get(parent_id, [])
        for index, entry in enumerate(siblings):
            last = index == len(siblings) - 1
            branch = "└─ " if last else "├─ "
            lines.append(
                f"{prefix}{branch}{entry.name}  {entry.duration_ms:.3f} ms"
                f"{_format_attrs(entry.attrs)}"
            )
            walk(entry.span_id, prefix + ("   " if last else "│  "))

    walk(0, "")
    return "\n".join(lines)
