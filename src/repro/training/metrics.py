"""Evaluation helpers shared by the BP and FF trainers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.nn.losses import CrossEntropyLoss, accuracy
from repro.nn.module import Module


def evaluate_classifier(
    model: Module,
    dataset: ArrayDataset,
    batch_size: int = 64,
    flatten_input: bool = False,
    max_batches: Optional[int] = None,
) -> Tuple[float, float]:
    """Return ``(mean_loss, accuracy)`` of ``model`` on ``dataset``.

    The model is put in eval mode (BatchNorm running stats, no dropout) and
    restored to its previous mode afterwards.
    """
    was_training = model.training
    model.eval()
    loss_fn = CrossEntropyLoss(dataset.num_classes)
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    total_loss = 0.0
    total_correct = 0.0
    total_samples = 0
    for batch_index, (images, labels) in enumerate(loader):
        if max_batches is not None and batch_index >= max_batches:
            break
        inputs = images.reshape(images.shape[0], -1) if flatten_input else images
        logits = model(inputs)
        loss, _ = loss_fn(logits, labels)
        total_loss += loss * labels.shape[0]
        total_correct += accuracy(logits, labels) * labels.shape[0]
        total_samples += labels.shape[0]
    if was_training:
        model.train()
    if total_samples == 0:
        return 0.0, 0.0
    return total_loss / total_samples, total_correct / total_samples


def prediction_entropy(logits: np.ndarray) -> float:
    """Mean predictive entropy (nats); high entropy ≈ random-level predictions.

    Used by the divergence detector for Figure 2: a collapsed INT8 run drifts
    toward uniform predictions.
    """
    from repro.nn.functional import softmax

    probs = softmax(logits, axis=1)
    entropy = -np.sum(probs * np.log(probs + 1e-12), axis=1)
    return float(np.mean(entropy))
