"""Gradient quantization strategies for the INT8 backpropagation baselines.

The paper compares FF-INT8 against three BP-based INT8 schemes:

* **BP-INT8** — gradients quantized directly with a per-tensor absolute-max
  SUQ scale.  This is the scheme that collapses for deep networks (Figure 2,
  Table I): sharp gradient distributions waste nearly all integer levels.
* **BP-UI8** (Zhu et al., CVPR 2020) — *direction-sensitive gradient
  clipping* chooses a clipping range that bounds the angular deviation between
  the quantized and original gradient, and *deviation-counteractive learning
  rate scaling* shrinks the step when the deviation is large.
* **BP-GDAI8** (Wang & Kang, Neurocomputing 2023) — *gradient
  distribution-aware* quantization derives the scale from a high percentile
  of the observed magnitude distribution instead of the maximum, adapting to
  the heavy-tailed shapes shown in Figure 3.

Each strategy is a callable ``(name, grad) -> quantized_grad`` plus an
optional per-step learning-rate scale, so the same :class:`BPTrainer` drives
all baselines.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.quant.qconfig import QuantConfig
from repro.quant.suq import fake_quantize
from repro.utils.rng import RngLike, new_rng


class GradientTransform:
    """Base class: identity transform, unit learning-rate scale."""

    name = "fp32"

    def __call__(self, param_name: str, grad: np.ndarray) -> np.ndarray:
        return grad

    def lr_scale(self) -> float:
        """Multiplicative learning-rate adjustment for the current step."""
        return 1.0

    def reset(self) -> None:
        """Clear any per-step state (called once per optimizer step)."""


class DirectInt8Gradient(GradientTransform):
    """Naive BP-INT8: SUQ quantization of every gradient tensor.

    "Direct" quantization makes no attempt to track the gradient distribution:
    the scale for each tensor is calibrated once, from the first mini-batches
    (``static_scale=True``, the default), and then reused.  As training
    progresses the gradients shrink well below the calibrated range — faster
    for the early layers of deep networks (Figure 3) — and get flushed to a
    handful of integer levels or to zero, which is the accuracy collapse the
    paper reports in Table I and Figure 2.  ``static_scale=False`` gives the
    milder variant that re-derives an abs-max scale on every step.
    """

    name = "int8-direct"

    def __init__(
        self,
        config: Optional[QuantConfig] = None,
        static_scale: bool = True,
        calibration_steps: int = 3,
        rng: RngLike = 0,
    ) -> None:
        self.config = config if config is not None else QuantConfig(rounding="nearest")
        self.static_scale = static_scale
        self.calibration_steps = max(1, int(calibration_steps))
        self._rng = new_rng(rng)
        self._calibrated_scale: Dict[str, float] = {}
        self._observations: Dict[str, int] = {}

    def __call__(self, param_name: str, grad: np.ndarray) -> np.ndarray:
        if not grad.size:
            return grad
        if not self.static_scale:
            return fake_quantize(grad, self.config, rng=self._rng)

        seen = self._observations.get(param_name, 0)
        abs_max = float(np.max(np.abs(grad)))
        if seen < self.calibration_steps:
            previous = self._calibrated_scale.get(param_name, 0.0)
            self._calibrated_scale[param_name] = max(previous, abs_max)
            self._observations[param_name] = seen + 1
        threshold = self._calibrated_scale.get(param_name, abs_max)
        if threshold <= 0.0:
            return grad
        scale = threshold / self.config.qmax
        from repro.quant.rounding import apply_rounding

        levels = np.clip(grad, -threshold, threshold) / scale
        rounded = apply_rounding(levels, self.config.rounding, rng=self._rng)
        quantized = np.clip(rounded, self.config.qmin, self.config.qmax)
        return (quantized * scale).astype(np.float32)


class UI8Gradient(GradientTransform):
    """Unified INT8 training (UI8): direction-sensitive clipping + LR scaling.

    For each gradient tensor a small set of candidate clipping thresholds is
    evaluated; the threshold whose clipped-and-quantized gradient has the
    smallest angular deviation from the original is kept.  The residual
    deviation then damps the learning rate via ``1 / (1 + alpha * deviation)``.
    """

    name = "ui8"

    def __init__(
        self,
        config: Optional[QuantConfig] = None,
        clip_candidates: tuple[float, ...] = (1.0, 0.7, 0.5, 0.3, 0.2),
        alpha: float = 10.0,
        rng: RngLike = 0,
    ) -> None:
        self.config = config if config is not None else QuantConfig(rounding="nearest")
        if not clip_candidates:
            raise ValueError("clip_candidates must not be empty")
        self.clip_candidates = clip_candidates
        self.alpha = float(alpha)
        self._rng = new_rng(rng)
        self._max_deviation = 0.0

    @staticmethod
    def _deviation(original: np.ndarray, quantized: np.ndarray) -> float:
        """Angular deviation ``1 - cos(g, q)`` between gradients."""
        orig = original.ravel().astype(np.float64)
        quant = quantized.ravel().astype(np.float64)
        norm = np.linalg.norm(orig) * np.linalg.norm(quant)
        if norm == 0.0:
            return 0.0
        cosine = float(np.dot(orig, quant) / norm)
        return 1.0 - min(max(cosine, -1.0), 1.0)

    def __call__(self, param_name: str, grad: np.ndarray) -> np.ndarray:
        abs_max = float(np.max(np.abs(grad))) if grad.size else 0.0
        if abs_max == 0.0:
            return grad
        best_grad = grad
        best_deviation = np.inf
        for fraction in self.clip_candidates:
            threshold = fraction * abs_max
            clipped = np.clip(grad, -threshold, threshold)
            quantized = fake_quantize(clipped, self.config, rng=self._rng)
            deviation = self._deviation(grad, quantized)
            if deviation < best_deviation:
                best_deviation = deviation
                best_grad = quantized
        self._max_deviation = max(self._max_deviation, best_deviation)
        return best_grad

    def lr_scale(self) -> float:
        return 1.0 / (1.0 + self.alpha * self._max_deviation)

    def reset(self) -> None:
        self._max_deviation = 0.0


class GDAI8Gradient(GradientTransform):
    """Gradient-distribution-aware INT8 (GDAI8) quantization.

    The scale is derived from a high percentile of ``|grad|`` (smoothed across
    steps per tensor), so rare outliers do not stretch the quantization grid;
    stochastic rounding keeps the update unbiased.
    """

    name = "gdai8"

    def __init__(
        self,
        percentile: float = 99.5,
        smoothing: float = 0.7,
        config: Optional[QuantConfig] = None,
        rng: RngLike = 0,
    ) -> None:
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must lie in (0, 100], got {percentile}")
        if not 0.0 <= smoothing < 1.0:
            raise ValueError(f"smoothing must lie in [0, 1), got {smoothing}")
        base = config if config is not None else QuantConfig(rounding="stochastic")
        self.config = QuantConfig(
            bits=base.bits,
            rounding=base.rounding,
            per_channel=base.per_channel,
            percentile=None,
            seed=base.seed,
        )
        self.percentile = float(percentile)
        self.smoothing = float(smoothing)
        self._rng = new_rng(rng)
        self._running_threshold: Dict[str, float] = {}

    def __call__(self, param_name: str, grad: np.ndarray) -> np.ndarray:
        if not grad.size:
            return grad
        threshold = float(np.percentile(np.abs(grad), self.percentile))
        previous = self._running_threshold.get(param_name)
        if previous is not None:
            threshold = self.smoothing * previous + (1 - self.smoothing) * threshold
        self._running_threshold[param_name] = threshold
        if threshold <= 0.0:
            return grad
        clipped = np.clip(grad, -threshold, threshold)
        scale = threshold / self.config.qmax
        return fake_quantize(
            clipped, self.config, rng=self._rng
        ) if scale == 0 else self._quantize_with_scale(clipped, scale)

    def _quantize_with_scale(self, values: np.ndarray, scale: float) -> np.ndarray:
        from repro.quant.rounding import apply_rounding

        levels = values / scale
        rounded = apply_rounding(levels, self.config.rounding, rng=self._rng)
        clipped = np.clip(rounded, self.config.qmin, self.config.qmax)
        return (clipped * scale).astype(np.float32)


def build_gradient_transform(name: str, **kwargs) -> GradientTransform:
    """Factory used by the trainer configuration layer."""
    name = name.lower()
    if name in ("fp32", "none", "identity"):
        return GradientTransform()
    if name in ("int8", "int8-direct", "bp-int8"):
        return DirectInt8Gradient(**kwargs)
    if name in ("ui8", "bp-ui8"):
        return UI8Gradient(**kwargs)
    if name in ("gdai8", "bp-gdai8"):
        return GDAI8Gradient(**kwargs)
    raise ValueError(f"unknown gradient transform {name!r}")
