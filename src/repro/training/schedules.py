"""Learning-rate and λ (look-ahead coefficient) schedules."""

from __future__ import annotations

import math


class LRSchedule:
    """Base class: maps an epoch index to a learning rate."""

    def __init__(self, base_lr: float) -> None:
        if base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        self.base_lr = float(base_lr)

    def lr_at(self, epoch: int) -> float:
        """Learning rate to use during ``epoch`` (0-based)."""
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Fixed learning rate."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, base_lr: float, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(base_lr)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must lie in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class CosineLR(LRSchedule):
    """Cosine annealing from ``base_lr`` to ``min_lr`` over ``total_epochs``."""

    def __init__(self, base_lr: float, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(base_lr)
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        if min_lr < 0 or min_lr > base_lr:
            raise ValueError(
                f"min_lr must lie in [0, base_lr], got {min_lr} (base_lr={base_lr})"
            )
        self.total_epochs = total_epochs
        self.min_lr = float(min_lr)

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class LambdaSchedule:
    """Schedule for the look-ahead coefficient λ of Equation 3.

    The paper initializes λ to 0 and increases it by 0.001 every epoch
    (Section V-A3); ``LinearLambda`` reproduces that, with an optional cap.
    """

    def value_at(self, epoch: int) -> float:
        """λ to use during ``epoch`` (0-based)."""
        raise NotImplementedError


class ConstantLambda(LambdaSchedule):
    """Fixed λ (used by ablations)."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"lambda must be >= 0, got {value}")
        self.value = float(value)

    def value_at(self, epoch: int) -> float:
        return self.value


class LinearLambda(LambdaSchedule):
    """λ(epoch) = min(initial + increment * epoch, maximum)."""

    def __init__(
        self,
        initial: float = 0.0,
        increment: float = 0.001,
        maximum: float = 1.0,
    ) -> None:
        if initial < 0 or increment < 0 or maximum < initial:
            raise ValueError(
                f"invalid lambda schedule: initial={initial}, increment={increment}, "
                f"maximum={maximum}"
            )
        self.initial = float(initial)
        self.increment = float(increment)
        self.maximum = float(maximum)

    def value_at(self, epoch: int) -> float:
        return min(self.initial + self.increment * epoch, self.maximum)
