"""Optimizers operating on :class:`~repro.nn.parameter.Parameter` lists."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.parameter import Parameter


class Optimizer:
    """Base optimizer; subclasses implement :meth:`_update`."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.lr_scale = 1.0

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        for param in self.parameters:
            if not param.requires_grad or param.grad is None:
                continue
            self._update(param)

    def set_lr(self, lr: float) -> None:
        """Override the base learning rate (used by schedulers)."""
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def set_lr_scale(self, scale: float) -> None:
        """Multiplicative LR modifier (used by UI8's deviation counteraction)."""
        if scale <= 0:
            raise ValueError(f"lr scale must be positive, got {scale}")
        self.lr_scale = float(scale)

    @property
    def effective_lr(self) -> float:
        """Learning rate after applying the scale modifier."""
        return self.lr * self.lr_scale

    def _update(self, param: Parameter) -> None:
        raise NotImplementedError

    def state_bytes(self, bytes_per_element: int = 4) -> int:
        """Optimizer-state memory footprint (for the memory model)."""
        return 0


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            buf = self._velocity.get(id(param))
            if buf is None:
                buf = np.zeros_like(param.data)
            buf = self.momentum * buf + grad
            self._velocity[id(param)] = buf
            grad = buf
        param.data -= self.effective_lr * grad

    def state_bytes(self, bytes_per_element: int = 4) -> int:
        if not self.momentum:
            return 0
        return sum(param.size for param in self.parameters) * bytes_per_element


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._steps: Dict[int, int] = {}

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        key = id(param)
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        step = self._steps.get(key, 0) + 1
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[key], self._v[key], self._steps[key] = m, v, step
        m_hat = m / (1 - self.beta1**step)
        v_hat = v / (1 - self.beta2**step)
        param.data -= self.effective_lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_bytes(self, bytes_per_element: int = 4) -> int:
        return 2 * sum(param.size for param in self.parameters) * bytes_per_element


def build_optimizer(
    name: str, parameters: Iterable[Parameter], lr: float, **kwargs
) -> Optimizer:
    """Factory used by trainer configs (``"sgd"`` or ``"adam"``)."""
    name = name.lower()
    if name == "sgd":
        return SGD(parameters, lr=lr, **kwargs)
    if name == "adam":
        return Adam(parameters, lr=lr, **kwargs)
    raise ValueError(f"unknown optimizer {name!r}; expected 'sgd' or 'adam'")
