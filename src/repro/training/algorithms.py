"""Named trainer configurations matching the rows of Table V.

``make_trainer("BP-GDAI8", epochs=..., lr=...)`` returns a ready-to-run
trainer for any of the paper's five algorithms, so the summary benchmark can
sweep algorithms uniformly.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.quant.qconfig import QuantConfig
from repro.training.bp import BPConfig, BPTrainer
from repro.training.gradient_transforms import (
    DirectInt8Gradient,
    GDAI8Gradient,
    UI8Gradient,
)

# Canonical algorithm labels as they appear in the paper's tables.
BP_FP32 = "BP-FP32"
BP_INT8 = "BP-INT8"
BP_UI8 = "BP-UI8"
BP_GDAI8 = "BP-GDAI8"
FF_INT8 = "FF-INT8"

BP_ALGORITHMS = (BP_FP32, BP_INT8, BP_UI8, BP_GDAI8)
ALL_ALGORITHMS = BP_ALGORITHMS + (FF_INT8,)


def make_bp_config(
    algorithm: str,
    epochs: int = 10,
    batch_size: int = 32,
    lr: float = 0.01,
    optimizer: str = "sgd",
    int8_forward: Optional[bool] = None,
    seed: int = 0,
    **overrides,
) -> BPConfig:
    """Build a :class:`BPConfig` for one of the BP-based algorithm labels."""
    algorithm = algorithm.upper()
    if algorithm not in BP_ALGORITHMS:
        raise ValueError(
            f"unknown BP algorithm {algorithm!r}; expected one of {BP_ALGORITHMS}"
        )
    transform = None
    default_int8_forward = False
    if algorithm == BP_INT8:
        transform = DirectInt8Gradient(rng=seed)
        default_int8_forward = True
    elif algorithm == BP_UI8:
        transform = UI8Gradient(rng=seed)
        default_int8_forward = True
    elif algorithm == BP_GDAI8:
        transform = GDAI8Gradient(rng=seed)
        default_int8_forward = True
    config = BPConfig(
        epochs=epochs,
        batch_size=batch_size,
        lr=lr,
        optimizer=optimizer,
        gradient_transform=transform,
        int8_forward=(
            int8_forward if int8_forward is not None else default_int8_forward
        ),
        quant_config=QuantConfig(),
        seed=seed,
        **overrides,
    )
    return config


def make_trainer(algorithm: str, **kwargs):
    """Return a trainer instance for any of the five algorithm labels.

    BP-family labels return a :class:`BPTrainer`; ``"FF-INT8"`` returns a
    :class:`repro.core.ff_int8.FFInt8Trainer` with look-ahead enabled (the
    configuration evaluated in Table V).
    """
    label = algorithm.upper()
    if label in BP_ALGORITHMS:
        return BPTrainer(make_bp_config(label, **kwargs))
    if label == FF_INT8:
        from repro.core.ff_int8 import FFInt8Config, FFInt8Trainer

        return FFInt8Trainer(FFInt8Config(**kwargs))
    raise ValueError(
        f"unknown algorithm {algorithm!r}; expected one of {ALL_ALGORITHMS}"
    )


def algorithm_properties(algorithm: str) -> Dict[str, object]:
    """Static properties of an algorithm used by the hardware cost model.

    ``backward_pass`` — whether a full backward sweep over the graph runs;
    ``mac_precision`` — operand width of the dominant GEMMs;
    ``stores_graph`` — whether intermediate activations must stay resident;
    ``analysis_passes`` — number of FP32 passes over each gradient tensor
    spent analysing its distribution before quantizing (direction-sensitive
    clip search for UI8, percentile scan for GDAI8; 0 for direct
    quantization and for FF-INT8).
    """
    label = algorithm.upper()
    table = {
        BP_FP32: {
            "backward_pass": True,
            "mac_precision": "fp32",
            "stores_graph": True,
            "analysis_passes": 0.0,
        },
        BP_INT8: {
            "backward_pass": True,
            "mac_precision": "int8",
            "stores_graph": True,
            "analysis_passes": 0.0,
        },
        BP_UI8: {
            "backward_pass": True,
            "mac_precision": "int8",
            "stores_graph": True,
            "analysis_passes": 8.0,
        },
        BP_GDAI8: {
            "backward_pass": True,
            "mac_precision": "int8",
            "stores_graph": True,
            "analysis_passes": 3.0,
        },
        FF_INT8: {
            "backward_pass": False,
            "mac_precision": "int8",
            "stores_graph": False,
            "analysis_passes": 0.0,
        },
    }
    if label not in table:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALL_ALGORITHMS}"
        )
    return table[label]
