"""Backpropagation trainer driving the FP32 baseline and all INT8 BP variants.

The trainer differences between BP-FP32, BP-INT8, BP-UI8 and BP-GDAI8 are
confined to (a) the gradient transform applied before the optimizer step and
(b) whether the forward/weight-gradient GEMMs execute on the INT8 engine.
Everything else — mini-batching, the cross-entropy objective, evaluation — is
shared, which mirrors how the paper treats them as one family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.models.base import ModelBundle
from repro.nn.losses import CrossEntropyLoss, accuracy
from repro.quant.prepare import prepare_int8
from repro.quant.qconfig import QuantConfig
from repro.training.gradient_transforms import GradientTransform
from repro.training.history import EpochRecord, TrainingHistory
from repro.training.metrics import evaluate_classifier
from repro.training.optim import build_optimizer
from repro.training.schedules import ConstantLR, LRSchedule
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, new_rng

logger = get_logger("repro.training.bp")


@dataclass
class BPConfig:
    """Configuration of a backpropagation training run."""

    epochs: int = 10
    batch_size: int = 32
    lr: float = 0.01
    optimizer: str = "sgd"
    momentum: float = 0.9
    weight_decay: float = 0.0
    gradient_transform: Optional[GradientTransform] = None
    int8_forward: bool = False
    quantize_backward_signal: Optional[bool] = None
    quant_config: QuantConfig = field(default_factory=QuantConfig)
    lr_schedule: Optional[LRSchedule] = None
    evaluate_every: int = 1
    divergence_loss_threshold: float = 50.0
    seed: int = 0

    def algorithm_name(self) -> str:
        """Human-readable algorithm label (matches the paper's table rows)."""
        transform = self.gradient_transform
        if transform is None or transform.name == "fp32":
            return "BP-FP32"
        return f"BP-{transform.name.upper().replace('INT8-DIRECT', 'INT8')}"


class BPTrainer:
    """Mini-batch SGD/Adam trainer with pluggable gradient quantization."""

    def __init__(self, config: Optional[BPConfig] = None) -> None:
        self.config = config if config is not None else BPConfig()

    # ------------------------------------------------------------------ #
    def fit(
        self,
        bundle: ModelBundle,
        train_set: ArrayDataset,
        test_set: Optional[ArrayDataset] = None,
        rng: RngLike = None,
    ) -> TrainingHistory:
        """Train the bundle's end-to-end model and return the metric history."""
        config = self.config
        rng = new_rng(rng if rng is not None else config.seed)
        model = bundle.bp_model()
        model.train()
        model.set_activation_caching(True)
        if config.int8_forward:
            prepare_int8(model, config.quant_config, seed=config.seed)

        # INT8 BP baselines quantize the error signal that flows backward
        # between layers; this is the path along which quantization error
        # accumulates with depth (Section IV-A of the paper).
        quantize_signal = config.quantize_backward_signal
        if quantize_signal is None:
            quantize_signal = (
                config.int8_forward and config.gradient_transform is not None
            )
        if quantize_signal and config.gradient_transform is not None:
            transform = config.gradient_transform
            model.inter_layer_grad_transform = (
                lambda grad: transform("backward_signal", grad)
            )

        optimizer = self._build_optimizer(model)
        schedule = config.lr_schedule or ConstantLR(config.lr)
        loss_fn = CrossEntropyLoss(train_set.num_classes)
        loader = DataLoader(
            train_set, batch_size=config.batch_size, shuffle=True, rng=rng
        )
        transform = config.gradient_transform

        history = TrainingHistory(
            algorithm=config.algorithm_name(),
            model_name=bundle.name,
            dataset_name=train_set.name,
            metadata={
                "epochs": config.epochs,
                "batch_size": config.batch_size,
                "lr": config.lr,
                "int8_forward": config.int8_forward,
            },
        )

        for epoch in range(config.epochs):
            optimizer.set_lr(schedule.lr_at(epoch))
            epoch_loss, epoch_acc, diverged = self._run_epoch(
                model, loader, loss_fn, optimizer, transform, bundle.flatten_input
            )
            test_acc = None
            if test_set is not None and (epoch + 1) % config.evaluate_every == 0:
                _, test_acc = evaluate_classifier(
                    model,
                    test_set,
                    batch_size=config.batch_size,
                    flatten_input=bundle.flatten_input,
                )
            history.append(
                EpochRecord(
                    epoch=epoch + 1,
                    train_loss=epoch_loss,
                    train_accuracy=epoch_acc,
                    test_accuracy=test_acc,
                    lr=optimizer.lr,
                )
            )
            if diverged:
                history.diverged = True
            logger.debug(
                "%s epoch %d: loss=%.4f train_acc=%.3f test_acc=%s",
                history.algorithm,
                epoch + 1,
                epoch_loss,
                epoch_acc,
                f"{test_acc:.3f}" if test_acc is not None else "n/a",
            )

        history.metadata["trained_model"] = model
        return history

    # ------------------------------------------------------------------ #
    def _build_optimizer(self, model):
        config = self.config
        kwargs = {}
        if config.optimizer.lower() == "sgd":
            kwargs = {
                "momentum": config.momentum,
                "weight_decay": config.weight_decay,
            }
        elif config.weight_decay:
            kwargs = {"weight_decay": config.weight_decay}
        return build_optimizer(
            config.optimizer, model.parameters(), lr=config.lr, **kwargs
        )

    def _run_epoch(
        self, model, loader, loss_fn, optimizer, transform, flatten_input
    ) -> tuple[float, float, bool]:
        config = self.config
        total_loss = 0.0
        total_correct = 0.0
        total_samples = 0
        diverged = False
        for images, labels in loader:
            inputs = images.reshape(images.shape[0], -1) if flatten_input else images
            logits = model(inputs)
            loss, grad_logits = loss_fn(logits, labels)
            if not np.isfinite(loss) or loss > config.divergence_loss_threshold:
                diverged = True
            optimizer.zero_grad()
            model.backward(grad_logits)
            if transform is not None:
                transform.reset()
                for name, param in model.named_parameters():
                    if param.grad is not None:
                        param.grad = transform(name, param.grad)
                optimizer.set_lr_scale(transform.lr_scale())
            optimizer.step()
            model.clear_cache()

            total_loss += loss * labels.shape[0]
            total_correct += accuracy(logits, labels) * labels.shape[0]
            total_samples += labels.shape[0]
        if total_samples == 0:
            return 0.0, 0.0, diverged
        return total_loss / total_samples, total_correct / total_samples, diverged
