"""Training-run records shared by every trainer in the repository."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class EpochRecord:
    """Metrics of a single training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    test_accuracy: Optional[float] = None
    lr: Optional[float] = None
    lambda_value: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Per-epoch metric trajectory for one training run."""

    algorithm: str
    model_name: str
    dataset_name: str
    records: List[EpochRecord] = field(default_factory=list)
    diverged: bool = False
    metadata: Dict[str, object] = field(default_factory=dict)

    def append(self, record: EpochRecord) -> None:
        """Add a completed epoch to the trajectory."""
        self.records.append(record)

    # ------------------------------------------------------------------ #
    @property
    def num_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.records)

    @property
    def train_losses(self) -> List[float]:
        """Training-loss curve."""
        return [record.train_loss for record in self.records]

    @property
    def train_accuracies(self) -> List[float]:
        """Training-accuracy curve."""
        return [record.train_accuracy for record in self.records]

    @property
    def test_accuracies(self) -> List[float]:
        """Test-accuracy curve (entries may be ``None`` if not evaluated)."""
        return [record.test_accuracy for record in self.records]

    @property
    def final_test_accuracy(self) -> Optional[float]:
        """Last recorded test accuracy."""
        for record in reversed(self.records):
            if record.test_accuracy is not None:
                return record.test_accuracy
        return None

    @property
    def best_test_accuracy(self) -> Optional[float]:
        """Best test accuracy over the run."""
        values = [r.test_accuracy for r in self.records if r.test_accuracy is not None]
        return max(values) if values else None

    def epochs_to_accuracy(self, target: float) -> Optional[int]:
        """First epoch (1-based) whose test accuracy reaches ``target``.

        Used to compare convergence speed with and without look-ahead
        (Figure 6); returns ``None`` if the target is never reached.
        """
        for record in self.records:
            if record.test_accuracy is not None and record.test_accuracy >= target:
                return record.epoch
        return None

    def as_dict(self) -> dict:
        """JSON-serializable summary.

        Metadata entries holding live Python objects (trained models, FF
        units, classifiers) are dropped; only plain values are exported.
        """
        import json

        metadata = {}
        for key, value in self.metadata.items():
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                continue
            metadata[key] = value
        return {
            "algorithm": self.algorithm,
            "model": self.model_name,
            "dataset": self.dataset_name,
            "num_epochs": self.num_epochs,
            "diverged": self.diverged,
            "final_test_accuracy": self.final_test_accuracy,
            "best_test_accuracy": self.best_test_accuracy,
            "train_losses": self.train_losses,
            "test_accuracies": self.test_accuracies,
            "metadata": metadata,
        }
