"""Backpropagation-based trainers and shared training infrastructure.

The Forward-Forward trainers (the paper's contribution) live in
:mod:`repro.core`; this package provides the baselines they are compared
against (BP-FP32, BP-INT8, BP-UI8, BP-GDAI8) plus optimizers, schedules,
gradient-quantization transforms, metrics and run histories.
"""

from repro.training.algorithms import (
    ALL_ALGORITHMS,
    BP_ALGORITHMS,
    BP_FP32,
    BP_GDAI8,
    BP_INT8,
    BP_UI8,
    FF_INT8,
    algorithm_properties,
    make_bp_config,
    make_trainer,
)
from repro.training.bp import BPConfig, BPTrainer
from repro.training.gradient_transforms import (
    DirectInt8Gradient,
    GDAI8Gradient,
    GradientTransform,
    UI8Gradient,
    build_gradient_transform,
)
from repro.training.history import EpochRecord, TrainingHistory
from repro.training.metrics import evaluate_classifier, prediction_entropy
from repro.training.optim import SGD, Adam, Optimizer, build_optimizer
from repro.training.schedules import (
    ConstantLR,
    ConstantLambda,
    CosineLR,
    LambdaSchedule,
    LinearLambda,
    LRSchedule,
    StepLR,
)

__all__ = [
    "BPTrainer",
    "BPConfig",
    "TrainingHistory",
    "EpochRecord",
    "GradientTransform",
    "DirectInt8Gradient",
    "UI8Gradient",
    "GDAI8Gradient",
    "build_gradient_transform",
    "Optimizer",
    "SGD",
    "Adam",
    "build_optimizer",
    "LRSchedule",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "LambdaSchedule",
    "ConstantLambda",
    "LinearLambda",
    "evaluate_classifier",
    "prediction_entropy",
    "make_trainer",
    "make_bp_config",
    "algorithm_properties",
    "ALL_ALGORITHMS",
    "BP_ALGORITHMS",
    "BP_FP32",
    "BP_INT8",
    "BP_UI8",
    "BP_GDAI8",
    "FF_INT8",
]
