"""Look-ahead gradient computation (Section IV-C, Equations 3–4).

The look-ahead scheme redefines the loss of layer *i* as

    ``L_new,i = L_i + λ · (L_{i+1} + … + L_final)``

so that earlier layers receive feedback from later ones.  Differentiating and
using the fact that losses of *earlier* layers do not depend on the weights of
layer *i*, the weight gradient can be rewritten as

    ``∂L_new,i/∂W_i = (1 − λ) · ∂L_i/∂W_i + λ · ∂S/∂W_i``

where ``S = Σ_j L_j`` is the sum of **all** per-layer losses.  The second term
is computable for every layer simultaneously with a single sweep that injects
each layer's local activity gradient at its output and propagates downward —
one forward pass and one gradient sweep per mini-batch, which is how
Algorithm 1 keeps the cost at ``k × n`` derivative computations.

Two modes are exposed (see DESIGN.md §5):

* ``"chained"`` — the exact decomposition above (default; reproduces the
  accuracy behaviour of Figure 6).
* ``"local"``  — cross-layer terms dropped (``∂L_j/∂W_i ≈ 0`` for ``j ≠ i``);
  every layer still updates from the shared forward pass, which is the
  literal cost claim in the paper's text.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.goodness import GoodnessFunction
from repro.core.losses import FFLoss
from repro.nn.module import Module
from repro.runtime.executor import forward_through_units

LOOKAHEAD_MODES = ("chained", "local")


def unit_losses_and_grads(
    activations: Sequence[np.ndarray],
    goodness: GoodnessFunction,
    ff_loss: FFLoss,
    positive: bool,
) -> tuple[List[float], List[np.ndarray]]:
    """Per-unit mean losses and activity gradients ``∂L_i/∂y_i``.

    The activity gradient is the tensor FF-INT8 quantizes to INT8 before the
    weight-gradient GEMM (``g_Y`` in Figure 4 of the paper).
    """
    losses: List[float] = []
    grads: List[np.ndarray] = []
    for activity in activations:
        value = goodness.value(activity)
        losses.append(ff_loss.mean_loss(value, positive))
        grads.append(ff_loss.activity_grad(activity, goodness.grad, value, positive))
    return losses, grads


def accumulate_local_gradients(
    units: Sequence[Module],
    activity_grads: Sequence[np.ndarray],
    scale: float = 1.0,
) -> None:
    """Accumulate each unit's own-loss weight gradients (no cross-layer terms)."""
    if scale == 0.0:
        return
    for unit, grad in zip(units, activity_grads):
        unit.backward(grad if scale == 1.0 else grad * scale)


def accumulate_chained_gradients(
    units: Sequence[Module],
    activity_grads: Sequence[np.ndarray],
    scale: float = 1.0,
) -> None:
    """Accumulate ``scale · ∂S/∂W`` for every unit with one downward sweep.

    ``S`` is the sum of all per-unit losses; the sweep starts at the deepest
    unit and injects each unit's local activity gradient on the way down.
    """
    if scale == 0.0:
        return
    upstream: Optional[np.ndarray] = None
    for unit, grad in zip(reversed(list(units)), reversed(list(activity_grads))):
        total = grad if upstream is None else grad + upstream
        if scale != 1.0:
            total = total * scale if upstream is None else grad * scale + upstream
        upstream = unit.backward(total)


def accumulate_lookahead_gradients(
    units: Sequence[Module],
    activity_grads: Sequence[np.ndarray],
    lam: float,
    mode: str = "chained",
) -> None:
    """Accumulate the look-ahead weight gradients for every unit.

    Parameters
    ----------
    units:
        FF units in forward order; their forward pass for the current batch
        must already have run with activation caching enabled.
    activity_grads:
        ``∂L_i/∂y_i`` for each unit (from :func:`unit_losses_and_grads`).
    lam:
        Look-ahead coefficient λ.  ``lam == 0`` reduces to plain layer-local
        FF updates regardless of mode.
    mode:
        ``"chained"`` for the exact Equation 4 gradient, ``"local"`` to drop
        cross-layer terms.
    """
    if mode not in LOOKAHEAD_MODES:
        raise ValueError(
            f"unknown look-ahead mode {mode!r}; expected one of {LOOKAHEAD_MODES}"
        )
    if not 0.0 <= lam <= 1.0:
        raise ValueError(f"lambda must lie in [0, 1], got {lam}")
    if len(units) != len(activity_grads):
        raise ValueError(
            f"got {len(units)} units but {len(activity_grads)} activity gradients"
        )

    if mode == "local" or lam == 0.0:
        accumulate_local_gradients(units, activity_grads, scale=1.0)
        return

    # Exact decomposition: (1 - λ) · local + λ · full-sum sweep.
    local_part: Dict[int, np.ndarray] = {}
    if lam < 1.0:
        accumulate_local_gradients(units, activity_grads, scale=1.0)
        for unit in units:
            for param in unit.parameters():
                if param.grad is not None:
                    local_part[id(param)] = (1.0 - lam) * param.grad
                    param.grad = None

    accumulate_chained_gradients(units, activity_grads, scale=1.0)
    for unit in units:
        for param in unit.parameters():
            if param.grad is not None:
                param.grad = lam * param.grad
            if id(param) in local_part:
                if param.grad is None:
                    param.grad = local_part[id(param)].copy()
                else:
                    param.grad += local_part[id(param)]
