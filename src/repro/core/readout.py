"""Softmax readout head for Forward-Forward trained networks.

Goodness-based classification (label probing) needs one forward pass per
candidate label, which multiplies inference cost by the number of classes.
Hinton (2022) proposes the alternative used here: freeze the FF-trained
layers, feed inputs with a *neutral* label overlay, and train a small softmax
classifier on the concatenated (length-normalized) hidden activities.  This
gives single-pass inference and usually slightly higher accuracy, at the cost
of one extra linear layer — it is the natural deployment companion to
FF-INT8 on edge devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.data.overlay import LabelOverlay
from repro.nn.functional import l2_normalize
from repro.nn.linear import Linear
from repro.nn.losses import CrossEntropyLoss, accuracy
from repro.nn.module import Module
from repro.runtime.executor import PlanExecutor
from repro.training.optim import SGD
from repro.utils.rng import RngLike, new_rng


@dataclass
class ReadoutConfig:
    """Training configuration of the softmax readout head."""

    epochs: int = 20
    batch_size: int = 64
    lr: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 1e-4
    skip_first_layer: Optional[bool] = None
    normalize_features: bool = True
    seed: int = 0


class SoftmaxReadout:
    """Linear softmax classifier over frozen FF-layer activities."""

    def __init__(
        self,
        units: Sequence[Module],
        overlay: LabelOverlay,
        num_classes: int,
        flatten_input: bool = False,
        config: Optional[ReadoutConfig] = None,
    ) -> None:
        if not units:
            raise ValueError("readout needs at least one trained FF unit")
        self.units = list(units)
        self.overlay = overlay
        self.num_classes = num_classes
        self.flatten_input = flatten_input
        self.config = config if config is not None else ReadoutConfig()
        skip = self.config.skip_first_layer
        self.skip_first_layer = (len(self.units) >= 2) if skip is None else skip
        self.head: Optional[Linear] = None
        self._feature_dim: Optional[int] = None
        self.executor = PlanExecutor.for_units(
            self.units, flatten_input=flatten_input
        )

    # ------------------------------------------------------------------ #
    def features(self, inputs: np.ndarray) -> np.ndarray:
        """Concatenated hidden activities for a batch of raw inputs.

        Inputs get the neutral (uniform) label overlay so that no label
        information leaks into the representation.
        """
        overlaid = self.overlay.neutral(inputs)
        with self.executor.inference_mode():
            activations = self.executor.unit_outputs(overlaid)
        collected: List[np.ndarray] = []
        for index, hidden in enumerate(activations):
            if self.skip_first_layer and index == 0:
                continue
            flat = hidden.reshape(hidden.shape[0], -1)
            if self.config.normalize_features:
                flat = l2_normalize(flat, axis=1)
            collected.append(flat)
        return np.concatenate(collected, axis=1).astype(np.float32)

    # ------------------------------------------------------------------ #
    def fit(self, dataset: ArrayDataset, rng: RngLike = None) -> List[float]:
        """Train the readout head on ``dataset``; returns per-epoch losses."""
        config = self.config
        rng = new_rng(rng if rng is not None else config.seed)
        sample_features = self.features(dataset.images[:1])
        self._feature_dim = sample_features.shape[1]
        self.head = Linear(self._feature_dim, self.num_classes, rng=rng)
        optimizer = SGD(
            self.head.parameters(), lr=config.lr, momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        loss_fn = CrossEntropyLoss(self.num_classes)
        loader = DataLoader(dataset, batch_size=config.batch_size, shuffle=True,
                            rng=rng)
        epoch_losses: List[float] = []
        for _ in range(config.epochs):
            total, count = 0.0, 0
            for images, labels in loader:
                feats = self.features(images)
                logits = self.head(feats)
                loss, grad = loss_fn(logits, labels)
                optimizer.zero_grad()
                self.head.backward(grad)
                optimizer.step()
                self.head.clear_cache()
                total += loss * labels.shape[0]
                count += labels.shape[0]
            epoch_losses.append(total / max(count, 1))
        return epoch_losses

    # ------------------------------------------------------------------ #
    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted labels for raw inputs (single forward pass)."""
        if self.head is None:
            raise RuntimeError("readout head is not trained; call fit() first")
        return np.argmax(self.head(self.features(inputs)), axis=1)

    def accuracy(self, dataset: ArrayDataset, batch_size: int = 128,
                 max_samples: Optional[int] = None) -> float:
        """Top-1 accuracy of the readout head on ``dataset``."""
        if self.head is None:
            raise RuntimeError("readout head is not trained; call fit() first")
        total = len(dataset) if max_samples is None else min(max_samples, len(dataset))
        if total == 0:
            return 0.0
        correct = 0.0
        for start in range(0, total, batch_size):
            stop = min(start + batch_size, total)
            logits = self.head(self.features(dataset.images[start:stop]))
            correct += accuracy(logits, dataset.labels[start:stop]) * (stop - start)
        return correct / total
