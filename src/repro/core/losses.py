"""Forward-Forward losses (Equations 1 and 2 of the paper).

For a layer with goodness ``G`` and threshold ``θ``:

* positive samples:  ``L_pos = log(1 + exp(-(G - θ)))`` — pushed *above* θ,
* negative samples:  ``L_neg = log(1 + exp(+(G - θ)))`` — pushed *below* θ.

Both are the negative log-likelihood of a logistic model
``p(positive) = σ(G - θ)``.  The gradients with respect to ``G`` are the
standard logistic residuals, which combined with the goodness gradient
``∂G/∂y`` give the layer-local activity gradient ``g_Y`` that FF-INT8
quantizes to INT8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.functional import sigmoid, softplus


def positive_loss(goodness: np.ndarray, theta: float) -> np.ndarray:
    """Per-sample loss on positive data (Equation 1)."""
    return softplus(-(np.asarray(goodness, dtype=np.float64) - theta)).astype(
        np.float32
    )


def negative_loss(goodness: np.ndarray, theta: float) -> np.ndarray:
    """Per-sample loss on negative data (Equation 2)."""
    return softplus(np.asarray(goodness, dtype=np.float64) - theta).astype(np.float32)


def positive_loss_grad(goodness: np.ndarray, theta: float) -> np.ndarray:
    """``∂L_pos/∂G`` per sample: ``-σ(θ - G)``."""
    return (-sigmoid(theta - np.asarray(goodness, dtype=np.float64))).astype(
        np.float32
    )


def negative_loss_grad(goodness: np.ndarray, theta: float) -> np.ndarray:
    """``∂L_neg/∂G`` per sample: ``σ(G - θ)``."""
    return sigmoid(np.asarray(goodness, dtype=np.float64) - theta).astype(np.float32)


@dataclass
class FFLoss:
    """Bundles the positive/negative FF losses for a fixed threshold θ."""

    theta: float = 2.0

    def loss(self, goodness: np.ndarray, positive: bool) -> np.ndarray:
        """Per-sample loss for a batch of goodness values."""
        if positive:
            return positive_loss(goodness, self.theta)
        return negative_loss(goodness, self.theta)

    def loss_grad(self, goodness: np.ndarray, positive: bool) -> np.ndarray:
        """Per-sample ``∂L/∂G``."""
        if positive:
            return positive_loss_grad(goodness, self.theta)
        return negative_loss_grad(goodness, self.theta)

    def mean_loss(self, goodness: np.ndarray, positive: bool) -> float:
        """Batch-mean loss (the quantity reported per epoch)."""
        return float(np.mean(self.loss(goodness, positive)))

    def activity_grad(
        self,
        activity: np.ndarray,
        goodness_grad_fn,
        goodness: np.ndarray,
        positive: bool,
    ) -> np.ndarray:
        """Gradient of the batch-mean loss w.r.t. the layer activity ``y``.

        ``∂L/∂y = (1/N) * ∂L/∂G * ∂G/∂y`` — the per-layer gradient ``g_Y``
        of Figure 4, before INT8 quantization.
        """
        batch = activity.shape[0]
        per_sample = self.loss_grad(goodness, positive) / float(batch)
        broadcast_shape = (batch,) + (1,) * (activity.ndim - 1)
        return (per_sample.reshape(broadcast_shape) * goodness_grad_fn(activity)).astype(
            np.float32
        )

    def probability_positive(self, goodness: np.ndarray) -> np.ndarray:
        """``p(positive) = σ(G - θ)`` — used by diagnostics and tests."""
        return sigmoid(np.asarray(goodness, dtype=np.float64) - self.theta).astype(
            np.float32
        )
