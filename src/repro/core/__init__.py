"""FF-INT8 core: the paper's primary contribution.

Contains the goodness functions, the Forward-Forward losses (Equations 1–2),
the look-ahead gradient machinery (Equations 3–4, Algorithm 1), the trainers
(vanilla FF, FF-INT8, FF-INT8 + look-ahead) and goodness-based classification.
"""

from repro.core.checkpoint import (
    FFCheckpoint,
    load_ff_checkpoint,
    restore_classifier,
    restore_units,
    save_ff_checkpoint,
)
from repro.core.classifier import FFGoodnessClassifier
from repro.core.ff_int8 import (
    FFInt8Config,
    FFInt8Trainer,
    ff_fp32,
    ff_int8_vanilla,
    ff_int8_with_lookahead,
)
from repro.core.ff_trainer import FFConfig, ForwardForwardTrainer
from repro.core.goodness import (
    GoodnessFunction,
    MeanSquaredGoodness,
    SumSquaredGoodness,
    build_goodness,
)
from repro.core.lookahead import (
    LOOKAHEAD_MODES,
    accumulate_chained_gradients,
    accumulate_local_gradients,
    accumulate_lookahead_gradients,
    forward_through_units,
    unit_losses_and_grads,
)
from repro.core.losses import (
    FFLoss,
    negative_loss,
    negative_loss_grad,
    positive_loss,
    positive_loss_grad,
)
from repro.core.readout import ReadoutConfig, SoftmaxReadout

__all__ = [
    "FFConfig",
    "ForwardForwardTrainer",
    "FFInt8Config",
    "FFInt8Trainer",
    "ff_int8_with_lookahead",
    "ff_int8_vanilla",
    "ff_fp32",
    "FFGoodnessClassifier",
    "GoodnessFunction",
    "SumSquaredGoodness",
    "MeanSquaredGoodness",
    "build_goodness",
    "FFLoss",
    "positive_loss",
    "negative_loss",
    "positive_loss_grad",
    "negative_loss_grad",
    "forward_through_units",
    "unit_losses_and_grads",
    "accumulate_local_gradients",
    "accumulate_chained_gradients",
    "accumulate_lookahead_gradients",
    "LOOKAHEAD_MODES",
    "SoftmaxReadout",
    "ReadoutConfig",
    "FFCheckpoint",
    "save_ff_checkpoint",
    "load_ff_checkpoint",
    "restore_units",
    "restore_classifier",
]
