"""FF-INT8 entry points: the paper's proposed training algorithm.

``FFInt8Trainer`` is the configuration of :class:`ForwardForwardTrainer`
evaluated in the paper: INT8 forward and weight-gradient GEMMs (symmetric
uniform quantization with stochastic rounding, INT32 accumulation), the
simultaneous one-forward-pass-per-epoch schedule of Algorithm 1, and the
"look-ahead" loss with λ ramped from 0 by 0.001 per epoch.

``ff_int8_vanilla`` returns the ablation without look-ahead used by
Figure 6's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.ff_trainer import FFConfig, ForwardForwardTrainer
from repro.quant.qconfig import QuantConfig
from repro.training.schedules import LambdaSchedule, LinearLambda


@dataclass
class FFInt8Config(FFConfig):
    """FF-INT8 defaults: INT8 execution + look-ahead (Sections IV-B/IV-C)."""

    epochs: int = 60
    lr: float = 0.02
    theta: float = 2.0
    int8: bool = True
    lookahead: bool = True
    lookahead_mode: str = "chained"
    lambda_schedule: Optional[LambdaSchedule] = None
    quant_config: QuantConfig = field(
        default_factory=lambda: QuantConfig(bits=8, rounding="stochastic")
    )

    def __post_init__(self) -> None:
        if self.lambda_schedule is None and self.lookahead:
            # Paper Section V-A3: λ starts at 0 and grows by 0.001 per epoch.
            self.lambda_schedule = LinearLambda(initial=0.0, increment=0.001)
        super().__post_init__()

    def algorithm_name(self) -> str:
        return "FF-INT8" if self.lookahead else "FF-INT8 (no look-ahead)"


class FFInt8Trainer(ForwardForwardTrainer):
    """Forward-Forward INT8 trainer with look-ahead (the paper's algorithm)."""

    def __init__(self, config: Optional[FFInt8Config] = None, **overrides) -> None:
        if config is None:
            config = FFInt8Config(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides")
        super().__init__(config)


def ff_int8_with_lookahead(**overrides) -> FFInt8Trainer:
    """FF-INT8 with the look-ahead scheme (the algorithm of Table V)."""
    overrides.setdefault("lookahead", True)
    return FFInt8Trainer(FFInt8Config(**overrides))


def ff_int8_vanilla(**overrides) -> FFInt8Trainer:
    """FF-INT8 without look-ahead (the ablation baseline of Figure 6)."""
    overrides.setdefault("lookahead", False)
    overrides.setdefault("lambda_schedule", None)
    return FFInt8Trainer(FFInt8Config(**overrides))


def ff_fp32(**overrides) -> ForwardForwardTrainer:
    """Full-precision Forward-Forward trainer (Hinton 2022 baseline)."""
    overrides.setdefault("int8", False)
    overrides.setdefault("lookahead", False)
    return ForwardForwardTrainer(FFConfig(**overrides))
