"""Goodness functions for Forward-Forward training.

The goodness of a layer quantifies how "excited" the layer is about its input
(Section III of the paper).  The standard choice — used by the paper and by
Hinton's original formulation — is the sum of squared neural activities; a
mean-squared variant is provided because it keeps the goodness scale
independent of layer width, which is convenient when mixing layers of very
different sizes in the look-ahead objective.
"""

from __future__ import annotations

import numpy as np


class GoodnessFunction:
    """Interface: per-sample goodness value and its gradient w.r.t. activity."""

    name = "goodness"

    def value(self, activity: np.ndarray) -> np.ndarray:
        """Per-sample goodness, shape ``(N,)`` for activity ``(N, ...)``."""
        raise NotImplementedError

    def grad(self, activity: np.ndarray) -> np.ndarray:
        """Gradient of the per-sample goodness w.r.t. the activity tensor."""
        raise NotImplementedError


class SumSquaredGoodness(GoodnessFunction):
    """``G(y) = sum_i y_i^2`` over all non-batch dimensions (paper default)."""

    name = "sum_squares"

    def value(self, activity: np.ndarray) -> np.ndarray:
        flat = activity.reshape(activity.shape[0], -1)
        return np.sum(flat * flat, axis=1).astype(np.float32)

    def grad(self, activity: np.ndarray) -> np.ndarray:
        return (2.0 * activity).astype(np.float32)


class MeanSquaredGoodness(GoodnessFunction):
    """``G(y) = mean_i y_i^2`` — width-normalized goodness.

    Dividing by the number of units keeps θ meaningful across layers of
    different sizes (e.g. a 64-channel conv block vs a 512-unit dense layer),
    which stabilizes the look-ahead objective for the convolutional models.
    """

    name = "mean_squares"

    def value(self, activity: np.ndarray) -> np.ndarray:
        flat = activity.reshape(activity.shape[0], -1)
        return np.mean(flat * flat, axis=1).astype(np.float32)

    def grad(self, activity: np.ndarray) -> np.ndarray:
        width = float(np.prod(activity.shape[1:]))
        return (2.0 * activity / width).astype(np.float32)


_GOODNESS_REGISTRY = {
    SumSquaredGoodness.name: SumSquaredGoodness,
    MeanSquaredGoodness.name: MeanSquaredGoodness,
}


def build_goodness(name: str) -> GoodnessFunction:
    """Instantiate a goodness function by name."""
    if name not in _GOODNESS_REGISTRY:
        raise ValueError(
            f"unknown goodness function {name!r}; "
            f"available: {sorted(_GOODNESS_REGISTRY)}"
        )
    return _GOODNESS_REGISTRY[name]()
