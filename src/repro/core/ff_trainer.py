"""Forward-Forward trainer (FP32 or INT8, greedy or simultaneous, ± look-ahead).

One engine drives every FF variant discussed in the paper:

* vanilla FF (Hinton 2022): greedy layer-by-layer training, FP32;
* FF-INT8 (Section IV-B): the same greedy strategy with INT8 forward and
  weight-gradient GEMMs and INT8-quantized activity gradients;
* FF-INT8 with "look-ahead" (Section IV-C, Algorithm 1): one full forward
  pass per mini-batch, all layers updated simultaneously with the
  λ-augmented loss.

The configuration object selects the variant; :mod:`repro.core.ff_int8`
provides the pre-configured FF-INT8 entry points used by the benchmarks.

Forward passes execute through the compiled plan of :mod:`repro.runtime`
(one :class:`~repro.runtime.executor.PlanExecutor` per fit, kernel backend
selectable via ``FFConfig.backend``); the backward sweep walks the unit
modules whose caches the plan filled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.classifier import FFGoodnessClassifier
from repro.core.goodness import GoodnessFunction, build_goodness
from repro.core.lookahead import (
    accumulate_lookahead_gradients,
    unit_losses_and_grads,
)
from repro.core.losses import FFLoss
from repro.data.dataset import ArrayDataset, DataLoader
from repro.data.overlay import LabelOverlay
from repro.models.base import ModelBundle
from repro.nn.module import Module
from repro.quant.prepare import prepare_int8
from repro.quant.qconfig import QuantConfig
from repro.runtime import dispatch
from repro.runtime.executor import PlanExecutor
from repro.training.history import EpochRecord, TrainingHistory
from repro.training.optim import Optimizer, build_optimizer
from repro.training.schedules import ConstantLambda, LambdaSchedule, LinearLambda
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, new_rng

logger = get_logger("repro.core.ff")


@dataclass
class FFConfig:
    """Configuration of a Forward-Forward training run."""

    epochs: int = 60
    batch_size: int = 32
    lr: float = 0.02
    optimizer: str = "adam"
    theta: float = 2.0
    goodness: str = "sum_squares"
    overlay_amplitude: float = 1.0
    int8: bool = False
    quant_config: QuantConfig = field(default_factory=QuantConfig)
    lookahead: bool = False
    lookahead_mode: str = "chained"
    lambda_schedule: Optional[LambdaSchedule] = None
    train_schedule: str = "simultaneous"
    epochs_per_layer: Optional[int] = None
    evaluate_every: int = 1
    eval_max_samples: Optional[int] = 256
    train_eval_max_samples: Optional[int] = 128
    seed: int = 0
    backend: Optional[str] = None
    pins: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.backend is not None:
            dispatch.get_backend(self.backend)  # fail fast on typos
        if self.pins:
            # A spec mapping, or "auto" to resolve each layer's backend
            # from measured timings at plan-compile time.
            from repro.runtime.plan import validate_pins

            validate_pins(self.pins)
        if self.train_schedule not in ("simultaneous", "greedy"):
            raise ValueError(
                "train_schedule must be 'simultaneous' or 'greedy', "
                f"got {self.train_schedule!r}"
            )
        if self.lookahead and self.train_schedule == "greedy":
            raise ValueError(
                "look-ahead requires the simultaneous schedule (Algorithm 1); "
                "greedy layer-by-layer training cannot see later layers"
            )
        if self.lambda_schedule is None:
            self.lambda_schedule = (
                LinearLambda(initial=0.0, increment=0.001)
                if self.lookahead
                else ConstantLambda(0.0)
            )

    def algorithm_name(self) -> str:
        """Human-readable algorithm label."""
        precision = "INT8" if self.int8 else "FP32"
        suffix = "+LA" if self.lookahead else ""
        return f"FF-{precision}{suffix}"


class ForwardForwardTrainer:
    """Trains a :class:`ModelBundle`'s FF units with the Forward-Forward rule."""

    def __init__(self, config: Optional[FFConfig] = None) -> None:
        self.config = config if config is not None else FFConfig()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def fit(
        self,
        bundle: ModelBundle,
        train_set: ArrayDataset,
        test_set: Optional[ArrayDataset] = None,
        rng: RngLike = None,
    ) -> TrainingHistory:
        """Train the bundle's FF units; returns the per-epoch history.

        The returned history's metadata contains the trained units and the
        goodness classifier, so callers can run further evaluation.
        """
        config = self.config
        rng = new_rng(rng if rng is not None else config.seed)
        units = bundle.ff_units()
        if config.int8:
            for index, unit in enumerate(units):
                prepare_int8(unit, config.quant_config, seed=config.seed + index)

        goodness = build_goodness(config.goodness)
        ff_loss = FFLoss(theta=config.theta)
        overlay = LabelOverlay(
            num_classes=train_set.num_classes, amplitude=config.overlay_amplitude
        )
        classifier = FFGoodnessClassifier(
            units, overlay, goodness=goodness, flatten_input=bundle.flatten_input,
            backend=config.backend, pins=config.pins,
            auto_rows=config.batch_size,
        )
        # One compiled plan drives every training forward pass; the backward
        # sweep still walks the unit modules, whose caches the plan filled.
        # Auto pins resolve at the training batch height, not the serving
        # default.
        executor = PlanExecutor.for_units(
            units, backend=config.backend, pins=config.pins,
            auto_rows=config.batch_size,
        )
        optimizers = self._build_optimizers(units)

        history = TrainingHistory(
            algorithm=config.algorithm_name(),
            model_name=bundle.name,
            dataset_name=train_set.name,
            metadata={
                "epochs": config.epochs,
                "batch_size": config.batch_size,
                "lr": config.lr,
                "theta": config.theta,
                "lookahead": config.lookahead,
                "lookahead_mode": config.lookahead_mode,
                "train_schedule": config.train_schedule,
                "int8": config.int8,
            },
        )

        with dispatch.use_backend(config.backend):
            if config.train_schedule == "greedy":
                self._fit_greedy(
                    executor, units, optimizers, goodness, ff_loss, overlay,
                    classifier, bundle, train_set, test_set, history, rng,
                )
            else:
                self._fit_simultaneous(
                    executor, units, optimizers, goodness, ff_loss, overlay,
                    classifier, bundle, train_set, test_set, history, rng,
                )

        history.metadata["units"] = units
        history.metadata["classifier"] = classifier
        return history

    # ------------------------------------------------------------------ #
    # simultaneous schedule (Algorithm 1)
    # ------------------------------------------------------------------ #
    def _fit_simultaneous(
        self, executor, units, optimizers, goodness, ff_loss, overlay,
        classifier, bundle, train_set, test_set, history, rng,
    ) -> None:
        config = self.config
        loader = DataLoader(
            train_set, batch_size=config.batch_size, shuffle=True, rng=rng
        )
        for epoch in range(config.epochs):
            lam = config.lambda_schedule.value_at(epoch)
            epoch_losses: List[float] = []
            for images, labels in loader:
                inputs = self._prepare_inputs(images, bundle)
                pos = overlay.positive(inputs, labels)
                neg, _ = overlay.negative(inputs, labels, rng=rng)
                loss = self._train_step_all_layers(
                    executor, units, optimizers, goodness, ff_loss, pos, neg,
                    lam,
                )
                epoch_losses.append(loss)
            self._record_epoch(
                history, classifier, train_set, test_set, epoch,
                float(np.mean(epoch_losses)) if epoch_losses else 0.0, lam,
            )

    def _train_step_all_layers(
        self, executor, units, optimizers, goodness, ff_loss, pos_batch,
        neg_batch, lam,
    ) -> float:
        """One combined positive + negative mini-batch update of every layer.

        Gradients from the positive pass (raise goodness above θ) and the
        negative pass (push goodness below θ) are accumulated before a single
        optimizer step, so neither objective can run away and collapse the
        layer activities — the same balanced update used by reference FF
        implementations.
        """
        config = self.config
        for unit in units:
            unit.train()
            unit.set_activation_caching(True)
        for optimizer in optimizers:
            optimizer.zero_grad()

        step_losses: List[float] = []
        for positive, batch in ((True, pos_batch), (False, neg_batch)):
            activations = executor.unit_outputs(batch)
            losses, activity_grads = unit_losses_and_grads(
                activations, goodness, ff_loss, positive
            )
            if config.lookahead:
                accumulate_lookahead_gradients(
                    units, activity_grads, lam, mode=config.lookahead_mode
                )
            else:
                accumulate_lookahead_gradients(
                    units, activity_grads, 0.0, mode="local"
                )
            step_losses.append(float(np.mean(losses)))
            for unit in units:
                unit.clear_cache()

        for optimizer in optimizers:
            optimizer.step()
        return float(np.mean(step_losses))

    # ------------------------------------------------------------------ #
    # greedy schedule (vanilla FF / FF-INT8 without look-ahead)
    # ------------------------------------------------------------------ #
    def _fit_greedy(
        self, executor, units, optimizers, goodness, ff_loss, overlay,
        classifier, bundle, train_set, test_set, history, rng,
    ) -> None:
        config = self.config
        epochs_per_layer = config.epochs_per_layer or max(
            1, config.epochs // max(len(units), 1)
        )
        loader = DataLoader(
            train_set, batch_size=config.batch_size, shuffle=True, rng=rng
        )
        global_epoch = 0
        for layer_index, (unit, optimizer) in enumerate(zip(units, optimizers)):
            for _ in range(epochs_per_layer):
                epoch_losses: List[float] = []
                for images, labels in loader:
                    inputs = self._prepare_inputs(images, bundle)
                    pos = overlay.positive(inputs, labels)
                    neg, _ = overlay.negative(inputs, labels, rng=rng)
                    loss = self._train_step_single_layer(
                        executor, units, layer_index, unit, optimizer,
                        goodness, ff_loss, pos, neg,
                    )
                    epoch_losses.append(loss)
                self._record_epoch(
                    history, classifier, train_set, test_set, global_epoch,
                    float(np.mean(epoch_losses)) if epoch_losses else 0.0,
                    lam=0.0, extra={"layer": float(layer_index)},
                )
                global_epoch += 1

    def _train_step_single_layer(
        self, executor, units, layer_index, unit, optimizer, goodness,
        ff_loss, pos_batch, neg_batch,
    ) -> float:
        """Greedy update of one layer; earlier layers act as a frozen encoder.

        The shared plan runs the first ``layer_index + 1`` units; caching is
        enabled only on the unit being trained, so the frozen prefix holds no
        backward state.  As in the simultaneous schedule, the positive and
        negative gradients are accumulated into one balanced optimizer step.
        """
        unit.train()
        unit.set_activation_caching(True)
        for frozen in units[:layer_index]:
            frozen.train()
            frozen.set_activation_caching(False)
        optimizer.zero_grad()
        step_losses: List[float] = []
        for positive, batch in ((True, pos_batch), (False, neg_batch)):
            activity = executor.unit_outputs(batch, limit=layer_index + 1)[-1]
            value = goodness.value(activity)
            step_losses.append(ff_loss.mean_loss(value, positive))
            grad = ff_loss.activity_grad(activity, goodness.grad, value, positive)
            unit.backward(grad)
            unit.clear_cache()
        optimizer.step()
        return float(np.mean(step_losses))

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def _build_optimizers(self, units: Sequence[Module]) -> List[Optimizer]:
        config = self.config
        kwargs = {"momentum": 0.9} if config.optimizer.lower() == "sgd" else {}
        return [
            build_optimizer(config.optimizer, unit.parameters(), lr=config.lr, **kwargs)
            for unit in units
        ]

    def _prepare_inputs(self, images: np.ndarray, bundle: ModelBundle) -> np.ndarray:
        if bundle.flatten_input:
            return images.reshape(images.shape[0], -1)
        return images

    def _record_epoch(
        self, history, classifier, train_set, test_set, epoch, mean_loss, lam,
        extra: Optional[dict] = None,
    ) -> None:
        config = self.config
        test_acc = None
        train_acc = 0.0
        if (epoch + 1) % config.evaluate_every == 0:
            train_acc = classifier.accuracy(
                train_set, max_samples=config.train_eval_max_samples
            )
            if test_set is not None:
                test_acc = classifier.accuracy(
                    test_set, max_samples=config.eval_max_samples
                )
        history.append(
            EpochRecord(
                epoch=epoch + 1,
                train_loss=mean_loss,
                train_accuracy=train_acc,
                test_accuracy=test_acc,
                lr=config.lr,
                lambda_value=lam,
                extra=extra or {},
            )
        )
        logger.debug(
            "%s epoch %d: loss=%.4f train_acc=%.3f test_acc=%s lambda=%.4f",
            history.algorithm, epoch + 1, mean_loss, train_acc,
            f"{test_acc:.3f}" if test_acc is not None else "n/a", lam,
        )
