"""Goodness-based classification for Forward-Forward trained networks.

A network trained with FF has no softmax head.  To classify an input, every
candidate label is overlaid onto the input in turn; the network's accumulated
goodness across its hidden layers is evaluated for each overlay and the label
with the highest total goodness wins (Hinton 2022, Section III of the paper).
When the network has two or more hidden layers the first layer's goodness is
excluded from the sum — the first layer mostly encodes the overlay itself and
including it hurts discrimination (standard FF practice).

The traversal itself is a compiled :class:`~repro.runtime.plan.ExecutionPlan`
run by a :class:`~repro.runtime.executor.PlanExecutor` — the same execution
layer the trainer and the serving engine use.  The classifier probes one
label overlay at a time (``fold_labels=False``): training-time INT8 engines
quantize activations with one scale per *batch*, so folding the overlays
into the batch dimension would change the scales; the frozen serving kernels
quantize per row and use the folded form.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.goodness import GoodnessFunction, SumSquaredGoodness
from repro.data.dataset import ArrayDataset
from repro.data.overlay import LabelOverlay
from repro.nn.module import Module
from repro.runtime.dispatch import BackendLike
from repro.runtime.executor import PlanExecutor


class FFGoodnessClassifier:
    """Label-probing classifier over a stack of FF-trained units."""

    def __init__(
        self,
        units: Sequence[Module],
        overlay: LabelOverlay,
        goodness: Optional[GoodnessFunction] = None,
        flatten_input: bool = False,
        skip_first_layer: Optional[bool] = None,
        backend: BackendLike = None,
        pins: Optional[dict] = None,
        auto_rows: Optional[int] = None,
    ) -> None:
        if not units:
            raise ValueError("classifier needs at least one trained unit")
        self.units = list(units)
        self.overlay = overlay
        self.goodness = goodness if goodness is not None else SumSquaredGoodness()
        self.flatten_input = flatten_input
        if skip_first_layer is None:
            skip_first_layer = len(self.units) >= 2
        self.skip_first_layer = skip_first_layer
        self.executor = PlanExecutor.for_units(
            self.units, flatten_input=flatten_input, backend=backend, pins=pins,
            auto_rows=auto_rows,
        )

    # ------------------------------------------------------------------ #
    def goodness_matrix(self, inputs: np.ndarray) -> np.ndarray:
        """Goodness score for every (sample, candidate label) pair.

        Returns an array of shape ``(N, num_classes)``; ``predict`` is its
        row-wise argmax.
        """
        return self.executor.goodness_matrix(
            inputs, self.overlay, self.goodness, self.skip_first_layer,
            fold_labels=False,
        )

    # ------------------------------------------------------------------ #
    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted labels for a batch of raw (un-overlaid) inputs."""
        return np.argmax(self.goodness_matrix(inputs), axis=1)

    def accuracy(
        self,
        dataset: ArrayDataset,
        batch_size: int = 128,
        max_samples: Optional[int] = None,
    ) -> float:
        """Top-1 accuracy of goodness-based prediction on ``dataset``."""
        total = len(dataset) if max_samples is None else min(max_samples, len(dataset))
        if total == 0:
            return 0.0
        correct = 0
        for start in range(0, total, batch_size):
            stop = min(start + batch_size, total)
            images = dataset.images[start:stop]
            labels = dataset.labels[start:stop]
            predictions = self.predict(images)
            correct += int(np.sum(predictions == labels))
        return correct / total

    def layer_goodness_profile(self, inputs: np.ndarray) -> List[np.ndarray]:
        """Per-unit goodness values for diagnostics (one array per unit)."""
        activations = self.executor.unit_outputs(inputs)
        return [self.goodness.value(activity) for activity in activations]
