"""Checkpointing of Forward-Forward trained networks.

FF training produces a list of per-layer units rather than one end-to-end
module, so checkpoints store every unit's parameters (flattened under a
``unitN.`` prefix) together with the metadata needed to rebuild a matching
classifier: the model name, the overlay settings, the goodness function and
the threshold θ.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.core.classifier import FFGoodnessClassifier
from repro.core.ff_trainer import FFConfig
from repro.core.goodness import build_goodness
from repro.data.overlay import LabelOverlay
from repro.models.base import ModelBundle
from repro.nn.module import Module
from repro.nn.norm import _BatchNormBase
from repro.utils.serialization import (
    archive_base,
    archive_path,
    load_json,
    load_parameters,
    save_json,
    save_parameters,
)

PathLike = Union[str, Path]

# BatchNorm running statistics live outside ``named_parameters`` but are part
# of the trained model; they are checkpointed under a ``::buffer`` suffix.
BUFFER_SUFFIX = "::buffer"
_BUFFER_NAMES = ("running_mean", "running_var")


def _named_modules(module: Module, prefix: str = ""):
    yield prefix, module
    for name, child in module._modules.items():
        yield from _named_modules(child, f"{prefix}{name}.")


@dataclass
class FFCheckpoint:
    """In-memory representation of a saved FF training run."""

    parameters: Dict[str, np.ndarray]
    metadata: Dict[str, object]

    @property
    def num_units(self) -> int:
        """Number of FF units stored in the checkpoint."""
        return int(self.metadata["num_units"])


def _unit_state(units: Sequence[Module]) -> Dict[str, np.ndarray]:
    state: Dict[str, np.ndarray] = {}
    for index, unit in enumerate(units):
        for name, param in unit.named_parameters():
            state[f"unit{index}.{name}"] = param.data.copy()
        for path, module in _named_modules(unit):
            if isinstance(module, _BatchNormBase):
                for buffer_name in _BUFFER_NAMES:
                    key = f"unit{index}.{path}{buffer_name}{BUFFER_SUFFIX}"
                    state[key] = np.asarray(getattr(module, buffer_name)).copy()
    return state


def save_ff_checkpoint(
    units: Sequence[Module],
    bundle: ModelBundle,
    config: FFConfig,
    path: PathLike,
) -> Path:
    """Persist FF-trained units and their training metadata.

    Two files are written: ``<path>.npz`` with the parameters and
    ``<path>.json`` with the metadata; the returned path is the ``.npz``.
    """
    base = archive_base(path)
    params_path = save_parameters(_unit_state(units), archive_path(base, ".npz"))
    metadata = {
        "model_name": bundle.name,
        "num_units": len(units),
        "num_classes": bundle.num_classes,
        "flatten_input": bundle.flatten_input,
        "input_shape": list(bundle.input_shape),
        "theta": config.theta,
        "goodness": config.goodness,
        "overlay_amplitude": config.overlay_amplitude,
        "int8": config.int8,
        "lookahead": config.lookahead,
    }
    save_json(metadata, archive_path(base, ".json"))
    return params_path


def load_ff_checkpoint(path: PathLike) -> FFCheckpoint:
    """Load a checkpoint written by :func:`save_ff_checkpoint`."""
    base = archive_base(path)
    parameters = load_parameters(archive_path(base, ".npz"))
    metadata = load_json(archive_path(base, ".json"))
    return FFCheckpoint(parameters=parameters, metadata=metadata)


def restore_units(checkpoint: FFCheckpoint, bundle: ModelBundle) -> List[Module]:
    """Load checkpoint parameters into a freshly-built bundle's FF units."""
    units = bundle.ff_units()
    if len(units) != checkpoint.num_units:
        raise ValueError(
            f"checkpoint stores {checkpoint.num_units} units but the bundle "
            f"produces {len(units)}; model configuration mismatch"
        )
    for index, unit in enumerate(units):
        for name, param in unit.named_parameters():
            key = f"unit{index}.{name}"
            if key not in checkpoint.parameters:
                raise KeyError(f"checkpoint is missing parameter {key!r}")
            param.copy_(checkpoint.parameters[key])
        for path, module in _named_modules(unit):
            if isinstance(module, _BatchNormBase):
                for buffer_name in _BUFFER_NAMES:
                    key = f"unit{index}.{path}{buffer_name}{BUFFER_SUFFIX}"
                    # Pre-buffer checkpoints lack these keys; keep defaults.
                    if key in checkpoint.parameters:
                        setattr(
                            module, buffer_name,
                            checkpoint.parameters[key].astype(np.float32).copy(),
                        )
    return units


def restore_classifier(
    checkpoint: FFCheckpoint, bundle: ModelBundle
) -> FFGoodnessClassifier:
    """Rebuild the goodness classifier for a checkpointed FF network."""
    units = restore_units(checkpoint, bundle)
    overlay = LabelOverlay(
        num_classes=int(checkpoint.metadata["num_classes"]),
        amplitude=float(checkpoint.metadata["overlay_amplitude"]),
    )
    goodness = build_goodness(str(checkpoint.metadata["goodness"]))
    return FFGoodnessClassifier(
        units, overlay, goodness=goodness,
        flatten_input=bool(checkpoint.metadata["flatten_input"]),
    )
