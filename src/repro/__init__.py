"""FF-INT8: Forward-Forward DNN training with INT8 precision (reproduction).

Reproduction of "FF-INT8: Efficient Forward-Forward DNN Training on Edge
Devices with INT8 Precision" (DAC 2025).  The public API re-exports the most
commonly used entry points:

* models: :func:`build_model` and the Table II architectures,
* datasets: :func:`synthetic_mnist`, :func:`synthetic_cifar10`,
* the FF-INT8 trainer (:class:`FFInt8Trainer`) and its baselines
  (:class:`BPTrainer`, :func:`make_trainer`),
* the Jetson Orin Nano hardware model (:class:`TrainingCostModel`),
* the serving stack (:func:`export_artifact` → :class:`Int8InferenceEngine`
  → :class:`MicroBatcher`) for batched INT8 inference from frozen weights,
* the execution layer (:mod:`repro.runtime`): one compiled plan + pluggable
  kernel backends (``reference``/``fast``) shared by training, evaluation
  and serving — select with ``REPRO_BACKEND`` or the CLI ``--backend`` flag.

See ``examples/quickstart.py`` for a 20-line end-to-end run and
``examples/serve_quickstart.py`` for the train → export → serve loop.
"""

from repro.core import (
    FFConfig,
    FFGoodnessClassifier,
    FFInt8Config,
    FFInt8Trainer,
    ForwardForwardTrainer,
    ff_fp32,
    ff_int8_vanilla,
    ff_int8_with_lookahead,
)
from repro.data import synthetic_cifar10, synthetic_mnist
from repro.hardware import TrainingCostModel, build_table5_summary, profile_bundle
from repro.models import available_models, build_model
from repro.serve import (
    DeadlineExceeded,
    FrontendClient,
    FrontendConfig,
    Int8InferenceEngine,
    InferenceArtifact,
    MicroBatcher,
    PredictionCache,
    ReplicaSupervisor,
    RequestShed,
    ServeConfig,
    ServeFrontend,
    ServeMetrics,
    build_engine,
    export_artifact,
    export_from_checkpoint,
    frozen_classifier,
    load_artifact,
    save_artifact,
)
from repro import runtime
from repro.training import BPConfig, BPTrainer, make_trainer

__version__ = "1.8.0"

__all__ = [
    "FFInt8Trainer",
    "FFInt8Config",
    "ForwardForwardTrainer",
    "FFConfig",
    "FFGoodnessClassifier",
    "ff_int8_with_lookahead",
    "ff_int8_vanilla",
    "ff_fp32",
    "BPTrainer",
    "BPConfig",
    "make_trainer",
    "build_model",
    "available_models",
    "synthetic_mnist",
    "synthetic_cifar10",
    "TrainingCostModel",
    "profile_bundle",
    "build_table5_summary",
    "InferenceArtifact",
    "export_artifact",
    "export_from_checkpoint",
    "save_artifact",
    "load_artifact",
    "Int8InferenceEngine",
    "build_engine",
    "frozen_classifier",
    "MicroBatcher",
    "PredictionCache",
    "ServeConfig",
    "ServeMetrics",
    "FrontendConfig",
    "ServeFrontend",
    "FrontendClient",
    "ReplicaSupervisor",
    "RequestShed",
    "DeadlineExceeded",
    "runtime",
    "__version__",
]
