"""Dataset and mini-batch loading utilities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, new_rng


@dataclass
class ArrayDataset:
    """In-memory dataset of ``(images, labels)`` arrays.

    ``images`` has shape ``(N, ...)`` and ``labels`` shape ``(N,)``.  All of
    the repo's synthetic datasets produce this type.
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"images and labels disagree on sample count: "
                f"{self.images.shape[0]} vs {self.labels.shape[0]}"
            )
        if self.labels.size and (
            self.labels.min() < 0 or self.labels.max() >= self.num_classes
        ):
            raise ValueError(
                f"labels out of range for {self.num_classes} classes: "
                f"[{self.labels.min()}, {self.labels.max()}]"
            )

    def __len__(self) -> int:
        return int(self.images.shape[0])

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        """Shape of a single sample (without the batch dimension)."""
        return tuple(self.images.shape[1:])

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        return ArrayDataset(
            images=self.images[indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
            name=name or f"{self.name}-subset",
        )

    def split(
        self, train_fraction: float, rng: RngLike = None
    ) -> Tuple["ArrayDataset", "ArrayDataset"]:
        """Shuffle and split into (train, test) datasets."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(
                f"train_fraction must lie in (0, 1), got {train_fraction}"
            )
        rng = new_rng(rng)
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        return (
            self.subset(order[:cut], name=f"{self.name}-train"),
            self.subset(order[cut:], name=f"{self.name}-test"),
        )


class DataLoader:
    """Mini-batch iterator over an :class:`ArrayDataset`."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: RngLike = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = new_rng(rng)

    def __len__(self) -> int:
        count = len(self.dataset)
        if self.drop_last:
            return count // self.batch_size
        return (count + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        count = len(self.dataset)
        order = self.rng.permutation(count) if self.shuffle else np.arange(count)
        for start in range(0, count, self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and batch_idx.shape[0] < self.batch_size:
                break
            yield self.dataset.images[batch_idx], self.dataset.labels[batch_idx]
