"""Datasets, loaders and Forward-Forward sample construction.

All datasets are generated offline and deterministically (see DESIGN.md for
the MNIST/CIFAR-10 substitution rationale).
"""

from repro.data.cifar10 import CIFAR10_SPEC, synthetic_cifar10
from repro.data.dataset import ArrayDataset, DataLoader
from repro.data.mnist import MNIST_SPEC, synthetic_mnist
from repro.data.overlay import LabelOverlay
from repro.data.synthetic import (
    SyntheticImageGenerator,
    SyntheticSpec,
    make_dataset_pair,
)
from repro.data.transforms import (
    Compose,
    Normalize,
    RandomCropPad,
    RandomHorizontalFlip,
    flatten_images,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "LabelOverlay",
    "SyntheticSpec",
    "SyntheticImageGenerator",
    "make_dataset_pair",
    "synthetic_mnist",
    "synthetic_cifar10",
    "MNIST_SPEC",
    "CIFAR10_SPEC",
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCropPad",
    "flatten_images",
]
