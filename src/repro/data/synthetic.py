"""Synthetic image-classification dataset generator.

The paper trains on MNIST and CIFAR-10.  Those datasets cannot be downloaded
in this offline environment, so we generate deterministic stand-ins with the
same tensor shapes and class counts.  Each class is defined by a smooth random
"prototype" image (a mixture of low-frequency Gaussian blobs); samples are the
prototype plus per-sample blob jitter and pixel noise, which yields a task
that is learnable but not linearly trivial — enough structure for the relative
behaviour of the training algorithms (FP32 vs naive INT8 vs FF-INT8) to show
the same ordering the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import RngLike, new_rng


@dataclass
class SyntheticSpec:
    """Parameters of a synthetic dataset family."""

    name: str
    channels: int
    height: int
    width: int
    num_classes: int = 10
    blobs_per_class: int = 6
    noise_std: float = 0.18
    jitter_std: float = 1.5
    prototype_contrast: float = 1.0

    @property
    def sample_shape(self) -> Tuple[int, int, int]:
        """Shape of a single sample, channel-first."""
        return (self.channels, self.height, self.width)


def _gaussian_blob(
    height: int, width: int, center: np.ndarray, sigma: float
) -> np.ndarray:
    """Render one 2-D Gaussian bump on an ``(height, width)`` grid."""
    rows = np.arange(height)[:, None]
    cols = np.arange(width)[None, :]
    dist_sq = (rows - center[0]) ** 2 + (cols - center[1]) ** 2
    return np.exp(-dist_sq / (2.0 * sigma * sigma))


class SyntheticImageGenerator:
    """Draws samples for one :class:`SyntheticSpec` with a fixed seed."""

    def __init__(self, spec: SyntheticSpec, seed: RngLike = 0) -> None:
        self.spec = spec
        self._rng = new_rng(seed)
        self._blob_centers, self._blob_sigmas, self._blob_channels = (
            self._make_prototypes()
        )

    def _make_prototypes(self):
        spec = self.spec
        centers = self._rng.uniform(
            low=[spec.height * 0.15, spec.width * 0.15],
            high=[spec.height * 0.85, spec.width * 0.85],
            size=(spec.num_classes, spec.blobs_per_class, 2),
        )
        sigmas = self._rng.uniform(
            spec.height * 0.08,
            spec.height * 0.22,
            size=(spec.num_classes, spec.blobs_per_class),
        )
        channels = self._rng.integers(
            0, spec.channels, size=(spec.num_classes, spec.blobs_per_class)
        )
        return centers, sigmas, channels

    def prototype(self, label: int) -> np.ndarray:
        """Noise-free class prototype image of shape ``(C, H, W)``."""
        spec = self.spec
        image = np.zeros(spec.sample_shape, dtype=np.float32)
        for blob in range(spec.blobs_per_class):
            channel = int(self._blob_channels[label, blob])
            image[channel] += spec.prototype_contrast * _gaussian_blob(
                spec.height,
                spec.width,
                self._blob_centers[label, blob],
                float(self._blob_sigmas[label, blob]),
            )
        return np.clip(image, 0.0, None)

    def sample(self, label: int, rng: RngLike = None) -> np.ndarray:
        """One noisy sample of class ``label``."""
        rng = new_rng(rng) if rng is not None else self._rng
        spec = self.spec
        image = np.zeros(spec.sample_shape, dtype=np.float32)
        for blob in range(spec.blobs_per_class):
            channel = int(self._blob_channels[label, blob])
            center = self._blob_centers[label, blob] + rng.normal(
                0.0, spec.jitter_std, size=2
            )
            sigma = float(self._blob_sigmas[label, blob]) * float(
                rng.uniform(0.85, 1.15)
            )
            image[channel] += spec.prototype_contrast * _gaussian_blob(
                spec.height, spec.width, center, sigma
            )
        image += rng.normal(0.0, spec.noise_std, size=spec.sample_shape)
        return np.clip(image, 0.0, 1.5).astype(np.float32)

    def dataset(self, num_samples: int, seed: RngLike = None) -> ArrayDataset:
        """Generate a balanced dataset with ``num_samples`` total samples."""
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        rng = new_rng(seed) if seed is not None else self._rng
        spec = self.spec
        labels = np.arange(num_samples) % spec.num_classes
        rng.shuffle(labels)
        images = np.stack([self.sample(int(label), rng=rng) for label in labels])
        return ArrayDataset(
            images=images,
            labels=labels,
            num_classes=spec.num_classes,
            name=spec.name,
        )


def make_dataset_pair(
    spec: SyntheticSpec,
    num_train: int,
    num_test: int,
    seed: int = 0,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Build deterministic (train, test) datasets sharing the class prototypes."""
    generator = SyntheticImageGenerator(spec, seed=seed)
    train = generator.dataset(num_train, seed=seed + 1)
    test = generator.dataset(num_test, seed=seed + 2)
    train.name = f"{spec.name}-train"
    test.name = f"{spec.name}-test"
    return train, test
