"""CIFAR-10-shaped synthetic dataset (3x32x32 RGB, 10 classes).

Stand-in for the CIFAR-10 dataset used by the paper's convolutional
benchmarks (MobileNet-V2, EfficientNet-B0, ResNet-18); see DESIGN.md for the
substitution rationale.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from repro.data.dataset import ArrayDataset
from repro.data.synthetic import SyntheticSpec, make_dataset_pair

CIFAR10_SPEC = SyntheticSpec(
    name="synthetic-cifar10",
    channels=3,
    height=32,
    width=32,
    num_classes=10,
    blobs_per_class=7,
    noise_std=0.2,
    jitter_std=1.6,
)


def synthetic_cifar10(
    num_train: int = 2000,
    num_test: int = 500,
    seed: int = 0,
    image_size: int = 32,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Return (train, test) CIFAR-10-shaped datasets.

    ``image_size`` shrinks the spatial resolution (e.g. 16 for the reduced
    "mini" experiments); 32 reproduces the true CIFAR-10 shape.
    """
    spec = CIFAR10_SPEC
    if image_size != CIFAR10_SPEC.height:
        spec = replace(CIFAR10_SPEC, height=image_size, width=image_size,
                       name=f"synthetic-cifar10-{image_size}")
    return make_dataset_pair(spec, num_train, num_test, seed=seed)
