"""Batch-level data transforms.

Transforms are callables over ``(N, C, H, W)`` float arrays; ``Compose``
chains them.  They cover the light augmentation / normalization used before
training the convolutional benchmarks.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.utils.rng import RngLike, new_rng

Transform = Callable[[np.ndarray], np.ndarray]


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch)
        return batch


class Normalize:
    """Standardize per channel: ``(x - mean) / std``."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float32).reshape(1, -1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(1, -1, 1, 1)
        if np.any(self.std <= 0):
            raise ValueError("std entries must be positive")

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if batch.ndim != 4 or batch.shape[1] != self.mean.shape[1]:
            raise ValueError(
                f"expected (N, {self.mean.shape[1]}, H, W) batch, got {batch.shape}"
            )
        return ((batch - self.mean) / self.std).astype(np.float32)


class RandomHorizontalFlip:
    """Flip each sample left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, rng: RngLike = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must lie in [0, 1], got {p}")
        self.p = p
        self.rng = new_rng(rng)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if batch.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) batch, got {batch.shape}")
        flip = self.rng.random(batch.shape[0]) < self.p
        out = batch.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out


class RandomCropPad:
    """Pad by ``padding`` pixels and randomly crop back to the original size."""

    def __init__(self, padding: int = 2, rng: RngLike = None) -> None:
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = padding
        self.rng = new_rng(rng)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return batch
        if batch.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) batch, got {batch.shape}")
        pad = self.padding
        batch_size, _, height, width = batch.shape
        padded = np.pad(
            batch, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
        out = np.empty_like(batch)
        offsets_r = self.rng.integers(0, 2 * pad + 1, size=batch_size)
        offsets_c = self.rng.integers(0, 2 * pad + 1, size=batch_size)
        for index in range(batch_size):
            row, col = offsets_r[index], offsets_c[index]
            out[index] = padded[index, :, row : row + height, col : col + width]
        return out


def flatten_images(batch: np.ndarray) -> np.ndarray:
    """Flatten ``(N, C, H, W)`` into ``(N, C*H*W)`` for MLP models."""
    return batch.reshape(batch.shape[0], -1)
