"""MNIST-shaped synthetic dataset (1x28x28 grayscale, 10 classes).

The paper trains its MLP experiments (Table I, Table IV, part of Table V and
Figure 6a) on MNIST.  This module provides an offline, deterministic stand-in
with the exact tensor shape; see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from repro.data.dataset import ArrayDataset
from repro.data.synthetic import SyntheticSpec, make_dataset_pair

MNIST_SPEC = SyntheticSpec(
    name="synthetic-mnist",
    channels=1,
    height=28,
    width=28,
    num_classes=10,
    blobs_per_class=5,
    noise_std=0.15,
    jitter_std=1.2,
)


def synthetic_mnist(
    num_train: int = 2000,
    num_test: int = 500,
    seed: int = 0,
    image_size: int = 28,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Return (train, test) MNIST-shaped datasets.

    ``image_size`` shrinks the spatial resolution (e.g. 14 for the reduced
    "mini" experiments) while keeping the class structure; 28 reproduces the
    true MNIST shape.
    """
    spec = MNIST_SPEC
    if image_size != MNIST_SPEC.height:
        spec = replace(MNIST_SPEC, height=image_size, width=image_size,
                       name=f"synthetic-mnist-{image_size}")
    return make_dataset_pair(spec, num_train, num_test, seed=seed)
