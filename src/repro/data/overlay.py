"""Positive/negative sample construction for Forward-Forward training.

Following Hinton (2022) and Section III of the paper, label information is
embedded into the input by overwriting a small region with a one-hot encoding
of a label:

* **positive samples** carry the true label,
* **negative samples** carry a uniformly-drawn wrong label.

For flat inputs the first ``num_classes`` features are replaced; for image
inputs the first ``num_classes`` pixels of the first row of channel 0 are
replaced.  The overlay amplitude is configurable because the goodness of a
layer is the sum of squared activities — the label pixels must be visible
against the image statistics but must not dominate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.nn.functional import one_hot
from repro.utils.rng import RngLike, new_rng


@dataclass
class LabelOverlay:
    """Embeds one-hot labels into input tensors."""

    num_classes: int
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        if self.amplitude <= 0:
            raise ValueError(f"amplitude must be positive, got {self.amplitude}")

    # ------------------------------------------------------------------ #
    def embed(self, inputs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Return a copy of ``inputs`` with ``labels`` embedded."""
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != inputs.shape[0]:
            raise ValueError(
                f"batch mismatch: inputs {inputs.shape[0]} vs labels {labels.shape[0]}"
            )
        encoding = self.amplitude * one_hot(labels, self.num_classes)
        out = np.array(inputs, dtype=np.float32, copy=True)
        if inputs.ndim == 2:
            if inputs.shape[1] < self.num_classes:
                raise ValueError(
                    f"flat inputs need at least {self.num_classes} features, "
                    f"got {inputs.shape[1]}"
                )
            out[:, : self.num_classes] = encoding
        elif inputs.ndim == 4:
            if inputs.shape[3] < self.num_classes:
                raise ValueError(
                    f"image width {inputs.shape[3]} is smaller than "
                    f"num_classes={self.num_classes}"
                )
            out[:, 0, 0, : self.num_classes] = encoding
        else:
            raise ValueError(
                f"inputs must be (N, F) or (N, C, H, W), got shape {inputs.shape}"
            )
        return out

    def neutral(self, inputs: np.ndarray) -> np.ndarray:
        """Embed a uniform (uninformative) label vector, used at inference."""
        out = np.array(inputs, dtype=np.float32, copy=True)
        fill = self.amplitude / self.num_classes
        if inputs.ndim == 2:
            out[:, : self.num_classes] = fill
        elif inputs.ndim == 4:
            out[:, 0, 0, : self.num_classes] = fill
        else:
            raise ValueError(
                f"inputs must be (N, F) or (N, C, H, W), got shape {inputs.shape}"
            )
        return out

    # ------------------------------------------------------------------ #
    def positive(self, inputs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Positive samples: overlay of the true label."""
        return self.embed(inputs, labels)

    def negative(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        rng: RngLike = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Negative samples: overlay of a uniformly-drawn *wrong* label.

        Returns ``(negative_inputs, wrong_labels)``.
        """
        rng = new_rng(rng)
        labels = np.asarray(labels, dtype=np.int64)
        offsets = rng.integers(1, self.num_classes, size=labels.shape[0])
        wrong = (labels + offsets) % self.num_classes
        return self.embed(inputs, wrong), wrong

    def candidates(self, inputs: np.ndarray) -> np.ndarray:
        """All per-class overlays for inference-time label probing.

        Returns an array of shape ``(num_classes, N, ...)`` where slice ``c``
        is the batch overlaid with label ``c``.  FF classification evaluates
        the network's accumulated goodness for every slice and predicts the
        argmax.
        """
        batch = inputs.shape[0]
        stacked = []
        for label in range(self.num_classes):
            labels = np.full(batch, label, dtype=np.int64)
            stacked.append(self.embed(inputs, labels))
        return np.stack(stacked, axis=0)
