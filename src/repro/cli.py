"""Command-line interface for the FF-INT8 reproduction.

Three subcommands cover the common workflows::

    python -m repro models                      # list registered architectures
    python -m repro train --model mlp-mini --algorithm FF-INT8 --epochs 20
    python -m repro estimate --model resnet18   # Jetson Orin Nano cost table

The CLI is intentionally thin: it wires the public library API together so
that the same behaviour is scriptable without writing Python.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import format_table
from repro.data import synthetic_cifar10, synthetic_mnist
from repro.hardware import TrainingCostModel, profile_bundle
from repro.models import available_models, build_model
from repro.training import ALL_ALGORITHMS, make_trainer
from repro.utils.serialization import save_json


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FF-INT8: Forward-Forward INT8 training (DAC 2025 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("models", help="list registered model architectures")

    train = subparsers.add_parser("train", help="train a model with one algorithm")
    train.add_argument("--model", default="mlp-mini",
                       help="registry name (see `repro models`)")
    train.add_argument("--algorithm", default="FF-INT8", choices=ALL_ALGORITHMS)
    train.add_argument("--dataset", default="mnist", choices=("mnist", "cifar10"))
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--lr", type=float, default=None,
                       help="learning rate (defaults per algorithm)")
    train.add_argument("--train-samples", type=int, default=512)
    train.add_argument("--test-samples", type=int, default=160)
    train.add_argument("--image-size", type=int, default=None,
                       help="override dataset resolution (e.g. 14 or 16)")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--output", default=None,
                       help="optional path for a JSON run summary")

    estimate = subparsers.add_parser(
        "estimate", help="estimate Jetson Orin Nano training cost for a model"
    )
    estimate.add_argument("--model", default="resnet18")
    estimate.add_argument("--epochs", type=int, default=None,
                          help="epochs for every algorithm (default: per-algorithm)")
    estimate.add_argument("--dataset-size", type=int, default=50000)
    estimate.add_argument("--batch-size", type=int, default=32)
    return parser


def _load_dataset(args):
    image_size = args.image_size
    if args.dataset == "mnist":
        return synthetic_mnist(
            num_train=args.train_samples, num_test=args.test_samples,
            seed=args.seed, image_size=image_size or 28,
        )
    return synthetic_cifar10(
        num_train=args.train_samples, num_test=args.test_samples,
        seed=args.seed, image_size=image_size or 32,
    )


def _default_input_shape(args) -> tuple:
    channels = 1 if args.dataset == "mnist" else 3
    size = args.image_size or (28 if args.dataset == "mnist" else 32)
    return (channels, size, size)


def _cmd_models() -> int:
    for name in available_models():
        print(name)
    return 0


def _cmd_train(args) -> int:
    train_set, test_set = _load_dataset(args)
    bundle = build_model(args.model, input_shape=_default_input_shape(args))
    print(f"training {bundle.name} ({bundle.num_parameters():,} parameters) "
          f"with {args.algorithm} for {args.epochs} epochs")

    kwargs = {"epochs": args.epochs, "batch_size": args.batch_size,
              "seed": args.seed}
    if args.lr is not None:
        kwargs["lr"] = args.lr
    trainer = make_trainer(args.algorithm, **kwargs)
    history = trainer.fit(bundle, train_set, test_set)

    rows = [
        [record.epoch, record.train_loss,
         None if record.test_accuracy is None else 100 * record.test_accuracy]
        for record in history.records
    ]
    print(format_table(["epoch", "train loss", "test acc %"], rows,
                       float_format="{:.3f}"))
    final = history.final_test_accuracy
    print(f"final test accuracy: "
          f"{'n/a' if final is None else f'{100 * final:.1f}%'}")

    if args.output:
        save_json(history.as_dict(), args.output)
        print(f"run summary written to {args.output}")
    return 0


def _cmd_estimate(args) -> int:
    bundle = build_model(args.model)
    profile = profile_bundle(bundle, batch_size=1)
    cost_model = TrainingCostModel()
    rows = []
    for algorithm in ALL_ALGORITHMS:
        estimate = cost_model.estimate(
            profile, algorithm, epochs=args.epochs,
            dataset_size=args.dataset_size, batch_size=args.batch_size,
        )
        rows.append([
            algorithm, estimate.epochs, estimate.time_s, estimate.energy_j,
            estimate.memory_mb, estimate.average_power_w,
        ])
    print(format_table(
        ["algorithm", "epochs", "time (s)", "energy (J)", "memory (MB)",
         "avg power (W)"],
        rows,
        title=f"Jetson Orin Nano training-cost estimates for {bundle.name}",
        float_format="{:.1f}",
    ))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "models":
        return _cmd_models()
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "estimate":
        return _cmd_estimate(args)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
