"""Command-line interface for the FF-INT8 reproduction.

Six subcommands cover the common workflows::

    python -m repro models                      # architectures + parameter counts
    python -m repro train --model mlp-mini --algorithm FF-INT8 --epochs 20
    python -m repro estimate --model resnet18   # Jetson Orin Nano cost table
    python -m repro export --model mlp-mini --output runs/artifact
    python -m repro serve-bench --model mlp-mini --requests 256 --trace 3
    python -m repro serve-bench --server --port 7071 --replicas 2   # wire server
    python -m repro serve-bench --client --port 7071 --deadline-ms 250
    python -m repro registry --port 7071 swap mlp-mini@v2           # hot-swap
    python -m repro obs-snapshot --model mlp-mini --requests 64

The CLI is intentionally thin: it wires the public library API together so
that the same behaviour is scriptable without writing Python.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

import numpy as np

from repro import __version__
from repro.analysis import format_table
from repro.obs import (
    clear_buffer,
    disable_tracing,
    enable_tracing,
    format_trace,
    get_registry,
    slowest_traces,
)
from repro.core import FFInt8Config, FFInt8Trainer, load_ff_checkpoint, save_ff_checkpoint
from repro.data import synthetic_cifar10, synthetic_mnist
from repro.hardware import TrainingCostModel, profile_bundle
from repro.models import available_models, build_model
from repro.serve import (
    DeadlineExceeded,
    FrontendClient,
    FrontendConfig,
    MicroBatcher,
    ModelRegistry,
    RequestShed,
    ServeConfig,
    ServeFrontend,
    build_engine,
    export_artifact,
    export_from_checkpoint,
    latency_percentiles,
    load_artifact,
    parse_model_ref,
    save_artifact,
)
from repro.runtime import available_backends, use_backend
from repro.runtime.plan import validate_pins
from repro.training import ALL_ALGORITHMS, make_trainer
from repro.utils.serialization import save_json
from repro.utils.sysinfo import machine_meta


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FF-INT8: Forward-Forward INT8 training (DAC 2025 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")

    # Options every subcommand shares, so a whole benchmark pipeline
    # (train -> export -> serve-bench) is reproducible and backend-pinned
    # with the same two flags on each invocation.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0,
                        help="RNG seed for data generation, init and training "
                             "(shared by every subcommand)")
    common.add_argument("--backend", default=None,
                        choices=available_backends(),
                        help="runtime kernel backend (default: REPRO_BACKEND "
                             "env var, else 'fast'; all are bit-identical)")
    common.add_argument("--pin", action="append", default=None,
                        metavar="LAYER=BACKEND",
                        help="pin one layer of the compiled plan to a "
                             "backend; LAYER is '<kind>', 'unit<N>' or "
                             "'unit<N>.<kind>' (e.g. --pin gemm=parallel "
                             "--pin unit0=fast; repeatable; a pin outranks "
                             "--backend for that layer).  '--pin auto' "
                             "instead resolves every layer to its measured "
                             "winner (recorded kernel_micro timings when "
                             "fresh for this CPU, else a ~100ms in-process "
                             "calibration)")

    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "models", parents=[common],
        help="list registered architectures with parameter counts",
    )

    train = subparsers.add_parser("train", parents=[common],
                                  help="train a model with one algorithm")
    train.add_argument("--model", default="mlp-mini",
                       help="registry name (see `repro models`)")
    train.add_argument("--algorithm", default="FF-INT8", choices=ALL_ALGORITHMS)
    train.add_argument("--dataset", default="mnist", choices=("mnist", "cifar10"))
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--lr", type=float, default=None,
                       help="learning rate (defaults per algorithm)")
    train.add_argument("--train-samples", type=int, default=512)
    train.add_argument("--test-samples", type=int, default=160)
    train.add_argument("--image-size", type=int, default=None,
                       help="override dataset resolution (e.g. 14 or 16)")
    train.add_argument("--output", default=None,
                       help="optional path for a JSON run summary")
    train.add_argument("--save-checkpoint", default=None,
                       help="save trained FF units to this checkpoint path "
                            "(FF algorithms only)")

    estimate = subparsers.add_parser(
        "estimate", parents=[common],
        help="estimate Jetson Orin Nano training cost for a model",
    )
    estimate.add_argument("--model", default="resnet18")
    estimate.add_argument("--epochs", type=int, default=None,
                          help="epochs for every algorithm (default: per-algorithm)")
    estimate.add_argument("--dataset-size", type=int, default=50000)
    estimate.add_argument("--batch-size", type=int, default=32)

    export = subparsers.add_parser(
        "export", parents=[common],
        help="freeze a trained model into an immutable INT8 inference artifact",
    )
    export.add_argument("--model", default="mlp-mini",
                        help="registry name used to rebuild the module skeleton")
    export.add_argument("--checkpoint", default=None,
                        help="FF checkpoint to export (trains a fresh model "
                             "with FF-INT8 when omitted)")
    export.add_argument("--dataset", default="mnist", choices=("mnist", "cifar10"))
    export.add_argument("--epochs", type=int, default=8,
                        help="training epochs when no checkpoint is given")
    export.add_argument("--train-samples", type=int, default=256)
    export.add_argument("--test-samples", type=int, default=96)
    export.add_argument("--image-size", type=int, default=None)
    export.add_argument("--per-channel", action="store_true",
                        help="per-output-channel weight scales")
    export.add_argument("--output", required=True,
                        help="artifact path (writes <output>.npz + <output>.json)")

    bench = subparsers.add_parser(
        "serve-bench", parents=[common],
        help="benchmark single-sample vs micro-batched INT8 inference",
    )
    bench.add_argument("--model", default="mlp-mini",
                       help="architecture, optionally versioned as "
                            "NAME@VER — a --server registers the frozen "
                            "artifact under that version in its model "
                            "registry (default version v1)")
    bench.add_argument("--artifact", default=None,
                       help="serve an existing artifact instead of training")
    bench.add_argument("--dataset", default="mnist", choices=("mnist", "cifar10"))
    bench.add_argument("--epochs", type=int, default=8,
                       help="training epochs when no artifact is given")
    bench.add_argument("--train-samples", type=int, default=256)
    bench.add_argument("--test-samples", type=int, default=96)
    bench.add_argument("--image-size", type=int, default=None)
    bench.add_argument("--requests", type=int, default=256,
                       help="number of single-sample requests to serve")
    bench.add_argument("--max-batch-size", type=int, default=32)
    bench.add_argument("--max-wait-ms", type=float, default=5.0)
    bench.add_argument("--autoscale-wait", action="store_true",
                       help="adapt the coalescing window to queue-depth "
                            "load, between --min-wait-ms and --max-wait-ms")
    bench.add_argument("--min-wait-ms", type=float, default=0.0,
                       help="lower bound of the adaptive coalescing window")
    bench.add_argument("--workers", type=int, default=1)
    bench.add_argument("--cache-size", type=int, default=0,
                       help="LRU prediction-cache capacity (0 disables; kept "
                            "off by default so the speedup is pure batching)")
    bench.add_argument("--no-fuse", action="store_true",
                       help="compile strictly unfused plans (step-per-module "
                            "walk) — the serving A/B baseline for fusion")
    bench.add_argument("--trace", type=int, default=0, metavar="N",
                       help="trace every request through the batched phase "
                            "and print the N slowest request trees "
                            "(batcher, engine and per-kernel-step spans)")
    bench.add_argument("--output", default=None,
                       help="optional path for a JSON benchmark summary")
    wire = bench.add_argument_group(
        "wire mode", "serve over a socket (fault-tolerant front-end) "
                     "instead of benchmarking in-process")
    wire.add_argument("--server", action="store_true",
                      help="run the front-end server (supervised replica "
                           "pool behind the length-prefixed wire protocol)")
    wire.add_argument("--client", action="store_true",
                      help="benchmark against a running --server: "
                           "wire-inclusive latency, shed/deadline outcomes")
    wire.add_argument("--host", default="127.0.0.1")
    wire.add_argument("--port", type=int, default=0,
                      help="listen port for --server (0 picks one and "
                           "prints it); connect port for --client")
    wire.add_argument("--replicas", type=int, default=1,
                      help="engine replicas behind the --server front-end")
    wire.add_argument("--deadline-ms", type=float, default=1000.0,
                      help="per-request deadline; the server answers "
                           "deadline_exceeded past it, never silence")
    wire.add_argument("--max-queue-depth", type=int, default=128,
                      help="--server admission bound; excess requests are "
                           "shed with an adaptive retry_after_ms hint")
    wire.add_argument("--duration-s", type=float, default=0.0,
                      help="--server lifetime (0 = serve until Ctrl-C; "
                           "shutdown always drains gracefully)")
    wire.add_argument("--extra-version", action="append", default=None,
                      metavar="VER",
                      help="--server: register the frozen artifact under "
                           "this extra version label too (repeatable; "
                           "identical params fingerprint-dedup to one "
                           "shared engine — the hot-swap/canary target "
                           "without training twice)")
    wire.add_argument("--model-ref", default=None, metavar="NAME[@VER]",
                      help="--client: route requests to this registered "
                           "model (bare name follows the server's "
                           "routing; NAME@VER pins a version)")

    reg = subparsers.add_parser(
        "registry", parents=[common],
        help="admin client for a registry-backed --server: list models, "
             "hot-swap the stable version, start/roll back a canary",
    )
    reg.add_argument("action",
                     choices=("list", "swap", "canary-start",
                              "canary-rollback", "canary-status"),
                     help="admin operation to run over the wire")
    reg.add_argument("ref", nargs="?", default=None,
                     help="model ref (NAME@VER for swap/canary-start, "
                          "NAME for canary-rollback/canary-status)")
    reg.add_argument("--host", default="127.0.0.1")
    reg.add_argument("--port", type=int, required=True,
                     help="port of the running registry-backed --server")
    reg.add_argument("--fraction", type=float, default=0.1,
                     help="canary traffic fraction for canary-start")
    reg.add_argument("--canary-seed", type=int, default=0,
                     help="seed of the deterministic canary split")
    reg.add_argument("--force", action="store_true",
                     help="canary-start: override an active hold-off")
    reg.add_argument("--reason", default="admin",
                     help="canary-rollback: reason recorded for the "
                          "rollback")

    obs = subparsers.add_parser(
        "obs-snapshot", parents=[common],
        help="drive traced requests through a micro-batcher and dump the "
             "telemetry registry (Prometheus exposition text)",
    )
    obs.add_argument("--model", default="mlp-mini")
    obs.add_argument("--artifact", default=None,
                     help="serve an existing artifact instead of training")
    obs.add_argument("--dataset", default="mnist", choices=("mnist", "cifar10"))
    obs.add_argument("--epochs", type=int, default=2,
                     help="training epochs when no artifact is given")
    obs.add_argument("--train-samples", type=int, default=96)
    obs.add_argument("--test-samples", type=int, default=48)
    obs.add_argument("--image-size", type=int, default=None)
    obs.add_argument("--requests", type=int, default=64,
                     help="number of traced requests to serve")
    obs.add_argument("--max-batch-size", type=int, default=16)
    obs.add_argument("--max-wait-ms", type=float, default=2.0)
    obs.add_argument("--trace", type=int, default=1, metavar="N",
                     help="also print the N slowest request traces "
                          "(0 disables)")
    obs.add_argument("--output", default=None,
                     help="optional path for a JSON registry snapshot")
    return parser


def _parse_pins(args):
    """``--pin`` occurrences as a validated pin mapping (or ``"auto"``)."""
    raw = getattr(args, "pin", None)
    if not raw:
        return None
    if "auto" in raw:
        if len(raw) > 1:
            raise SystemExit(
                "error: --pin auto resolves every layer and cannot be "
                "combined with explicit LAYER=BACKEND pins"
            )
        return "auto"
    pins = {}
    for item in raw:
        layer, sep, backend = item.partition("=")
        if not sep or not layer or not backend:
            raise SystemExit(
                f"error: --pin expects LAYER=BACKEND (or a single "
                f"'--pin auto'), got {item!r}"
            )
        pins[layer] = backend
    try:
        return validate_pins(pins)
    except ValueError as error:
        raise SystemExit(f"error: {error}")


def _load_dataset(args):
    image_size = args.image_size
    if args.dataset == "mnist":
        return synthetic_mnist(
            num_train=args.train_samples, num_test=args.test_samples,
            seed=args.seed, image_size=image_size or 28,
        )
    return synthetic_cifar10(
        num_train=args.train_samples, num_test=args.test_samples,
        seed=args.seed, image_size=image_size or 32,
    )


def _default_input_shape(args) -> tuple:
    channels = 1 if args.dataset == "mnist" else 3
    size = args.image_size or (28 if args.dataset == "mnist" else 32)
    return (channels, size, size)


def _cmd_models() -> int:
    rows = []
    for name in available_models():
        bundle = build_model(name)
        rows.append([name, f"{bundle.num_parameters():,}",
                     len(bundle.backbone_blocks), bundle.description])
    print(format_table(["model", "parameters", "ff blocks", "description"], rows))
    return 0


def _cmd_train(args) -> int:
    train_set, test_set = _load_dataset(args)
    bundle = build_model(args.model, input_shape=_default_input_shape(args))
    print(f"training {bundle.name} ({bundle.num_parameters():,} parameters) "
          f"with {args.algorithm} for {args.epochs} epochs")

    kwargs = {"epochs": args.epochs, "batch_size": args.batch_size,
              "seed": args.seed}
    if args.lr is not None:
        kwargs["lr"] = args.lr
    pins = _parse_pins(args)
    if pins:
        if args.algorithm.upper().startswith("FF"):
            kwargs["pins"] = pins
        else:
            print(f"--pin ignored: {args.algorithm} does not execute "
                  "compiled plans")
    trainer = make_trainer(args.algorithm, **kwargs)
    history = trainer.fit(bundle, train_set, test_set)

    rows = [
        [record.epoch, record.train_loss,
         None if record.test_accuracy is None else 100 * record.test_accuracy]
        for record in history.records
    ]
    print(format_table(["epoch", "train loss", "test acc %"], rows,
                       float_format="{:.3f}"))
    final = history.final_test_accuracy
    print(f"final test accuracy: "
          f"{'n/a' if final is None else f'{100 * final:.1f}%'}")

    if args.save_checkpoint:
        units = history.metadata.get("units")
        if units is None:
            print("--save-checkpoint ignored: "
                  f"{args.algorithm} does not produce FF units")
        else:
            path = save_ff_checkpoint(units, bundle, trainer.config,
                                      args.save_checkpoint)
            print(f"checkpoint written to {path}")

    if args.output:
        save_json(history.as_dict(), args.output)
        print(f"run summary written to {args.output}")
    return 0


def _cmd_estimate(args) -> int:
    bundle = build_model(args.model)
    profile = profile_bundle(bundle, batch_size=1)
    cost_model = TrainingCostModel()
    rows = []
    for algorithm in ALL_ALGORITHMS:
        estimate = cost_model.estimate(
            profile, algorithm, epochs=args.epochs,
            dataset_size=args.dataset_size, batch_size=args.batch_size,
        )
        rows.append([
            algorithm, estimate.epochs, estimate.time_s, estimate.energy_j,
            estimate.memory_mb, estimate.average_power_w,
        ])
    print(format_table(
        ["algorithm", "epochs", "time (s)", "energy (J)", "memory (MB)",
         "avg power (W)"],
        rows,
        title=f"Jetson Orin Nano training-cost estimates for {bundle.name}",
        float_format="{:.1f}",
    ))
    return 0


def _mini_image_size(args) -> None:
    """Default export/serve workloads to the mini-native resolutions."""
    if args.image_size is None:
        args.image_size = 14 if args.dataset == "mnist" else 16


def _train_and_freeze(args):
    """Train a fresh FF-INT8 model and freeze it (export/serve-bench path)."""
    train_set, test_set = _load_dataset(args)
    input_shape = _default_input_shape(args)
    bundle = build_model(args.model, input_shape=input_shape)
    config = FFInt8Config(
        epochs=args.epochs, batch_size=64, overlay_amplitude=2.0,
        evaluate_every=max(args.epochs, 1), eval_max_samples=args.test_samples,
        seed=args.seed, pins=_parse_pins(args),
    )
    print(f"training {bundle.name} with FF-INT8 for {args.epochs} epochs "
          "before freezing...")
    history = FFInt8Trainer(config).fit(bundle, train_set, test_set)
    units = history.metadata["units"]
    artifact = export_artifact(
        units, bundle,
        goodness=config.goodness,
        overlay_amplitude=config.overlay_amplitude,
        theta=config.theta,
        per_channel=getattr(args, "per_channel", False),
        registry_name=args.model,
        registry_kwargs={"input_shape": list(input_shape)},
    )
    return artifact, test_set


def _cmd_export(args) -> int:
    _mini_image_size(args)
    if args.checkpoint:
        checkpoint = load_ff_checkpoint(args.checkpoint)
        input_shape = tuple(int(v) for v in checkpoint.metadata["input_shape"])
        bundle = build_model(args.model, input_shape=input_shape)
        artifact = export_from_checkpoint(
            checkpoint, bundle, per_channel=args.per_channel,
            registry_name=args.model,
            registry_kwargs={"input_shape": list(input_shape)},
        )
    else:
        artifact, _ = _train_and_freeze(args)
    path = save_artifact(artifact, args.output)
    print(format_table(
        ["field", "value"],
        [
            ["model", artifact.metadata["model_name"]],
            ["units", artifact.num_units],
            ["INT8 weight tensors", len(artifact.quantized_keys())],
            ["payload (KiB)", artifact.nbytes() / 1024.0],
            ["goodness", artifact.goodness_name],
            ["per-channel scales", str(bool(artifact.metadata["per_channel"]))],
        ],
        title="exported inference artifact",
        float_format="{:.1f}",
    ))
    print(f"artifact written to {path}")
    return 0


def _cmd_serve_bench(args) -> int:
    _mini_image_size(args)
    if args.server and args.client:
        raise SystemExit("error: --server and --client are exclusive "
                         "(run one of each, in separate processes)")
    if args.client:
        return _serve_bench_client(args)
    # --model may carry a registry version (NAME@VER); the architecture
    # name is what training/building needs, the version is what the
    # server's model registry files the frozen artifact under.
    try:
        args.model, model_version = parse_model_ref(args.model)
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    pins = _parse_pins(args)  # validate before paying for any training
    if args.artifact:
        artifact = load_artifact(args.artifact)
        _, test_set = _load_dataset(args)
    else:
        artifact, test_set = _train_and_freeze(args)
    if args.server:
        return _serve_bench_server(args, artifact, pins,
                                   model_version or "v1")
    # Resolve pins once, at this deployment's coalesced batch height (the
    # micro-batcher re-applies the same pins at the same height, which is a
    # plan-cache hit on the memoized executor), so the report below matches
    # what serves.
    engine = build_engine(artifact, backend=args.backend,
                          fuse=not args.no_fuse)
    # One cleanup path for every exit — normal, error, or Ctrl-C anywhere
    # from here on (including the single-sample baseline): the engine owns
    # the kernel-pool lifecycle and ``close()`` is idempotent, so the
    # KeyboardInterrupt branch, this ``finally`` and the interpreter-exit
    # hook can all fire without double-teardown.
    try:
        return _serve_bench_local(args, artifact, engine, test_set, pins)
    except KeyboardInterrupt:
        print("\nserve-bench interrupted — shutting kernel pools down")
        return 130
    finally:
        engine.close()


def _serve_bench_local(args, artifact, engine, test_set, pins) -> int:
    if pins:
        engine.apply_pins(pins, batch_size=args.max_batch_size)
    if pins == "auto":
        resolved = [
            step.describe() for step in engine.executor.plan.steps
            if step.backend is not None
        ]
        print("auto-pinned plan (measured winners):")
        for line in resolved:
            print(f"  {line}")

    images = test_set.images
    indices = np.arange(args.requests) % len(images)
    stream = images[indices]

    # Single-sample baseline: one engine call per request.
    single_latencies = []
    started = time.perf_counter()
    for sample in stream:
        call_started = time.perf_counter()
        engine.predict(sample[None])
        single_latencies.append(1000.0 * (time.perf_counter() - call_started))
    single_elapsed = time.perf_counter() - started
    single_throughput = args.requests / single_elapsed
    single_stats = latency_percentiles(single_latencies)

    # Micro-batched path: burst-submit every request, then gather.
    # Caching and in-flight dedup are disabled unless asked for, so the
    # reported speedup comes from batching alone.
    config = ServeConfig(
        max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms,
        num_workers=args.workers, cache_capacity=args.cache_size,
        dedup_inflight=args.cache_size > 0, backend=args.backend,
        pins=pins, fuse=not args.no_fuse,
        autoscale_wait=args.autoscale_wait,
        min_wait_ms=args.min_wait_ms,
    )
    batcher = MicroBatcher(engine, config)
    # The caller's try/finally closes the engine; this block only manages
    # the batcher's worker threads.
    with batcher:
        if args.trace > 0:
            # Trace only the batched phase so the single-sample baseline
            # above stays an untouched reference measurement.
            clear_buffer()
            enable_tracing(sample=1.0)
        try:
            started = time.perf_counter()
            batched_labels = batcher.predict_many(list(stream))
            batched_elapsed = time.perf_counter() - started
        finally:
            if args.trace > 0:
                disable_tracing()
        batched_throughput = args.requests / batched_elapsed
        snap = batcher.metrics.snapshot()

        reference = engine.predict(stream)
    if not np.array_equal(batched_labels, reference):
        print("WARNING: batched predictions diverged from the engine reference")

    speedup = batched_throughput / single_throughput if single_throughput else 0.0
    print(format_table(
        ["mode", "requests", "throughput (req/s)", "p50 (ms)", "p95 (ms)",
         "p99 (ms)"],
        [
            ["single-sample", args.requests, single_throughput,
             single_stats["p50"], single_stats["p95"], single_stats["p99"]],
            ["micro-batched", args.requests, batched_throughput,
             snap["p50"], snap["p95"], snap["p99"]],
        ],
        title=f"serve-bench: {artifact.metadata['model_name']} "
              f"(max_batch_size={args.max_batch_size}, "
              f"workers={args.workers})",
        float_format="{:.2f}",
    ))
    cache_stats = batcher.cache.stats()
    print(f"batched speedup: {speedup:.2f}x  "
          f"(mean batch size {snap['mean_batch_size']:.1f}, "
          f"{int(snap['batches'])} batches, "
          f"cache hit rate {cache_stats['hit_rate']:.1%})")
    plan_stats = engine.plan_cache_stats()
    print(f"plan cache: {plan_stats['compiles']} compile(s), "
          f"{plan_stats['hits']} hit(s), "
          f"{plan_stats['entries']} cached plan(s)")
    if args.autoscale_wait:
        print(f"adaptive max_wait settled at {batcher.current_wait_ms:.2f} ms "
              f"(bounds [{args.min_wait_ms:.2f}, {args.max_wait_ms:.2f}] ms, "
              f"queue-depth EWMA {snap['queue_depth_ewma']:.1f})")
    if args.trace > 0:
        slowest = slowest_traces(args.trace)
        print(f"\n{len(slowest)} slowest request trace(s) "
              f"of {args.requests} traced:")
        for trace in slowest:
            print(format_trace(trace))

    if args.output:
        save_json({
            "model": artifact.metadata["model_name"],
            "requests": args.requests,
            "serve_config": config.as_dict(),
            "meta": machine_meta(backend=args.backend),
            "single": {"throughput_rps": single_throughput, **single_stats},
            "batched": {"throughput_rps": batched_throughput, **snap},
            "cache": cache_stats,
            "plan_cache": plan_stats,
            "speedup": speedup,
            "obs": get_registry().snapshot(),
        }, args.output)
        print(f"benchmark summary written to {args.output}")
    return 0


def _serve_bench_server(args, artifact, pins, model_version) -> int:
    """Serve the artifact over the wire behind the supervised front-end.

    The artifact is filed in a :class:`ModelRegistry` under
    ``NAME@model_version`` (plus any ``--extra-version`` labels, which
    fingerprint-dedup onto the same engine), so ``repro registry`` can
    hot-swap and canary against the live server.
    """
    def builder(frozen):
        engine = build_engine(frozen, backend=args.backend,
                              fuse=not args.no_fuse)
        if pins:
            engine.apply_pins(pins, batch_size=args.max_batch_size)
        return engine

    # Register under the CLI-facing name (what the operator will address
    # in ``repro registry`` / ``--model-ref``), not the internal
    # architecture name the artifact metadata records.
    name = args.model
    registry = ModelRegistry(engine_builder=builder)
    registry.register(name, model_version, artifact)
    for extra in (args.extra_version or []):
        if extra != model_version:
            registry.register(name, extra, artifact, make_default=False)

    config = FrontendConfig(
        host=args.host, port=args.port, num_replicas=args.replicas,
        max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms,
        num_workers=args.workers, cache_capacity=args.cache_size,
        dedup_inflight=args.cache_size > 0, backend=args.backend,
        pins=pins, fuse=not args.no_fuse,
        autoscale_wait=args.autoscale_wait, min_wait_ms=args.min_wait_ms,
        default_deadline_ms=args.deadline_ms,
        max_queue_depth=args.max_queue_depth,
    )
    frontend = ServeFrontend(registry=registry, config=config)
    # Same single-cleanup-path contract as the in-process bench: Ctrl-C at
    # any point lands in the ``finally`` and drains gracefully (intake
    # stops, in-flight requests finish, engines and kernel pools close).
    try:
        frontend.start()
        versions = [v for m in registry.describe() for v in m["versions"]]
        print(f"serving {name}@{model_version} on "
              f"{args.host}:{frontend.port} "
              f"(versions {', '.join(versions)}; "
              f"{args.replicas} replica(s), "
              f"deadline {args.deadline_ms:.0f} ms, "
              f"queue depth {args.max_queue_depth})")
        if args.duration_s > 0:
            time.sleep(args.duration_s)
        else:
            print("Ctrl-C to drain and exit")
            while True:
                time.sleep(1.0)
    except KeyboardInterrupt:
        print("\ninterrupt — draining")
        return 0
    finally:
        frontend.close()
        registry.close()
        snap = frontend.metrics.snapshot()
        print(f"served {int(snap['requests'])} request(s), "
              f"shed {int(snap['shed_requests'])}, "
              f"deadline-exceeded {int(snap['deadline_exceeded_requests'])}, "
              f"replica restarts {frontend.supervisor.restarts}, "
              f"swaps {registry.stats()['swaps']}")
    return 0


def _serve_bench_client(args) -> int:
    """Wire-inclusive latency benchmark against a running ``--server``."""
    if args.port <= 0:
        raise SystemExit("error: --client needs the server's --port")
    _, test_set = _load_dataset(args)
    images = test_set.images
    indices = np.arange(args.requests) % len(images)
    stream = images[indices]

    # The server may still be training/staging: retry the connection
    # briefly so orchestration (CI) can launch both sides back to back.
    deadline = time.perf_counter() + 30.0
    while True:
        try:
            client = FrontendClient(args.host, args.port, seed=args.seed)
            break
        except OSError:
            if time.perf_counter() >= deadline:
                raise SystemExit(
                    f"error: no server at {args.host}:{args.port}"
                )
            time.sleep(0.25)
    outcomes = {"ok": 0, "shed": 0, "deadline_exceeded": 0, "error": 0}
    latencies = []
    started = time.perf_counter()
    try:
        client.ping()
        for sample in stream:
            sent = time.perf_counter()
            try:
                client.predict_with_retry(sample,
                                          deadline_ms=args.deadline_ms,
                                          model=args.model_ref)
                outcomes["ok"] += 1
                latencies.append(1000.0 * (time.perf_counter() - sent))
            except RequestShed:
                outcomes["shed"] += 1
            except DeadlineExceeded:
                outcomes["deadline_exceeded"] += 1
            except (RuntimeError, ConnectionError) as error:
                # Server-side engine error or a drain that beat us: still
                # an explicit, counted outcome.
                outcomes["error"] += 1
                print(f"request error: {error}")
        elapsed = time.perf_counter() - started
        try:
            server_view = client.server_metrics()
        except (ConnectionError, OSError):
            server_view = {}
    finally:
        client.close()

    total = max(1, args.requests)
    stats = latency_percentiles(latencies)
    print(format_table(
        ["outcome", "requests", "rate"],
        [[name, count, count / total]
         for name, count in outcomes.items()],
        title=f"serve-bench --client: {args.host}:{args.port} "
              f"(deadline {args.deadline_ms:.0f} ms, "
              f"{args.requests} requests)",
        float_format="{:.3f}",
    ))
    throughput = args.requests / elapsed if elapsed > 0 else 0.0
    print(f"wire latency p50 {stats['p50']:.2f} ms, "
          f"p95 {stats['p95']:.2f} ms, p99 {stats['p99']:.2f} ms "
          f"({throughput:.1f} req/s incl. retries; "
          f"{client.sheds_seen} shed response(s) seen, "
          f"{client.retry_sleep_s * 1000.0:.1f} ms backing off)")
    if args.output:
        save_json({
            "mode": "wire-client",
            "server": {"host": args.host, "port": args.port},
            "requests": args.requests,
            "deadline_ms": args.deadline_ms,
            "outcomes": outcomes,
            "wire_latency": {"throughput_rps": throughput, **stats},
            "client_backoff": {"sheds_seen": client.sheds_seen,
                               "retry_sleep_s": client.retry_sleep_s},
            "server_metrics": server_view.get("metrics", {}),
            "server_obs": server_view.get("obs", {}),
            "server_models": server_view.get("models", []),
            "replicas": server_view.get("replicas", []),
            "meta": machine_meta(backend=args.backend),
            "obs": get_registry().snapshot(),
        }, args.output)
        print(f"wire benchmark summary written to {args.output}")
    return 0


def _cmd_registry(args) -> int:
    """Admin client for a registry-backed ``serve-bench --server``."""
    needs_ref = args.action in ("swap", "canary-start", "canary-rollback")
    if needs_ref and not args.ref:
        raise SystemExit(f"error: registry {args.action} needs a model ref")
    deadline = time.perf_counter() + 10.0
    while True:
        try:
            client = FrontendClient(args.host, args.port, seed=args.seed)
            break
        except OSError:
            if time.perf_counter() >= deadline:
                raise SystemExit(
                    f"error: no server at {args.host}:{args.port}")
            time.sleep(0.25)
    try:
        if args.action == "list":
            models = client.list_models().get("models", [])
            for model in models:
                canary = model.get("canary")
                note = (f", canary {canary['version']} "
                        f"@ {canary['fraction']:.2f}" if canary else "")
                versions = ", ".join(
                    v + (" *" if v == model["serving"] else "")
                    for v in model["versions"])
                print(f"{model['name']}: serving {model['serving']} "
                      f"[{versions}]{note}")
            if not models:
                print("no models registered")
        elif args.action == "swap":
            swapped = client.swap(args.ref)["swapped"]
            print(f"swapped: {swapped['from']} -> {swapped['to']}")
        elif args.action == "canary-start":
            served = client.canary_start(args.ref, args.fraction,
                                         seed=args.canary_seed,
                                         force=args.force)["canary"]
            print(f"canary started: {served}")
        elif args.action == "canary-rollback":
            name, _ = parse_model_ref(args.ref)
            rolled = client.canary_rollback(
                name, reason=args.reason)["rolled_back"]
            print("canary rolled back" if rolled else "no active canary")
        elif args.action == "canary-status":
            name, _ = parse_model_ref(args.ref) if args.ref else (None, None)
            print(json.dumps(client.canary_status(name).get("canary", {}),
                             indent=2, sort_keys=True))
    finally:
        client.close()
    return 0


def _cmd_obs_snapshot(args) -> int:
    _mini_image_size(args)
    if args.artifact:
        artifact = load_artifact(args.artifact)
        _, test_set = _load_dataset(args)
    else:
        artifact, test_set = _train_and_freeze(args)
    engine = build_engine(artifact, backend=args.backend)

    images = test_set.images
    indices = np.arange(args.requests) % len(images)
    stream = images[indices]

    config = ServeConfig(
        max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms,
        backend=args.backend,
    )
    clear_buffer()
    enable_tracing(sample=1.0)
    try:
        with engine, MicroBatcher(engine, config) as batcher:
            batcher.predict_many(list(stream))
    finally:
        disable_tracing()

    registry = get_registry()
    print(registry.render_prometheus())
    if args.trace > 0:
        slowest = slowest_traces(args.trace)
        print(f"{len(slowest)} slowest request trace(s) "
              f"of {args.requests} traced:")
        for trace in slowest:
            print(format_trace(trace))

    if args.output:
        save_json({
            "model": artifact.metadata["model_name"],
            "requests": args.requests,
            "meta": machine_meta(backend=args.backend),
            "obs": registry.snapshot(),
        }, args.output)
        print(f"registry snapshot written to {args.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    # Every subcommand runs under the selected kernel backend (None defers
    # to REPRO_BACKEND / the process default).
    with use_backend(getattr(args, "backend", None)):
        if args.command == "models":
            return _cmd_models()
        if args.command == "train":
            return _cmd_train(args)
        if args.command == "estimate":
            return _cmd_estimate(args)
        if args.command == "export":
            return _cmd_export(args)
        if args.command == "serve-bench":
            return _cmd_serve_bench(args)
        if args.command == "registry":
            return _cmd_registry(args)
        if args.command == "obs-snapshot":
            return _cmd_obs_snapshot(args)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
