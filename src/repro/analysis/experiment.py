"""Experiment records tying benchmark runs to the paper's tables/figures."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.utils.serialization import save_json


@dataclass
class ExperimentResult:
    """One reproduced experiment (a table or figure of the paper)."""

    experiment_id: str
    paper_reference: str
    description: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    results: Dict[str, Any] = field(default_factory=dict)
    paper_values: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""
    timestamp: float = field(default_factory=time.time)

    def record(self, key: str, value: Any) -> None:
        """Add one measured value."""
        self.results[key] = value

    def as_dict(self) -> dict:
        """JSON-serializable record."""
        return {
            "experiment_id": self.experiment_id,
            "paper_reference": self.paper_reference,
            "description": self.description,
            "parameters": self.parameters,
            "results": self.results,
            "paper_values": self.paper_values,
            "notes": self.notes,
            "timestamp": self.timestamp,
        }

    def save(self, directory: Path | str) -> Path:
        """Persist the record as ``<experiment_id>.json`` under ``directory``."""
        directory = Path(directory)
        return save_json(self.as_dict(), directory / f"{self.experiment_id}.json")


@dataclass
class ExperimentSuite:
    """Collection of experiment results for one benchmark session."""

    name: str
    results: Dict[str, ExperimentResult] = field(default_factory=dict)

    def add(self, result: ExperimentResult) -> ExperimentResult:
        """Register a result (experiment ids must be unique)."""
        if result.experiment_id in self.results:
            raise ValueError(f"duplicate experiment id {result.experiment_id!r}")
        self.results[result.experiment_id] = result
        return result

    def get(self, experiment_id: str) -> Optional[ExperimentResult]:
        """Look up a result by id."""
        return self.results.get(experiment_id)

    def save_all(self, directory: Path | str) -> list[Path]:
        """Persist every result; returns the written paths."""
        return [result.save(directory) for result in self.results.values()]
