"""Plain-text table rendering for benchmark output.

The benchmark harnesses print paper-style tables to stdout; these helpers keep
the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an ASCII table with aligned columns."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            elif cell is None:
                rendered.append("-")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line([str(h) for h in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_relative(value: float, reference: float, as_percent: bool = True) -> str:
    """Format ``value`` with its relative difference to ``reference``.

    Mirrors the ``1703.9 (-28.1%)`` style used in Table V of the paper.
    """
    if reference == 0:
        return f"{value:.1f}"
    delta = (value - reference) / reference
    if as_percent:
        return f"{value:.1f} ({delta:+.1%})"
    return f"{value:.1f} ({delta:+.3f})"


def histogram_to_ascii(
    counts: Sequence[float], edges: Sequence[float], width: int = 40, max_rows: int = 20
) -> str:
    """Render a histogram as ASCII bars (used for Figure 3's distributions)."""
    counts = list(counts)
    edges = list(edges)
    if len(edges) != len(counts) + 1:
        raise ValueError("edges must have exactly one more entry than counts")
    if not counts:
        return "(empty histogram)"
    step = max(1, len(counts) // max_rows)
    peak = max(counts) or 1.0
    lines = []
    for start in range(0, len(counts), step):
        stop = min(start + step, len(counts))
        bucket = sum(counts[start:stop])
        bar = "#" * int(round(width * bucket / (peak * step)))
        lines.append(f"[{edges[start]:+.4f}, {edges[stop]:+.4f}) {bar}")
    return "\n".join(lines)
