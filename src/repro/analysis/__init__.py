"""Analysis utilities: gradient statistics, experiment records, reporting."""

from repro.analysis.experiment import ExperimentResult, ExperimentSuite
from repro.analysis.gradient_stats import (
    GradientDistribution,
    collect_first_layer_gradients,
    summarize_gradients,
)
from repro.analysis.reporting import format_relative, format_table, histogram_to_ascii

__all__ = [
    "ExperimentResult",
    "ExperimentSuite",
    "GradientDistribution",
    "collect_first_layer_gradients",
    "summarize_gradients",
    "format_table",
    "format_relative",
    "histogram_to_ascii",
]
