"""Gradient-distribution analysis (Figure 3 and Section IV-A of the paper).

The paper's motivating observation is that the first-layer gradient
distribution becomes sharper (more mass near zero, larger extreme values) as
the network gets deeper, which is what makes direct INT8 gradient
quantization fail.  This module collects first-layer gradients during FP32
backpropagation and summarizes their distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.models.base import ModelBundle
from repro.nn.linear import Linear
from repro.nn.losses import CrossEntropyLoss
from repro.quant.qconfig import QuantConfig
from repro.quant.suq import quantization_error
from repro.utils.rng import RngLike, new_rng


@dataclass
class GradientDistribution:
    """Summary statistics of one gradient tensor population."""

    name: str
    count: int
    mean: float
    std: float
    abs_max: float
    kurtosis: float
    percentile_99_9: float
    histogram: Tuple[np.ndarray, np.ndarray]
    int8_quantization_error: float
    samples: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0))

    @property
    def sharpness(self) -> float:
        """Ratio of the extreme value to the 99.9th percentile.

        A large ratio means the distribution has rare outliers far beyond the
        bulk — exactly the shape that wastes INT8 levels (Figure 3).
        """
        if self.percentile_99_9 == 0.0:
            return float("inf") if self.abs_max > 0 else 1.0
        return self.abs_max / self.percentile_99_9

    def as_dict(self) -> dict:
        """JSON-serializable summary (histogram arrays included as lists)."""
        counts, edges = self.histogram
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "abs_max": self.abs_max,
            "kurtosis": self.kurtosis,
            "percentile_99_9": self.percentile_99_9,
            "sharpness": self.sharpness,
            "int8_quantization_error": self.int8_quantization_error,
            "histogram_counts": counts.tolist(),
            "histogram_edges": edges.tolist(),
        }


def summarize_gradients(
    gradients: np.ndarray, name: str = "gradients", bins: int = 60
) -> GradientDistribution:
    """Compute distribution statistics of a flat gradient sample."""
    flat = np.asarray(gradients, dtype=np.float64).ravel()
    if flat.size == 0:
        raise ValueError("cannot summarize an empty gradient sample")
    mean = float(flat.mean())
    std = float(flat.std())
    centered = flat - mean
    variance = float(np.mean(centered**2))
    kurtosis = float(np.mean(centered**4) / (variance**2 + 1e-24))
    histogram = np.histogram(flat, bins=bins)
    return GradientDistribution(
        name=name,
        count=int(flat.size),
        mean=mean,
        std=std,
        abs_max=float(np.max(np.abs(flat))),
        kurtosis=kurtosis,
        percentile_99_9=float(np.percentile(np.abs(flat), 99.9)),
        histogram=histogram,
        int8_quantization_error=quantization_error(
            flat.astype(np.float32), QuantConfig(rounding="nearest")
        ),
        samples=flat.astype(np.float32),
    )


def collect_first_layer_gradients(
    bundle: ModelBundle,
    dataset: ArrayDataset,
    num_batches: int = 8,
    batch_size: int = 32,
    rng: RngLike = 0,
) -> GradientDistribution:
    """Gradients of the first Linear/Conv layer under FP32 backpropagation.

    The model is *not* updated — this reproduces Figure 3's measurement of
    the gradient distribution at initialization-time training steps.
    """
    rng = new_rng(rng)
    model = bundle.bp_model()
    model.train()
    model.set_activation_caching(True)
    loss_fn = CrossEntropyLoss(dataset.num_classes)
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, rng=rng)

    first_layer: Optional[Linear] = None
    for module in model.modules():
        if isinstance(module, Linear):
            first_layer = module
            break
    if first_layer is None:
        raise ValueError("bundle has no Linear layer to inspect")

    collected: List[np.ndarray] = []
    for batch_index, (images, labels) in enumerate(loader):
        if batch_index >= num_batches:
            break
        inputs = images.reshape(images.shape[0], -1) if bundle.flatten_input else images
        logits = model(inputs)
        _, grad_logits = loss_fn(logits, labels)
        model.zero_grad()
        model.backward(grad_logits)
        if first_layer.weight.grad is not None:
            collected.append(first_layer.weight.grad.copy().ravel())
        model.clear_cache()
    if not collected:
        raise RuntimeError("no gradients were collected (empty dataset?)")
    return summarize_gradients(
        np.concatenate(collected), name=f"{bundle.name}-first-layer"
    )
