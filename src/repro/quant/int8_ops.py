"""Integer GEMM entry points with INT8 operands and exact accumulation.

These kernels are the computational heart of FF-INT8 (Figure 4 of the paper):
the forward activation matmul and the weight-gradient matmul both run on
``int8`` operands, exactly like the INT8 engine on a Jetson Orin Nano.

Since the :mod:`repro.runtime` refactor the actual kernels live in the
pluggable backends (``reference`` keeps the seed INT32-accumulation NumPy
path, ``fast`` uses exact-float32 BLAS GEMMs); this module keeps the
quantization *policy* — SUQ scale derivation, stochastic rounding, the
requantization rescale — and routes every matmul through
:mod:`repro.runtime.dispatch`, which also feeds the operation counters
behind Table IV.  :class:`OpCounts` itself now lives in
:mod:`repro.runtime.instrument` and is re-exported here unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quant.qconfig import QuantConfig
from repro.quant.suq import quantize
from repro.runtime import dispatch
from repro.runtime.backends import integer_matmul
from repro.runtime.instrument import OpCounts, emit_quantize
from repro.utils.rng import RngLike

__all__ = ["OpCounts", "int8_matmul", "Int8Engine"]


def int8_matmul(
    lhs_q: np.ndarray, rhs_q: np.ndarray, counts: Optional[OpCounts] = None
) -> np.ndarray:
    """Integer GEMM with INT32 accumulation (INT64 for wide operands).

    This is the *reference* integer kernel: int8 operands accumulate in
    int32, matching hardware MAC arrays (products are 16-bit, accumulation
    32-bit never overflows for K < 2^16); wider integer operands
    (int16/int32, used by the bit-width ablation) accumulate in int64.
    Backend-routed execution goes through :func:`repro.runtime.dispatch.int8_gemm`
    instead, which may pick a faster exact kernel.
    """
    if lhs_q.dtype.kind != "i" or rhs_q.dtype.kind != "i":
        raise TypeError(
            f"int8_matmul requires signed integer operands, got "
            f"{lhs_q.dtype} and {rhs_q.dtype}"
        )
    if lhs_q.shape[-1] != rhs_q.shape[0]:
        raise ValueError(
            f"inner dimensions do not match: {lhs_q.shape} @ {rhs_q.shape}"
        )
    result = integer_matmul(lhs_q, rhs_q)
    if counts is not None:
        macs = int(lhs_q.shape[0] * lhs_q.shape[-1] * rhs_q.shape[-1])
        counts.int8_mul += macs
        counts.int8_add += macs
    return result


class Int8Engine:
    """Quantized execution engine attached to Linear / Conv2d modules.

    The engine quantizes activations and weights with SUQ + stochastic
    rounding, performs the integer GEMM on the active runtime backend, and
    rescales the exact accumulator back to float32 with the product of the
    two scales — the standard requantization used by integer inference
    engines, applied here to training.
    """

    def __init__(self, config: Optional[QuantConfig] = None, rng: RngLike = None):
        self.config = config if config is not None else QuantConfig()
        self._rng = self.config.rng(rng)
        self.counts = OpCounts()

    # ------------------------------------------------------------------ #
    def _quantize(self, values: np.ndarray, axis: Optional[int] = None):
        q, scale = quantize(values, self.config, axis=axis, rng=self._rng)
        # Scale derivation: one comparison per element (max reduction) and the
        # division/round per element count as FP32 work in Table IV's
        # "quantization phase".
        emit_quantize(int(values.size), self.counts)
        return q, scale

    # ------------------------------------------------------------------ #
    def linear_forward(self, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Compute ``x @ weight.T`` using INT8 operands.

        ``x`` has shape ``(rows, in_features)`` and ``weight`` has shape
        ``(out_features, in_features)``; the result is float32.
        """
        axis = 0 if self.config.per_channel else None
        x_q, x_scale = self._quantize(x)
        w_q, w_scale = self._quantize(weight, axis=axis)
        acc = dispatch.int8_gemm(
            x_q, np.ascontiguousarray(w_q.T), counts=self.counts
        )
        if self.config.per_channel and np.ndim(w_scale) == 1:
            rescale = float(x_scale) * np.asarray(w_scale)[None, :]
        else:
            rescale = float(x_scale) * float(w_scale)
        return (acc.astype(np.float64) * rescale).astype(np.float32)

    def linear_weight_grad(self, grad_output: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Compute ``grad_output.T @ x`` (the weight gradient) in INT8."""
        g_q, g_scale = self._quantize(grad_output)
        x_q, x_scale = self._quantize(x)
        acc = dispatch.int8_gemm(
            np.ascontiguousarray(g_q.T),
            np.ascontiguousarray(x_q),
            counts=self.counts,
        )
        return (acc.astype(np.float64) * (float(g_scale) * float(x_scale))).astype(
            np.float32
        )

    # ------------------------------------------------------------------ #
    def depthwise_forward(self, cols: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Depthwise convolution inner product in INT8.

        ``cols`` has shape ``(positions, channels, kernel_area)`` and
        ``weight`` has shape ``(channels, kernel_area)``.
        """
        c_q, c_scale = self._quantize(cols)
        w_q, w_scale = self._quantize(weight)
        acc = dispatch.int8_depthwise(c_q, w_q, counts=self.counts)
        return (acc.astype(np.float64) * (float(c_scale) * float(w_scale))).astype(
            np.float32
        )

    def depthwise_weight_grad(
        self, grad_matrix: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Depthwise weight gradient ``sum_p grad[p, c] * cols[p, c, k]`` in INT8."""
        g_q, g_scale = self._quantize(grad_matrix)
        c_q, c_scale = self._quantize(cols)
        acc = dispatch.int8_depthwise_grad(g_q, c_q, counts=self.counts)
        return (acc.astype(np.float64) * (float(g_scale) * float(c_scale))).astype(
            np.float32
        )
