"""Integer GEMM kernels with INT8 operands and INT32 accumulation.

These kernels are the computational heart of FF-INT8 (Figure 4 of the paper):
the forward activation matmul and the weight-gradient matmul both run on
``int8`` operands accumulated in ``int32``, exactly like the INT8 engine on a
Jetson Orin Nano.  All kernels also report the number of 8-bit MUL/ADD
operations performed so that :mod:`repro.hardware` can reproduce Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.quant.qconfig import QuantConfig
from repro.quant.suq import compute_scale, quantize
from repro.utils.rng import RngLike


@dataclass
class OpCounts:
    """Cumulative operation counts performed by an integer engine."""

    int8_mul: int = 0
    int8_add: int = 0
    fp32_cmp: int = 0
    fp32_add: int = 0
    fp32_mul: int = 0

    def merge(self, other: "OpCounts") -> None:
        """Accumulate counts from another counter in place."""
        self.int8_mul += other.int8_mul
        self.int8_add += other.int8_add
        self.fp32_cmp += other.fp32_cmp
        self.fp32_add += other.fp32_add
        self.fp32_mul += other.fp32_mul

    def reset(self) -> None:
        """Zero every counter."""
        self.int8_mul = 0
        self.int8_add = 0
        self.fp32_cmp = 0
        self.fp32_add = 0
        self.fp32_mul = 0

    def as_dict(self) -> dict[str, int]:
        """Counts as a plain dictionary (for reports/serialization)."""
        return {
            "int8_mul": self.int8_mul,
            "int8_add": self.int8_add,
            "fp32_cmp": self.fp32_cmp,
            "fp32_add": self.fp32_add,
            "fp32_mul": self.fp32_mul,
        }


def int8_matmul(
    lhs_q: np.ndarray, rhs_q: np.ndarray, counts: Optional[OpCounts] = None
) -> np.ndarray:
    """Integer GEMM with INT32 accumulation (INT64 for wide operands).

    The standard path takes int8 operands and accumulates in int32, matching
    hardware MAC arrays (products are 16-bit, accumulation 32-bit never
    overflows for K < 2^16).  Wider integer operands (int16/int32, used by the
    bit-width ablation) accumulate in int64.
    """
    if lhs_q.dtype.kind != "i" or rhs_q.dtype.kind != "i":
        raise TypeError(
            f"int8_matmul requires signed integer operands, got "
            f"{lhs_q.dtype} and {rhs_q.dtype}"
        )
    if lhs_q.shape[-1] != rhs_q.shape[0]:
        raise ValueError(
            f"inner dimensions do not match: {lhs_q.shape} @ {rhs_q.shape}"
        )
    narrow = lhs_q.dtype == np.int8 and rhs_q.dtype == np.int8
    accumulator = np.int32 if narrow else np.int64
    result = lhs_q.astype(accumulator) @ rhs_q.astype(accumulator)
    if counts is not None:
        macs = int(lhs_q.shape[0] * lhs_q.shape[-1] * rhs_q.shape[-1])
        counts.int8_mul += macs
        counts.int8_add += macs
    return result


class Int8Engine:
    """Quantized execution engine attached to Linear / Conv2d modules.

    The engine quantizes activations and weights with SUQ + stochastic
    rounding, performs the integer GEMM, and rescales the INT32 accumulator
    back to float32 with the product of the two scales — the standard
    requantization used by integer inference engines, applied here to
    training.
    """

    def __init__(self, config: Optional[QuantConfig] = None, rng: RngLike = None):
        self.config = config if config is not None else QuantConfig()
        self._rng = self.config.rng(rng)
        self.counts = OpCounts()

    # ------------------------------------------------------------------ #
    def _quantize(self, values: np.ndarray, axis: Optional[int] = None):
        q, scale = quantize(values, self.config, axis=axis, rng=self._rng)
        # Scale derivation: one comparison per element (max reduction) and the
        # division/round per element count as FP32 work in Table IV's
        # "quantization phase".
        self.counts.fp32_cmp += int(values.size)
        self.counts.fp32_add += int(values.size)
        return q, scale

    # ------------------------------------------------------------------ #
    def linear_forward(self, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Compute ``x @ weight.T`` using INT8 operands.

        ``x`` has shape ``(rows, in_features)`` and ``weight`` has shape
        ``(out_features, in_features)``; the result is float32.
        """
        axis = 0 if self.config.per_channel else None
        x_q, x_scale = self._quantize(x)
        w_q, w_scale = self._quantize(weight, axis=axis)
        acc = int8_matmul(x_q, np.ascontiguousarray(w_q.T), counts=self.counts)
        if self.config.per_channel and np.ndim(w_scale) == 1:
            rescale = float(x_scale) * np.asarray(w_scale)[None, :]
        else:
            rescale = float(x_scale) * float(w_scale)
        return (acc.astype(np.float64) * rescale).astype(np.float32)

    def linear_weight_grad(self, grad_output: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Compute ``grad_output.T @ x`` (the weight gradient) in INT8."""
        g_q, g_scale = self._quantize(grad_output)
        x_q, x_scale = self._quantize(x)
        acc = int8_matmul(
            np.ascontiguousarray(g_q.T), np.ascontiguousarray(x_q), counts=self.counts
        )
        return (acc.astype(np.float64) * (float(g_scale) * float(x_scale))).astype(
            np.float32
        )

    # ------------------------------------------------------------------ #
    def depthwise_forward(self, cols: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Depthwise convolution inner product in INT8.

        ``cols`` has shape ``(positions, channels, kernel_area)`` and
        ``weight`` has shape ``(channels, kernel_area)``.
        """
        c_q, c_scale = self._quantize(cols)
        w_q, w_scale = self._quantize(weight)
        acc = np.einsum(
            "pck,ck->pc", c_q.astype(np.int32), w_q.astype(np.int32), dtype=np.int64
        )
        macs = int(cols.shape[0] * cols.shape[1] * cols.shape[2])
        self.counts.int8_mul += macs
        self.counts.int8_add += macs
        return (acc.astype(np.float64) * (float(c_scale) * float(w_scale))).astype(
            np.float32
        )

    def depthwise_weight_grad(
        self, grad_matrix: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Depthwise weight gradient ``sum_p grad[p, c] * cols[p, c, k]`` in INT8."""
        g_q, g_scale = self._quantize(grad_matrix)
        c_q, c_scale = self._quantize(cols)
        acc = np.einsum(
            "pc,pck->ck", g_q.astype(np.int32), c_q.astype(np.int32), dtype=np.int64
        )
        macs = int(cols.shape[0] * cols.shape[1] * cols.shape[2])
        self.counts.int8_mul += macs
        self.counts.int8_add += macs
        return (acc.astype(np.float64) * (float(g_scale) * float(c_scale))).astype(
            np.float32
        )
