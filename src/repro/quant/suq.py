"""Symmetric uniform quantization (SUQ).

SUQ maps a real tensor ``x`` to integer levels ``q = round(x / scale)`` with a
single (or per-channel) positive ``scale`` chosen so that the extreme value of
``x`` maps to the extreme representable level.  The zero point is always 0,
which is what makes the integer matmul hardware-friendly (no cross terms),
and is the quantizer the paper builds FF-INT8 on (Section IV).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quant.qconfig import QuantConfig
from repro.quant.rounding import apply_rounding
from repro.utils.rng import RngLike


def compute_scale(
    values: np.ndarray,
    qmax: int,
    percentile: Optional[float] = None,
    axis: Optional[int] = None,
    eps: float = 1e-12,
) -> np.ndarray:
    """Return the SUQ scale(s) for ``values``.

    Parameters
    ----------
    values:
        Tensor to be quantized.
    qmax:
        Largest positive integer level (127 for INT8).
    percentile:
        If given, clip the dynamic range at this percentile of ``|values|``
        instead of the absolute maximum (robust to outliers — the mechanism
        GDAI8-style gradient quantizers rely on).
    axis:
        If given, compute one scale per index along ``axis`` (per-channel
        quantization for weights); otherwise a single per-tensor scale.
    """
    magnitude = np.abs(np.asarray(values, dtype=np.float64))
    if axis is None:
        if percentile is None or percentile >= 100.0:
            extreme = magnitude.max() if magnitude.size else 0.0
        else:
            extreme = np.percentile(magnitude, percentile) if magnitude.size else 0.0
        extreme = float(extreme)
        return np.float64(max(extreme, eps) / qmax)

    moved = np.moveaxis(magnitude, axis, 0).reshape(magnitude.shape[axis], -1)
    if percentile is None or percentile >= 100.0:
        extreme = moved.max(axis=1) if moved.size else np.zeros(moved.shape[0])
    else:
        extreme = np.percentile(moved, percentile, axis=1)
    return np.maximum(extreme, eps) / qmax


def quantize(
    values: np.ndarray,
    config: QuantConfig,
    scale: Optional[np.ndarray] = None,
    axis: Optional[int] = None,
    rng: RngLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize ``values`` to integer levels.

    Returns ``(q, scale)`` where ``q`` is an integer array (int8 when
    ``config.bits <= 8``, otherwise int32) and ``scale`` the positive step
    size(s) needed to dequantize (``x ≈ q * scale``).
    """
    values = np.asarray(values, dtype=np.float32)
    if scale is None:
        channel_axis = axis if config.per_channel and axis is not None else None
        scale = compute_scale(
            values, config.qmax, percentile=config.percentile, axis=channel_axis
        )
    scale = np.asarray(scale, dtype=np.float64)
    if axis is not None and scale.ndim == 1:
        broadcast_shape = [1] * values.ndim
        broadcast_shape[axis] = scale.shape[0]
        scale_b = scale.reshape(broadcast_shape)
    else:
        scale_b = scale
    levels = values / scale_b
    rounded = apply_rounding(levels, config.rounding, rng=rng or config.rng())
    clipped = np.clip(rounded, config.qmin, config.qmax)
    if config.bits <= 8:
        dtype = np.int8
    elif config.bits <= 16:
        dtype = np.int16
    else:
        dtype = np.int32
    return clipped.astype(dtype), scale


def dequantize(
    q: np.ndarray, scale: np.ndarray, axis: Optional[int] = None
) -> np.ndarray:
    """Reconstruct real values from integer levels and scale(s)."""
    scale = np.asarray(scale, dtype=np.float64)
    if axis is not None and scale.ndim == 1:
        broadcast_shape = [1] * q.ndim
        broadcast_shape[axis] = scale.shape[0]
        scale = scale.reshape(broadcast_shape)
    return (q.astype(np.float64) * scale).astype(np.float32)


def fake_quantize(
    values: np.ndarray,
    config: QuantConfig,
    axis: Optional[int] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Quantize then immediately dequantize (simulated quantization error).

    Used by the naive BP-INT8 baseline to inject gradient quantization error
    while keeping the update rule in floating point, and by tests that check
    error bounds of the quantizer.
    """
    q, scale = quantize(values, config, axis=axis, rng=rng)
    channel_axis = axis if config.per_channel and axis is not None else None
    return dequantize(q, scale, axis=channel_axis)


def quantization_error(values: np.ndarray, config: QuantConfig) -> float:
    """Mean absolute error introduced by quantizing ``values`` (per-tensor)."""
    reconstructed = fake_quantize(values, config)
    return float(np.mean(np.abs(values - reconstructed)))
