"""INT8 quantization substrate.

Implements symmetric uniform quantization with stochastic rounding, integer
GEMM kernels with INT32 accumulation, range observers, and helpers that attach
quantized execution engines to models.  This is the machinery shared by
FF-INT8 and by the INT8 backpropagation baselines (direct, UI8, GDAI8).
"""

from repro.quant.int8_ops import Int8Engine, OpCounts, int8_matmul
from repro.quant.observers import (
    MinMaxObserver,
    MovingAverageObserver,
    PercentileObserver,
)
from repro.quant.prepare import (
    collect_op_counts,
    is_int8_prepared,
    prepare_int8,
    quantizable_layers,
    strip_int8,
)
from repro.quant.qconfig import QuantConfig, int8_config
from repro.quant.qtensor import QuantizedTensor
from repro.quant.rounding import apply_rounding, round_nearest, round_stochastic
from repro.quant.suq import (
    compute_scale,
    dequantize,
    fake_quantize,
    quantization_error,
    quantize,
)

__all__ = [
    "QuantConfig",
    "int8_config",
    "QuantizedTensor",
    "Int8Engine",
    "OpCounts",
    "int8_matmul",
    "quantize",
    "dequantize",
    "fake_quantize",
    "compute_scale",
    "quantization_error",
    "round_nearest",
    "round_stochastic",
    "apply_rounding",
    "MinMaxObserver",
    "MovingAverageObserver",
    "PercentileObserver",
    "prepare_int8",
    "strip_int8",
    "is_int8_prepared",
    "quantizable_layers",
    "collect_op_counts",
]
