"""Quantization configuration shared by all INT8 code paths."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.utils.rng import RngLike, new_rng


@dataclass
class QuantConfig:
    """Configuration of the symmetric uniform quantizer (SUQ).

    Attributes
    ----------
    bits:
        Operand bit-width; 8 for the paper's INT8 experiments.  Other widths
        (4, 16) are supported for ablations.
    rounding:
        ``"stochastic"`` (paper default, following Gupta et al. 2015) or
        ``"nearest"``.
    per_channel:
        Quantize weights with one scale per output channel instead of one
        per tensor.  Activations and gradients are always per-tensor, as in
        the paper's SUQ formulation.
    percentile:
        Optional clipping percentile in (0, 100] applied when deriving the
        scale from data; ``None``/100 means plain absolute max.  GDAI8-style
        gradient quantization uses a high percentile to ignore outliers.
    seed:
        Seed for the stochastic-rounding noise stream.
    """

    bits: int = 8
    rounding: str = "stochastic"
    per_channel: bool = False
    percentile: Optional[float] = None
    seed: Optional[int] = 0
    _rng: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 32:
            raise ValueError(f"bits must lie in [2, 32], got {self.bits}")
        if self.rounding not in ("stochastic", "nearest"):
            raise ValueError(
                f"rounding must be 'stochastic' or 'nearest', got {self.rounding!r}"
            )
        if self.percentile is not None and not 0.0 < self.percentile <= 100.0:
            raise ValueError(
                f"percentile must lie in (0, 100], got {self.percentile}"
            )

    @property
    def qmax(self) -> int:
        """Largest representable positive integer level (e.g. 127 for INT8)."""
        return 2 ** (self.bits - 1) - 1

    @property
    def qmin(self) -> int:
        """Most negative representable level (symmetric: ``-qmax``)."""
        return -self.qmax

    def rng(self, seed_override: RngLike = None):
        """Return the generator driving stochastic rounding."""
        if seed_override is not None:
            return new_rng(seed_override)
        if self._rng is None:
            object.__setattr__(self, "_rng", new_rng(self.seed))
        return self._rng


def int8_config(**overrides) -> QuantConfig:
    """Convenience constructor for the paper's INT8 setting."""
    params = {"bits": 8, "rounding": "stochastic"}
    params.update(overrides)
    return QuantConfig(**params)
