"""Attach INT8 execution engines to a model's compute-heavy layers.

``prepare_int8`` walks a module tree and gives every :class:`Linear`,
:class:`Conv2d`, and :class:`DepthwiseConv2d` its own :class:`Int8Engine`, so
that their forward GEMM and weight-gradient GEMM execute with INT8 operands.
``strip_int8`` removes the engines (restoring FP32 execution), and
``collect_op_counts`` aggregates the per-layer operation counters for the
hardware model.
"""

from __future__ import annotations

from typing import Optional

from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.quant.int8_ops import Int8Engine, OpCounts
from repro.quant.qconfig import QuantConfig
from repro.utils.rng import RngLike, spawn_rngs

_QUANTIZABLE = (Linear, Conv2d, DepthwiseConv2d)


def quantizable_layers(model: Module) -> list[Module]:
    """Return the compute-heavy layers that support INT8 execution."""
    return [module for module in model.modules() if isinstance(module, _QUANTIZABLE)]


def prepare_int8(
    model: Module,
    config: Optional[QuantConfig] = None,
    seed: RngLike = 0,
) -> Module:
    """Attach an :class:`Int8Engine` to every quantizable layer of ``model``."""
    config = config if config is not None else QuantConfig()
    layers = quantizable_layers(model)
    rngs = spawn_rngs(seed, len(layers)) if layers else []
    for layer, rng in zip(layers, rngs):
        layer.quant_engine = Int8Engine(config, rng=rng)
    return model


def strip_int8(model: Module) -> Module:
    """Remove INT8 engines, restoring full-precision execution."""
    for layer in quantizable_layers(model):
        layer.quant_engine = None
    return model


def is_int8_prepared(model: Module) -> bool:
    """True if every quantizable layer has an attached INT8 engine."""
    layers = quantizable_layers(model)
    return bool(layers) and all(layer.quant_engine is not None for layer in layers)


def collect_op_counts(model: Module, reset: bool = False) -> OpCounts:
    """Aggregate (and optionally reset) op counters across all engines."""
    total = OpCounts()
    for layer in quantizable_layers(model):
        engine = layer.quant_engine
        if engine is None:
            continue
        total.merge(engine.counts)
        if reset:
            engine.counts.reset()
    return total
