"""Rounding modes for quantization.

Stochastic rounding (Gupta et al., ICML 2015) rounds a real value up with
probability equal to its fractional part, making the rounding unbiased in
expectation.  The paper applies it when quantizing layer inputs and gradients
(Section IV-B, Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, new_rng


def round_nearest(values: np.ndarray) -> np.ndarray:
    """Round half away from zero (matches common fixed-point hardware)."""
    return np.sign(values) * np.floor(np.abs(values) + 0.5)


def round_stochastic(values: np.ndarray, rng: RngLike = None) -> np.ndarray:
    """Unbiased stochastic rounding: ``E[round(x)] == x``."""
    rng = new_rng(rng)
    floor = np.floor(values)
    fraction = values - floor
    noise = rng.random(values.shape)
    return floor + (noise < fraction).astype(values.dtype)


def apply_rounding(
    values: np.ndarray, mode: str, rng: RngLike = None
) -> np.ndarray:
    """Dispatch on rounding ``mode`` ('stochastic' or 'nearest')."""
    if mode == "stochastic":
        return round_stochastic(values, rng=rng)
    if mode == "nearest":
        return round_nearest(values)
    raise ValueError(f"unknown rounding mode {mode!r}")
