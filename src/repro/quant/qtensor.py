"""Quantized tensor container.

A :class:`QuantizedTensor` bundles the integer payload with the scale used to
produce it, so downstream code can dequantize or feed it straight into the
integer kernels without re-deriving metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.quant.qconfig import QuantConfig
from repro.quant.suq import dequantize, quantize
from repro.utils.rng import RngLike


@dataclass
class QuantizedTensor:
    """Integer payload plus quantization metadata."""

    q: np.ndarray
    scale: np.ndarray
    bits: int = 8
    channel_axis: Optional[int] = None

    @classmethod
    def from_float(
        cls,
        values: np.ndarray,
        config: QuantConfig,
        axis: Optional[int] = None,
        rng: RngLike = None,
    ) -> "QuantizedTensor":
        """Quantize a float tensor under ``config``."""
        q, scale = quantize(values, config, axis=axis, rng=rng)
        channel_axis = axis if config.per_channel and axis is not None else None
        return cls(q=q, scale=np.asarray(scale), bits=config.bits, channel_axis=channel_axis)

    def to_float(self) -> np.ndarray:
        """Dequantize back to float32."""
        return dequantize(self.q, self.scale, axis=self.channel_axis)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the integer payload."""
        return self.q.shape

    def nbytes(self) -> int:
        """Storage footprint of the integer payload in bytes."""
        bytes_per_element = max(1, (self.bits + 7) // 8)
        return int(self.q.size * bytes_per_element)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantizedTensor(shape={self.q.shape}, bits={self.bits}, "
            f"channel_axis={self.channel_axis})"
        )
