"""Range observers for calibration and gradient-distribution-aware quantizers.

Observers track the dynamic range of a stream of tensors and produce a SUQ
scale.  The GDAI8 baseline uses a percentile observer (robust to the sharp,
heavy-tailed gradient distributions shown in Figure 3 of the paper); the UI8
baseline uses a clipping observer driven by gradient direction deviation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class MinMaxObserver:
    """Track the running absolute maximum of observed tensors."""

    def __init__(self) -> None:
        self.abs_max = 0.0
        self.count = 0

    def observe(self, values: np.ndarray) -> None:
        """Update statistics from one tensor."""
        if values.size:
            self.abs_max = max(self.abs_max, float(np.max(np.abs(values))))
        self.count += 1

    def scale(self, qmax: int, eps: float = 1e-12) -> float:
        """SUQ scale that covers everything observed so far."""
        return max(self.abs_max, eps) / qmax

    def reset(self) -> None:
        """Forget all observations."""
        self.abs_max = 0.0
        self.count = 0


class MovingAverageObserver:
    """Exponential moving average of per-batch absolute maxima.

    Smoother than :class:`MinMaxObserver`; a single outlier batch does not
    permanently inflate the scale.
    """

    def __init__(self, momentum: float = 0.9) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        self.momentum = momentum
        self.abs_max: Optional[float] = None
        self.count = 0

    def observe(self, values: np.ndarray) -> None:
        """Update the moving average with one tensor."""
        if not values.size:
            return
        batch_max = float(np.max(np.abs(values)))
        if self.abs_max is None:
            self.abs_max = batch_max
        else:
            self.abs_max = self.momentum * self.abs_max + (1 - self.momentum) * batch_max
        self.count += 1

    def scale(self, qmax: int, eps: float = 1e-12) -> float:
        """SUQ scale from the smoothed range."""
        current = self.abs_max if self.abs_max is not None else 0.0
        return max(current, eps) / qmax

    def reset(self) -> None:
        """Forget all observations."""
        self.abs_max = None
        self.count = 0


class PercentileObserver:
    """Scale from a percentile of ``|values|`` rather than the maximum.

    This is the core mechanism of gradient-distribution-aware INT8 training:
    sharp gradient distributions (Figure 3) have rare, large outliers; scaling
    to the outlier wastes almost all integer levels on empty range.  Clipping
    at a high percentile keeps resolution where the mass is.
    """

    def __init__(self, percentile: float = 99.9) -> None:
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must lie in (0, 100], got {percentile}")
        self.percentile = percentile
        self.last_value = 0.0
        self.count = 0

    def observe(self, values: np.ndarray) -> None:
        """Record the clipping threshold of one tensor."""
        if values.size:
            self.last_value = float(np.percentile(np.abs(values), self.percentile))
        self.count += 1

    def scale(self, qmax: int, eps: float = 1e-12) -> float:
        """SUQ scale from the most recent percentile threshold."""
        return max(self.last_value, eps) / qmax

    def reset(self) -> None:
        """Forget all observations."""
        self.last_value = 0.0
        self.count = 0
