"""Multilayer perceptron used throughout the paper's MLP experiments.

Table I trains MLPs with 0–3 hidden layers of 500 neurons on MNIST;
Table II / Table V use the 2-hidden-layer variant (1.79 M parameters at the
paper's input size); Table IV counts operations for a 4-layer MLP.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import ModelBundle
from repro.nn.activations import ReLU
from repro.nn.containers import Sequential
from repro.nn.linear import Linear
from repro.utils.rng import RngLike, spawn_rngs


def build_mlp(
    input_shape: tuple[int, ...] = (1, 28, 28),
    num_classes: int = 10,
    hidden_layers: int = 2,
    hidden_units: int = 500,
    seed: RngLike = 0,
) -> ModelBundle:
    """Build an MLP bundle.

    Parameters
    ----------
    input_shape:
        Channel-first sample shape; inputs are flattened before the first
        dense layer.
    hidden_layers:
        Number of hidden layers (0 reproduces the single-layer row of
        Table I: a softmax regression trained directly on pixels).
    hidden_units:
        Width of every hidden layer (500 in the paper).
    """
    if hidden_layers < 0:
        raise ValueError(f"hidden_layers must be >= 0, got {hidden_layers}")
    if hidden_units <= 0:
        raise ValueError(f"hidden_units must be positive, got {hidden_units}")

    in_features = int(np.prod(input_shape))
    rngs = spawn_rngs(seed, hidden_layers + 1)

    blocks = []
    features = in_features
    for layer_index in range(hidden_layers):
        block = Sequential(
            Linear(features, hidden_units, rng=rngs[layer_index]),
            ReLU(),
        )
        blocks.append(block)
        features = hidden_units

    head = Linear(features, num_classes, rng=rngs[-1])
    if not blocks:
        # Zero-hidden-layer model: the "backbone" is the identity mapping of
        # pixels; FF training degenerates to training the head directly, so
        # we expose the head itself as the single block and give BP a fresh
        # head on top.  For Table I only the BP view is used.
        blocks = [Sequential(Linear(in_features, num_classes, rng=rngs[0]), ReLU())]
        head = Linear(num_classes, num_classes, rng=rngs[-1])

    hidden_desc = f"{hidden_layers} hidden x {hidden_units}"
    return ModelBundle(
        name=f"mlp-h{hidden_layers}x{hidden_units}",
        backbone_blocks=blocks,
        head=head,
        input_shape=tuple(input_shape),
        num_classes=num_classes,
        flatten_input=True,
        paper_params_millions=1.79 if hidden_layers == 2 else None,
        description=f"Multilayer perceptron ({hidden_desc}) on flattened input",
        metadata={"hidden_layers": hidden_layers, "hidden_units": hidden_units},
    )
