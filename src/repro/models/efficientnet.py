"""EfficientNet-B0 built from MBConv blocks with squeeze-and-excitation.

Follows Tan & Le (2019) with CIFAR-resolution strides; Table II of the paper
lists 3.39 M parameters for the 10-class variant, which this construction
approximates at width multiplier 1.0.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.models.base import ModelBundle, scaled_width
from repro.nn.activations import Sigmoid, SiLU
from repro.nn.containers import ResidualAdd, Sequential, SqueezeExcite
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.pooling import GlobalAvgPool2d
from repro.utils.rng import RngLike, new_rng

# (expansion, output_channels, repeats, first_stride, kernel_size) per stage.
EFFICIENTNET_B0_CONFIG: Tuple[Tuple[int, int, int, int, int], ...] = (
    (1, 16, 1, 1, 3),
    (6, 24, 2, 1, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
)


def _conv_bn_silu(
    in_channels: int, out_channels: int, kernel: int, stride: int, padding: int, rng
) -> Sequential:
    """Conv → BN → SiLU."""
    return Sequential(
        Conv2d(
            in_channels,
            out_channels,
            kernel,
            stride=stride,
            padding=padding,
            bias=False,
            rng=rng,
        ),
        BatchNorm2d(out_channels),
        SiLU(),
    )


def _squeeze_excite(channels: int, reduced: int, rng) -> SqueezeExcite:
    """Squeeze-and-excitation gate with the standard reduce/expand MLP."""
    gate = Sequential(
        Linear(channels, reduced, rng=rng),
        SiLU(),
        Linear(reduced, channels, rng=rng),
        Sigmoid(),
    )
    return SqueezeExcite(gate)


def mbconv(
    in_channels: int,
    out_channels: int,
    stride: int,
    expansion: int,
    kernel: int,
    se_ratio: float,
    rng,
) -> Module:
    """EfficientNet MBConv block: expand → depthwise → SE → project."""
    hidden = in_channels * expansion
    padding = kernel // 2
    layers = Sequential()
    if expansion != 1:
        layers.append(_conv_bn_silu(in_channels, hidden, 1, 1, 0, rng))
    layers.append(
        Sequential(
            DepthwiseConv2d(
                hidden, kernel, stride=stride, padding=padding, bias=False, rng=rng
            ),
            BatchNorm2d(hidden),
            SiLU(),
        )
    )
    reduced = max(1, int(in_channels * se_ratio))
    layers.append(_squeeze_excite(hidden, reduced, rng))
    layers.append(
        Sequential(
            Conv2d(hidden, out_channels, 1, stride=1, padding=0, bias=False, rng=rng),
            BatchNorm2d(out_channels),
        )
    )
    if stride == 1 and in_channels == out_channels:
        return ResidualAdd(layers)
    return layers


def build_efficientnet_b0(
    input_shape: tuple[int, ...] = (3, 32, 32),
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    config: Sequence[Tuple[int, int, int, int, int]] = EFFICIENTNET_B0_CONFIG,
    last_channels: int = 1280,
    se_ratio: float = 0.25,
    seed: RngLike = 0,
) -> ModelBundle:
    """Build an EfficientNet-B0 bundle (optionally width-scaled)."""
    rng = new_rng(seed)
    stem_channels = scaled_width(32, width_multiplier)
    last = scaled_width(last_channels, max(width_multiplier, 1.0))

    blocks: List[Module] = []
    blocks.append(_conv_bn_silu(input_shape[0], stem_channels, 3, 1, 1, rng))

    in_channels = stem_channels
    for expansion, channels, repeats, first_stride, kernel in config:
        out_channels = scaled_width(channels, width_multiplier)
        for repeat in range(repeats):
            stride = first_stride if repeat == 0 else 1
            blocks.append(
                mbconv(
                    in_channels, out_channels, stride, expansion, kernel, se_ratio, rng
                )
            )
            in_channels = out_channels

    blocks.append(_conv_bn_silu(in_channels, last, 1, 1, 0, rng))
    head = Sequential(GlobalAvgPool2d(), Linear(last, num_classes, rng=rng))

    suffix = "" if width_multiplier == 1.0 and config is EFFICIENTNET_B0_CONFIG else (
        f"-w{width_multiplier}"
    )
    return ModelBundle(
        name=f"efficientnet_b0{suffix}",
        backbone_blocks=blocks,
        head=head,
        input_shape=tuple(input_shape),
        num_classes=num_classes,
        paper_params_millions=3.39,
        description="EfficientNet-B0 with MBConv + squeeze-and-excitation blocks",
        metadata={"width_multiplier": width_multiplier, "se_ratio": se_ratio},
    )
