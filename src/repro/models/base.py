"""Model bundle: one architecture, two training views.

Every benchmark architecture is exposed as a :class:`ModelBundle` holding

* an ordered list of **backbone blocks** — the units the Forward-Forward
  algorithm trains greedily (each block's output activity feeds the goodness
  function), and
* a **head** — the final classifier (pooling + linear) that backpropagation
  trains end-to-end and that FF replaces with goodness-based label probing.

``bp_model()`` assembles the conventional end-to-end network for the
backpropagation baselines; ``ff_units()`` assembles the per-block view with
the inter-layer L2 normalization that FF requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.nn.containers import Sequential
from repro.nn.module import Module
from repro.nn.norm import FFLayerNorm


@dataclass
class ModelBundle:
    """An architecture packaged for both BP and FF training."""

    name: str
    backbone_blocks: List[Module]
    head: Module
    input_shape: Tuple[int, ...]
    num_classes: int
    flatten_input: bool = False
    paper_params_millions: Optional[float] = None
    description: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.backbone_blocks:
            raise ValueError("a model bundle needs at least one backbone block")

    # ------------------------------------------------------------------ #
    def bp_model(self) -> Sequential:
        """End-to-end network (backbone blocks followed by the head)."""
        model = Sequential()
        for index, block in enumerate(self.backbone_blocks):
            model.append(block, name=f"block{index}")
        model.append(self.head, name="head")
        return model

    def ff_units(
        self, normalize_between: bool = True, normalize_input: bool = True
    ) -> List[Module]:
        """Backbone blocks wrapped for Forward-Forward training.

        Each unit is preceded by an :class:`FFLayerNorm`: for hidden units
        this prevents a layer's goodness from being inferred from the raw
        magnitude of the previous layer's activity (Hinton 2022, Section 2);
        for the first unit it normalizes the overlaid input so that the
        initial goodness starts below the threshold θ instead of orders of
        magnitude above it, which keeps the early negative-pass pressure from
        collapsing the layer into dead ReLUs.
        """
        units: List[Module] = []
        for index, block in enumerate(self.backbone_blocks):
            wrap = normalize_between if index > 0 else normalize_input
            if wrap:
                units.append(Sequential(FFLayerNorm(), block))
            else:
                units.append(block)
        return units

    # ------------------------------------------------------------------ #
    def num_parameters(self) -> int:
        """Total trainable parameters across backbone and head."""
        return self.bp_model().num_parameters()

    def block_parameters(self) -> List[int]:
        """Per-block parameter counts (used by the memory model)."""
        return [block.num_parameters() for block in self.backbone_blocks]

    def summary(self) -> dict:
        """Human-readable summary used by reports and tests."""
        return {
            "name": self.name,
            "input_shape": self.input_shape,
            "num_classes": self.num_classes,
            "num_blocks": len(self.backbone_blocks),
            "parameters": self.num_parameters(),
            "paper_params_millions": self.paper_params_millions,
        }


def scaled_width(base: int, multiplier: float, divisor: int = 8, floor: int = 4) -> int:
    """Scale a channel count by ``multiplier`` and round to a friendly value.

    Mirrors the "make divisible" rule used by MobileNet/EfficientNet so that
    reduced-scale benchmark variants keep hardware-friendly channel counts.
    """
    value = int(base * multiplier)
    if multiplier >= 1.0:
        rounded = max(divisor, (value + divisor // 2) // divisor * divisor)
    else:
        rounded = max(floor, value)
    return rounded
