"""Model registry mapping paper benchmark names to factory functions.

Two tiers are registered for every architecture:

* the **paper-scale** configuration (full width/depth) used by the hardware
  cost model to report parameter counts comparable to Table II, and
* a **mini** configuration, small enough to train end-to-end in pure NumPy,
  used by the runnable tests/benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.models.base import ModelBundle
from repro.models.efficientnet import EFFICIENTNET_B0_CONFIG, build_efficientnet_b0
from repro.models.mlp import build_mlp
from repro.models.mobilenet_v2 import MOBILENET_V2_CONFIG, build_mobilenet_v2
from repro.models.resnet import build_resnet18

ModelFactory = Callable[..., ModelBundle]

_REGISTRY: Dict[str, ModelFactory] = {}

# Reduced stage configurations used by the "mini" convolutional variants: same
# block types and stride pattern, fewer repeats and narrower channels.
MOBILENET_V2_MINI_CONFIG = (
    (1, 8, 1, 1),
    (4, 12, 1, 2),
    (4, 16, 1, 2),
    (4, 24, 1, 2),
)
EFFICIENTNET_B0_MINI_CONFIG = (
    (1, 8, 1, 1, 3),
    (4, 12, 1, 2, 3),
    (4, 16, 1, 2, 5),
    (4, 24, 1, 2, 3),
)


def register_model(name: str, factory: ModelFactory) -> None:
    """Add a factory to the registry (name must be unique)."""
    if name in _REGISTRY:
        raise ValueError(f"model {name!r} is already registered")
    _REGISTRY[name] = factory


def available_models() -> List[str]:
    """Sorted list of registered model names."""
    return sorted(_REGISTRY)


def build_model(name: str, **kwargs) -> ModelBundle:
    """Instantiate a registered model by name."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        )
    return _REGISTRY[name](**kwargs)


# --------------------------------------------------------------------------- #
# paper-scale registrations (Table II)
# --------------------------------------------------------------------------- #
register_model("mlp", build_mlp)
register_model("resnet18", build_resnet18)
register_model("mobilenet_v2", build_mobilenet_v2)
register_model("efficientnet_b0", build_efficientnet_b0)


# --------------------------------------------------------------------------- #
# mini variants for runnable NumPy experiments
# --------------------------------------------------------------------------- #
def _mlp_mini(**kwargs) -> ModelBundle:
    defaults = dict(hidden_layers=2, hidden_units=64, input_shape=(1, 14, 14))
    defaults.update(kwargs)
    return build_mlp(**defaults)


def _resnet18_mini(**kwargs) -> ModelBundle:
    defaults = dict(width_multiplier=0.125, blocks_per_stage=1, input_shape=(3, 16, 16))
    defaults.update(kwargs)
    return build_resnet18(**defaults)


def _mobilenet_v2_mini(**kwargs) -> ModelBundle:
    defaults = dict(
        width_multiplier=0.5,
        config=MOBILENET_V2_MINI_CONFIG,
        last_channels=64,
        input_shape=(3, 16, 16),
    )
    defaults.update(kwargs)
    return build_mobilenet_v2(**defaults)


def _efficientnet_b0_mini(**kwargs) -> ModelBundle:
    defaults = dict(
        width_multiplier=0.5,
        config=EFFICIENTNET_B0_MINI_CONFIG,
        last_channels=64,
        input_shape=(3, 16, 16),
    )
    defaults.update(kwargs)
    return build_efficientnet_b0(**defaults)


register_model("mlp-mini", _mlp_mini)
register_model("resnet18-mini", _resnet18_mini)
register_model("mobilenet_v2-mini", _mobilenet_v2_mini)
register_model("efficientnet_b0-mini", _efficientnet_b0_mini)

# Mapping used by the Table V harness: benchmark row name -> (paper-scale
# registry name, mini registry name, dataset family).
PAPER_BENCHMARKS = {
    "MLP": {"full": "mlp", "mini": "mlp-mini", "dataset": "mnist"},
    "MobileNet-v2": {
        "full": "mobilenet_v2",
        "mini": "mobilenet_v2-mini",
        "dataset": "cifar10",
    },
    "EfficientNet-B0": {
        "full": "efficientnet_b0",
        "mini": "efficientnet_b0-mini",
        "dataset": "cifar10",
    },
    "ResNet-18": {"full": "resnet18", "mini": "resnet18-mini", "dataset": "cifar10"},
}
