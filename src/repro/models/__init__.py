"""Benchmark architectures from Table II of the paper.

Every architecture is exposed as a :class:`~repro.models.base.ModelBundle`
providing both the end-to-end view (for backpropagation baselines) and the
block-decomposed view (for Forward-Forward training).
"""

from repro.models.base import ModelBundle, scaled_width
from repro.models.efficientnet import EFFICIENTNET_B0_CONFIG, build_efficientnet_b0
from repro.models.mlp import build_mlp
from repro.models.mobilenet_v2 import MOBILENET_V2_CONFIG, build_mobilenet_v2
from repro.models.registry import (
    PAPER_BENCHMARKS,
    available_models,
    build_model,
    register_model,
)
from repro.models.resnet import basic_block, build_resnet18

__all__ = [
    "ModelBundle",
    "scaled_width",
    "build_mlp",
    "build_resnet18",
    "basic_block",
    "build_mobilenet_v2",
    "MOBILENET_V2_CONFIG",
    "build_efficientnet_b0",
    "EFFICIENTNET_B0_CONFIG",
    "build_model",
    "register_model",
    "available_models",
    "PAPER_BENCHMARKS",
]
