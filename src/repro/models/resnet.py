"""ResNet-18 (CIFAR variant) built from the NumPy substrate.

The CIFAR-style ResNet-18 uses a 3x3 stem (no max-pool) and four stages of
two BasicBlocks with widths 64/128/256/512, which matches the 11.19 M
parameter count reported in Table II of the paper for 10 classes.

A ``width_multiplier`` and ``blocks_per_stage`` knob produce reduced-scale
variants that pure-NumPy training can afford; the residual topology — the
property that matters for the look-ahead experiments of Figure 6(b) — is
preserved at any scale.
"""

from __future__ import annotations

from typing import List

from repro.models.base import ModelBundle, scaled_width
from repro.nn.activations import ReLU
from repro.nn.containers import ResidualAdd, Sequential
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.pooling import GlobalAvgPool2d
from repro.utils.rng import RngLike, new_rng


def _conv_bn(
    in_channels: int,
    out_channels: int,
    kernel_size: int,
    stride: int,
    padding: int,
    rng,
    relu: bool = True,
) -> Sequential:
    """Conv → BatchNorm (→ ReLU) building block."""
    layers = Sequential(
        Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            bias=False,
            rng=rng,
        ),
        BatchNorm2d(out_channels),
    )
    if relu:
        layers.append(ReLU())
    return layers


def basic_block(in_channels: int, out_channels: int, stride: int, rng) -> Module:
    """ResNet BasicBlock: two 3x3 convs with an identity/projection skip."""
    branch = Sequential(
        _conv_bn(in_channels, out_channels, 3, stride, 1, rng, relu=True),
        _conv_bn(out_channels, out_channels, 3, 1, 1, rng, relu=False),
    )
    shortcut: Module
    if stride != 1 or in_channels != out_channels:
        shortcut = _conv_bn(in_channels, out_channels, 1, stride, 0, rng, relu=False)
    else:
        shortcut = None
    return Sequential(ResidualAdd(branch, shortcut), ReLU())


def build_resnet18(
    input_shape: tuple[int, ...] = (3, 32, 32),
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    blocks_per_stage: int = 2,
    seed: RngLike = 0,
) -> ModelBundle:
    """Build a ResNet-18-style bundle.

    With default arguments this is the full CIFAR ResNet-18 (≈11.2 M
    parameters).  ``width_multiplier < 1`` and/or ``blocks_per_stage = 1``
    produce the reduced variants used by the runnable benchmarks.
    """
    if blocks_per_stage < 1:
        raise ValueError(f"blocks_per_stage must be >= 1, got {blocks_per_stage}")
    rng = new_rng(seed)
    stage_widths = [
        scaled_width(width, width_multiplier) for width in (64, 128, 256, 512)
    ]

    blocks: List[Module] = []
    stem_width = stage_widths[0]
    blocks.append(_conv_bn(input_shape[0], stem_width, 3, 1, 1, rng, relu=True))

    in_channels = stem_width
    for stage_index, width in enumerate(stage_widths):
        for block_index in range(blocks_per_stage):
            stride = 2 if (stage_index > 0 and block_index == 0) else 1
            blocks.append(basic_block(in_channels, width, stride, rng))
            in_channels = width

    head = Sequential(GlobalAvgPool2d(), Linear(in_channels, num_classes, rng=rng))

    suffix = "" if width_multiplier == 1.0 and blocks_per_stage == 2 else (
        f"-w{width_multiplier}b{blocks_per_stage}"
    )
    return ModelBundle(
        name=f"resnet18{suffix}",
        backbone_blocks=blocks,
        head=head,
        input_shape=tuple(input_shape),
        num_classes=num_classes,
        paper_params_millions=11.19,
        description="ResNet-18 (CIFAR stem) with BasicBlock residual stages",
        metadata={
            "width_multiplier": width_multiplier,
            "blocks_per_stage": blocks_per_stage,
            "stage_widths": stage_widths,
        },
    )
