"""MobileNet-V2 built from inverted residual (linear bottleneck) blocks.

Follows Sandler et al. (2018) with the CIFAR-resolution stem (stride 1) so the
32x32 synthetic CIFAR-10 input is not collapsed too early.  With the default
width multiplier the parameter count lands near the 2.24 M the paper reports
in Table II for 10 classes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.models.base import ModelBundle, scaled_width
from repro.nn.activations import ReLU6
from repro.nn.containers import ResidualAdd, Sequential
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.pooling import GlobalAvgPool2d
from repro.utils.rng import RngLike, new_rng

# (expansion, output_channels, repeats, first_stride) per stage — Table 2 of
# the MobileNet-V2 paper, with the stride-2 stages adapted to 32x32 input.
MOBILENET_V2_CONFIG: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 1),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _conv_bn_relu6(
    in_channels: int, out_channels: int, kernel: int, stride: int, padding: int, rng
) -> Sequential:
    """Pointwise/standard conv → BN → ReLU6."""
    return Sequential(
        Conv2d(
            in_channels,
            out_channels,
            kernel,
            stride=stride,
            padding=padding,
            bias=False,
            rng=rng,
        ),
        BatchNorm2d(out_channels),
        ReLU6(),
    )


def inverted_residual(
    in_channels: int, out_channels: int, stride: int, expansion: int, rng
) -> Module:
    """MobileNet-V2 inverted residual block.

    expand (1x1) → depthwise (3x3) → project (1x1, linear).  The skip
    connection is used when the block preserves shape, which is the case the
    paper highlights as problematic for vanilla FF training.
    """
    hidden = in_channels * expansion
    layers = Sequential()
    if expansion != 1:
        layers.append(_conv_bn_relu6(in_channels, hidden, 1, 1, 0, rng))
    layers.append(
        Sequential(
            DepthwiseConv2d(hidden, 3, stride=stride, padding=1, bias=False, rng=rng),
            BatchNorm2d(hidden),
            ReLU6(),
        )
    )
    layers.append(
        Sequential(
            Conv2d(hidden, out_channels, 1, stride=1, padding=0, bias=False, rng=rng),
            BatchNorm2d(out_channels),
        )
    )
    if stride == 1 and in_channels == out_channels:
        return ResidualAdd(layers)
    return layers


def build_mobilenet_v2(
    input_shape: tuple[int, ...] = (3, 32, 32),
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    config: Sequence[Tuple[int, int, int, int]] = MOBILENET_V2_CONFIG,
    last_channels: int = 1280,
    seed: RngLike = 0,
) -> ModelBundle:
    """Build a MobileNet-V2 bundle (optionally width-scaled)."""
    rng = new_rng(seed)
    stem_channels = scaled_width(32, width_multiplier)
    last = scaled_width(last_channels, max(width_multiplier, 1.0))

    blocks: List[Module] = []
    blocks.append(_conv_bn_relu6(input_shape[0], stem_channels, 3, 1, 1, rng))

    in_channels = stem_channels
    for expansion, channels, repeats, first_stride in config:
        out_channels = scaled_width(channels, width_multiplier)
        for repeat in range(repeats):
            stride = first_stride if repeat == 0 else 1
            blocks.append(
                inverted_residual(in_channels, out_channels, stride, expansion, rng)
            )
            in_channels = out_channels

    blocks.append(_conv_bn_relu6(in_channels, last, 1, 1, 0, rng))
    head = Sequential(GlobalAvgPool2d(), Linear(last, num_classes, rng=rng))

    suffix = "" if width_multiplier == 1.0 and config is MOBILENET_V2_CONFIG else (
        f"-w{width_multiplier}"
    )
    return ModelBundle(
        name=f"mobilenet_v2{suffix}",
        backbone_blocks=blocks,
        head=head,
        input_shape=tuple(input_shape),
        num_classes=num_classes,
        paper_params_millions=2.24,
        description="MobileNet-V2 with inverted residual bottleneck blocks",
        metadata={"width_multiplier": width_multiplier, "last_channels": last},
    )
