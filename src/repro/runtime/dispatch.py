"""Kernel dispatch: one entry point per dense kernel, for every caller.

The nn layers, the training :class:`~repro.quant.int8_ops.Int8Engine`, and
the serving :class:`~repro.serve.engine.FrozenInt8Kernel` all execute their
GEMMs through the functions in this module.  Dispatch does three things:

* resolve the **active backend** (per-step pin from :func:`pin_backend` >
  explicit argument > thread-local override from :func:`use_backend` >
  ``REPRO_BACKEND`` env var > process default),
* run the kernel on that backend,
* report the operation to per-engine :class:`OpCounts` records and to any
  registered :mod:`instrumentation <repro.runtime.instrument>` hooks — so op
  accounting lives here exactly once, whatever backend executes.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.runtime import instrument
from repro.runtime.backends import Backend, available_backends, get_backend
from repro.runtime.instrument import OpCounts

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Process-wide default when neither an override nor the env var is set.
#: ``fast`` is bit-identical to ``reference`` on every input, so the default
#: is purely a throughput choice.
DEFAULT_BACKEND = "fast"

_process_default: Optional[str] = None
_overrides = threading.local()

BackendLike = Union[str, Backend, None]


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default backend."""
    if name is not None:
        get_backend(name)  # validate eagerly
    global _process_default
    _process_default = name


def default_backend_name() -> str:
    """The backend name used when nothing more specific is in force."""
    if _process_default is not None:
        return _process_default
    return os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND


def active_backend(backend: BackendLike = None) -> Backend:
    """Resolve the backend for one kernel call.

    A per-layer pin (see :func:`pin_backend`) outranks even an explicit
    ``backend`` argument: the pin names exactly one plan step, which is more
    specific than an engine- or config-level default that some caller
    threaded through as an argument.
    """
    pins = getattr(_overrides, "pins", None)
    if pins:
        return pins[-1]
    if backend is not None:
        return get_backend(backend)
    stack = getattr(_overrides, "stack", None)
    if stack:
        return stack[-1]
    return get_backend(default_backend_name())


@contextmanager
def use_backend(backend: BackendLike) -> Iterator[Backend]:
    """Thread-locally route all dispatched kernels to ``backend``.

    ``None`` is accepted and leaves the ambient selection untouched, so
    configs can pass their optional backend field straight through.
    """
    if backend is None:
        yield active_backend()
        return
    resolved = get_backend(backend)
    stack = getattr(_overrides, "stack", None)
    if stack is None:
        stack = []
        _overrides.stack = stack
    stack.append(resolved)
    try:
        yield resolved
    finally:
        stack.pop()


def autopin(plan, batch_rows=None, cases=None):
    """Resolve every GEMM step of ``plan`` to its measured backend winner.

    Thin forwarding wrapper over :func:`repro.runtime.autopin.autopin`
    (imported lazily — the autopin pass pulls in the plan layer, which the
    dispatch module must not import eagerly).  Exposed here because
    dispatch is where backend selection lives; ``pins="auto"`` on a config
    or ``--pin auto`` on the CLI reach the same pass.
    """
    from repro.runtime.autopin import autopin as _autopin

    return _autopin(plan, batch_rows=batch_rows, cases=cases)


@contextmanager
def pin_backend(backend: BackendLike) -> Iterator[Backend]:
    """Route kernels to ``backend`` as a *per-layer pin* for the block.

    The executor wraps each pinned :class:`~repro.runtime.plan.KernelStep`
    in this scope; unlike :func:`use_backend` it outranks explicit backend
    arguments, so a frozen serving kernel constructed with an engine-level
    backend still honours the pin of the layer it is executing.  ``None``
    leaves the ambient selection untouched.
    """
    if backend is None:
        yield active_backend()
        return
    resolved = get_backend(backend)
    pins = getattr(_overrides, "pins", None)
    if pins is None:
        pins = []
        _overrides.pins = pins
    pins.append(resolved)
    try:
        yield resolved
    finally:
        pins.pop()


# --------------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------------- #
def matmul(
    a: np.ndarray, b: np.ndarray, backend: BackendLike = None
) -> np.ndarray:
    """Full-precision GEMM ``a @ b`` (instrumented as FP32 MACs)."""
    out = active_backend(backend).matmul(a, b)
    if instrument.hooks_active():
        instrument.emit_fp32_macs(
            int(np.prod(a.shape[:-1], dtype=np.int64)) * int(a.shape[-1])
            * int(b.shape[-1])
        )
    return out


def int8_gemm(
    lhs_q: np.ndarray,
    rhs_q: np.ndarray,
    counts: Optional[OpCounts] = None,
    backend: BackendLike = None,
) -> np.ndarray:
    """Exact integer GEMM ``lhs_q @ rhs_q`` with MAC accounting.

    Operands must be signed integers; the accumulator dtype is
    backend-specific (int32/int64, or float32 holding exact integers).
    """
    if lhs_q.dtype.kind != "i" or rhs_q.dtype.kind != "i":
        raise TypeError(
            f"int8_gemm requires signed integer operands, got "
            f"{lhs_q.dtype} and {rhs_q.dtype}"
        )
    if lhs_q.shape[-1] != rhs_q.shape[0]:
        raise ValueError(
            f"inner dimensions do not match: {lhs_q.shape} @ {rhs_q.shape}"
        )
    out = active_backend(backend).int8_gemm(lhs_q, rhs_q)
    macs = int(lhs_q.shape[0] * lhs_q.shape[-1] * rhs_q.shape[-1])
    instrument.emit_int8_macs(macs, counts)
    return out


def int8_depthwise(
    cols_q: np.ndarray,
    weight_q: np.ndarray,
    counts: Optional[OpCounts] = None,
    backend: BackendLike = None,
) -> np.ndarray:
    """Exact integer depthwise inner product with MAC accounting."""
    out = active_backend(backend).int8_depthwise(cols_q, weight_q)
    macs = int(cols_q.shape[0] * cols_q.shape[1] * cols_q.shape[2])
    instrument.emit_int8_macs(macs, counts)
    return out


def int8_depthwise_grad(
    grad_q: np.ndarray,
    cols_q: np.ndarray,
    counts: Optional[OpCounts] = None,
    backend: BackendLike = None,
) -> np.ndarray:
    """Exact integer depthwise weight gradient with MAC accounting."""
    out = active_backend(backend).int8_depthwise_grad(grad_q, cols_q)
    macs = int(cols_q.shape[0] * cols_q.shape[1] * cols_q.shape[2])
    instrument.emit_int8_macs(macs, counts)
    return out


def rowwise_quantized_gemm(
    x: np.ndarray,
    rhs_q: np.ndarray,
    qmax: int = 127,
    rhs_f32: Optional[np.ndarray] = None,
    exact_f32: bool = False,
    counts: Optional[OpCounts] = None,
    backend: BackendLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused per-row quantize + integer GEMM (serving hot path)."""
    acc, scales = active_backend(backend).rowwise_quantized_gemm(
        x, rhs_q, qmax, rhs_f32=rhs_f32, exact_f32=exact_f32
    )
    instrument.emit_quantize(int(np.asarray(x).size), counts)
    macs = int(np.asarray(x).shape[0] * rhs_q.shape[0] * rhs_q.shape[1])
    instrument.emit_int8_macs(macs, counts)
    return acc, scales


def fused_matmul_bias_act(
    x: np.ndarray,
    weight_t: np.ndarray,
    bias: Optional[np.ndarray] = None,
    act=None,
    backend: BackendLike = None,
) -> np.ndarray:
    """Fused ``act(x @ weight_t + bias)`` (instrumented as the GEMM's MACs).

    Bias addition and activation are elementwise passes that Table IV's MAC
    accounting never counted on the unfused path either, so the fused step
    attributes exactly the constituent GEMM's FP32 MACs — fusion changes the
    allocation profile, never the op accounting.
    """
    out = active_backend(backend).fused_matmul_bias_act(x, weight_t, bias, act)
    if instrument.hooks_active():
        instrument.emit_fp32_macs(
            int(np.prod(x.shape[:-1], dtype=np.int64)) * int(x.shape[-1])
            * int(weight_t.shape[-1])
        )
    return out


def rowwise_quantize(
    values: np.ndarray,
    qmax: int = 127,
    counts: Optional[OpCounts] = None,
    backend: BackendLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Materialized per-row quantization with scale-derivation accounting."""
    q, scales = active_backend(backend).rowwise_quantize(values, qmax)
    instrument.emit_quantize(int(np.asarray(values).size), counts)
    return q, scales


__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_backend",
    "set_default_backend",
    "default_backend_name",
    "active_backend",
    "use_backend",
    "pin_backend",
    "autopin",
    "matmul",
    "fused_matmul_bias_act",
    "int8_gemm",
    "int8_depthwise",
    "int8_depthwise_grad",
    "rowwise_quantized_gemm",
    "rowwise_quantize",
]
