"""Measured auto-pinning: resolve per-layer backends from timing data.

Hand-written ``--pin`` specs encode a human's guess about which backend wins
at which layer shape; with four backends (``reference``/``fast``/
``parallel``/``shard``) that guess does not scale.  This module turns the
guess into a measurement:

* :func:`load_recorded_cases` reads the committed kernel microbenchmark
  record (``benchmarks/results/kernel_micro.json``) and keeps it only when
  its ``meta`` sysinfo block matches the machine it is running on and it
  covers every candidate backend — a record measured on different hardware
  (or before a backend existed) is *stale* and is ignored.
* :func:`calibrate` times the serving-shaped fused quantize+GEMM at the
  exact layer shapes of a compiled plan, in-process, in a ~100 ms budget
  (small best-of repeats, rows capped).  It fills in whenever the recorded
  data is absent or stale, and its results are cached per shape set.
* :func:`autopin` (and :func:`autopin_steps`, the pass ``compile_plan``
  runs for ``pins="auto"``) rewrites each GEMM-bearing
  :class:`~repro.runtime.plan.KernelStep` with ``backend=`` the measured
  winner for its ``(rows, reduce_dim)`` shape.

Only the exact, bit-identical builtin backends are candidates
(:data:`AUTOPIN_CANDIDATES`): auto-pinning is a pure performance decision
and must never route a layer onto an unverified user-registered backend.
Non-GEMM steps (conv im2col, depthwise, norms outside fused groups) keep
the ambient backend selection.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.registry import get_registry
from repro.runtime.plan import KernelStep
from repro.utils.sysinfo import machine_meta, same_machine

# Routing decisions published into the registry: how often in-process
# calibration ran (each one is ~100 ms a fresh kernel_micro record would
# have saved), what it cost, and which backend each auto-pinned step
# actually landed on — the live answer to "where is traffic routed?".
_OBS = get_registry()
_CALIBRATIONS = _OBS.counter(
    "repro_autopin_calibrations_total",
    help="In-process autopin calibration runs.")
_CALIBRATION_MS = _OBS.gauge(
    "repro_autopin_calibration_ms",
    help="Wall-clock of the most recent autopin calibration, ms.")


def _count_pinned_step(backend: str) -> None:
    _OBS.counter(
        "repro_autopin_steps_total",
        help="Plan steps auto-pinned, by winning backend.",
        backend=backend,
    ).inc()

#: backends auto-pinning may choose between, in preference order for ties —
#: all bit-identical, so a wrong pick can only cost time, never a number.
AUTOPIN_CANDIDATES = ("fast", "parallel", "shard")

#: default expected GEMM rows when the caller gives no batch hint: the
#: serve-shaped folded readout (10 label overlays x 32 coalesced requests).
DEFAULT_BATCH_ROWS = 320

#: environment override for the recorded-timings file.
KERNEL_MICRO_ENV_VAR = "REPRO_KERNEL_MICRO"

#: calibration budget knobs: best-of repeats and a cap on synthetic rows
#: (a winner at the cap generalizes upward — the crossovers are monotone in
#: rows for the row-tiled backends).
_CALIBRATE_REPEATS = 3
_CALIBRATE_MAX_ROWS = 1024

#: in-process calibration cache: shape/candidates -> timings (ms).
_calibration_cache: Dict[tuple, Dict[str, float]] = {}


class TimingCase:
    """One measured GEMM shape with per-backend wall-clock timings (ms)."""

    __slots__ = ("rows", "reduce_dim", "cols", "timings")

    def __init__(self, rows: int, reduce_dim: int, cols: int,
                 timings: Dict[str, float]) -> None:
        self.rows = int(rows)
        self.reduce_dim = int(reduce_dim)
        self.cols = int(cols)
        self.timings = dict(timings)

    def distance(self, rows: int, reduce_dim: int) -> float:
        """Log-space distance from this case to a query shape."""
        return abs(math.log(max(rows, 1) / max(self.rows, 1))) + abs(
            math.log(max(reduce_dim, 1) / max(self.reduce_dim, 1))
        )

    def __repr__(self) -> str:
        return (
            f"TimingCase(rows={self.rows}, reduce={self.reduce_dim}, "
            f"cols={self.cols}, timings={self.timings})"
        )


# --------------------------------------------------------------------------- #
# recorded timings (kernel_micro.json)
# --------------------------------------------------------------------------- #
def _default_record_path() -> Path:
    override = os.environ.get(KERNEL_MICRO_ENV_VAR)
    if override:
        return Path(override)
    # src/repro/runtime/ -> repo root; only meaningful for source checkouts,
    # which is where the committed benchmark records live.
    return (
        Path(__file__).resolve().parents[3]
        / "benchmarks" / "results" / "kernel_micro.json"
    )


def record_is_fresh(record: dict, candidates: Sequence[str]) -> bool:
    """True when a kernel_micro record speaks for *this* machine and setup.

    Wall-clock crossovers move with the CPU, the core count, and the
    BLAS/NumPy build; a record from any other combination must not steer
    routing here.  It must also cover every candidate backend — a record
    written before a backend existed cannot rank it.
    """
    if not same_machine(record.get("meta"), machine_meta()):
        return False
    kernels = (record.get("results") or {}).get("kernels") or {}
    for case in ("gemm_large", "rowwise_serve"):
        timings = kernels.get(case) or {}
        if not all(name in timings for name in candidates):
            return False
    return True


def cases_from_record(record: dict) -> List[TimingCase]:
    """Timing cases for the record's dense-GEMM shapes (rows, K, N).

    ``conv_cols`` (the im2col'd conv GEMM shape, present in records written
    since the conv serving path landed) rides along when available, so
    conv-shaped plan steps resolve against a measured conv point instead of
    the nearest dense one.
    """
    parameters = record.get("parameters") or {}
    kernels = (record.get("results") or {}).get("kernels") or {}
    cases = []
    for name in ("rowwise_serve", "gemm_large", "conv_cols"):
        shape = parameters.get(name)
        timings = kernels.get(name)
        if shape and timings:
            cases.append(TimingCase(shape[0], shape[1], shape[2], timings))
    return cases


def load_recorded_cases(
    path: Optional[os.PathLike] = None,
    candidates: Sequence[str] = AUTOPIN_CANDIDATES,
) -> Optional[List[TimingCase]]:
    """Recorded timing cases, or ``None`` when absent/stale for this CPU."""
    record_path = Path(path) if path is not None else _default_record_path()
    try:
        record = json.loads(record_path.read_text())
    except (OSError, ValueError):
        return None
    if not record_is_fresh(record, candidates):
        return None
    cases = cases_from_record(record)
    return cases or None


# --------------------------------------------------------------------------- #
# in-process calibration
# --------------------------------------------------------------------------- #
def time_rowwise_kernel(
    backend,
    rows: int,
    reduce_dim: int,
    cols: int,
    repeats: int = _CALIBRATE_REPEATS,
    seed: int = 0,
) -> float:
    """Best-of wall-clock (ms) of one fused quantize+GEMM case.

    The single timing harness every measured routing decision shares —
    :func:`calibrate` ranks backends with it and
    :meth:`ShardBackend.calibrate_min_rows <repro.runtime.backends.shard.ShardBackend.calibrate_min_rows>`
    finds its delegation crossover with it — so the two calibrations can
    never measure subtly different things.  Operands are seeded, so equal
    (shape, seed) calls time identical data.
    """
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(rows, reduce_dim)).astype(np.float32)
    rhs = rng.integers(-127, 128, size=(reduce_dim, cols)).astype(np.int8)
    backend.rowwise_quantized_gemm(x, rhs, 127)  # warm-up
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        backend.rowwise_quantized_gemm(x, rhs, 127)
        best = min(best, time.perf_counter() - started)
    return 1000.0 * best


def calibrate(
    shapes: Sequence[Tuple[int, int, int]],
    candidates: Sequence[str] = AUTOPIN_CANDIDATES,
    repeats: int = _CALIBRATE_REPEATS,
    seed: int = 0,
) -> List[TimingCase]:
    """Time the fused quantize+GEMM at ``shapes`` on each candidate backend.

    The serving hot kernel (``rowwise_quantized_gemm``) stands in for the
    whole dense-GEMM surface: the backends differ by their tiling/IPC
    strategy, not by kernel-specific constants, so its crossover ranks them
    for ``int8_gemm`` and the fused plan steps too.  Results are cached per
    (shape, candidates) for the life of the process; a full calibration of
    a few layer shapes stays in a ~100 ms budget.

    The measurement models the serving steady state — one weight operand
    reused across repeats, so shard's fingerprint staging is a cache hit
    exactly as it is for a frozen engine.  Training-style workloads that
    re-derive weights per step pay shard a per-call staging cost this
    ranking does not include (their batches normally delegate below the
    shard row threshold, where the ranking is unaffected).
    """
    from repro.runtime.backends import available_backends, get_backend

    registered = set(available_backends())
    names = [name for name in candidates if name in registered]
    # Pool-owning backends whose workers the *measurement* starts (process
    # pools, or the thread pool shard's delegated path uses) are released
    # again afterwards: a candidate that loses everywhere would otherwise
    # keep workers alive with no engine owning (and eventually closing)
    # them.  Winners restart their pool lazily on the first real kernel
    # call, and staged weight segments survive (stop_workers, not
    # shutdown).
    idle_before = [
        backend for backend in (get_backend(name) for name in names)
        if not getattr(backend, "workers_active", True)
    ]
    measured = False
    calibration_started = time.perf_counter()
    cases = []
    for rows, reduce_dim, cols in shapes:
        rows_c = max(1, min(int(rows), _CALIBRATE_MAX_ROWS))
        key = (rows_c, int(reduce_dim), int(cols), tuple(names),
               int(repeats), int(seed))
        timings = _calibration_cache.get(key)
        if timings is None:
            measured = True
            timings = {
                name: time_rowwise_kernel(
                    get_backend(name), rows_c, reduce_dim, cols,
                    repeats=repeats, seed=seed,
                )
                for name in names
            }
            _calibration_cache[key] = timings
        cases.append(TimingCase(rows_c, reduce_dim, cols, timings))
    if measured:
        _CALIBRATIONS.inc()
        _CALIBRATION_MS.set(
            (time.perf_counter() - calibration_started) * 1e3
        )
        for backend in idle_before:
            if getattr(backend, "workers_active", False):
                # Workers-only teardown: a full shutdown would also unlink
                # weight segments that other engines staged against this
                # (shared) backend instance.
                backend.stop_workers()
    return cases


def clear_calibration_cache() -> None:
    """Forget in-process calibration measurements (tests, CPU migration)."""
    _calibration_cache.clear()


# --------------------------------------------------------------------------- #
# resolution
# --------------------------------------------------------------------------- #
def gemm_shape(step: KernelStep) -> Optional[Tuple[int, int]]:
    """``(reduce_dim, cols)`` of the GEMM a step executes, if any.

    Covers the dense GEMMs (:class:`Linear`) and the im2col-lowered
    convolutions (:class:`Conv2d`), whose weight ``(out_c, C, kh, kw)``
    flattens to the ``(C*kh*kw, out_c)`` GEMM operand.  Depthwise steps are
    not GEMMs (their reduction is a per-position inner product) and return
    ``None`` — they keep the ambient backend selection.
    """
    for sub in step.constituents:
        if sub.kind not in ("gemm", "conv"):
            continue
        module = sub.module
        engine = getattr(module, "quant_engine", None)
        weight_qt = getattr(engine, "weight_qT", None)
        if weight_qt is not None and getattr(weight_qt, "ndim", 0) == 2:
            return int(weight_qt.shape[0]), int(weight_qt.shape[1])
        weight = getattr(getattr(module, "weight", None), "data", None)
        if weight is not None and weight.ndim >= 2:
            # Linear: (out, in); Conv2d: (out, C, kh, kw) — both reduce
            # over everything but the leading output axis.
            return (
                int(np.prod(weight.shape[1:], dtype=np.int64)),
                int(weight.shape[0]),
            )
    return None


def _propagate_shape(step: KernelStep, shape):
    """Next per-sample activation shape after ``step``, or ``None``.

    Best-effort shape inference used to scale the expected GEMM rows by
    the conv feature-map positions (``rows = batch * out_h * out_w``).
    Opaque ``module`` steps (residual blocks, SE gates) stop propagation —
    downstream conv steps then fall back to the bare batch height, which
    is conservative: it can only under-pin toward the small-rows winner.
    """
    if shape is None:
        return None
    for sub in step.constituents:
        module = sub.module
        kind = sub.kind
        if kind in ("conv", "depthwise", "pool"):
            output_shape = getattr(module, "output_shape", None)
            if callable(output_shape) and len(shape) == 3:
                try:
                    shape = tuple(
                        int(v) for v in output_shape((1,) + tuple(shape))[1:]
                    )
                except Exception:
                    return None
            elif kind == "pool" and len(shape) == 3 and not hasattr(
                module, "kernel_size"
            ):
                shape = (shape[0],)  # global average pool -> (C,)
            elif kind == "pool" and len(shape) == 3:
                from repro.nn.functional import conv_output_size

                kh, kw = module.kernel_size
                sh, sw = module.stride
                ph, pw = getattr(module, "padding", (0, 0))
                try:
                    shape = (
                        shape[0],
                        conv_output_size(shape[1], kh, sh, ph),
                        conv_output_size(shape[2], kw, sw, pw),
                    )
                except ValueError:
                    return None
            else:
                return None
        elif kind == "reshape":
            shape = (int(np.prod(shape, dtype=np.int64)),)
        elif kind == "gemm":
            weight = getattr(getattr(module, "weight", None), "data", None)
            if weight is None:
                return None
            shape = (int(weight.shape[0]),)
        elif kind in ("norm", "activation", "dropout", "identity"):
            continue
        else:  # opaque composite: output shape unknowable here
            return None
    return shape


def _step_rows(
    steps: Sequence[KernelStep],
    batch_rows: int,
    input_shape: Optional[Sequence[int]],
) -> List[int]:
    """Expected GEMM rows per step: batch height x conv spatial positions."""
    rows = []
    shape = tuple(int(v) for v in input_shape) if input_shape else None
    for step in steps:
        step_rows = batch_rows
        if shape is not None and len(shape) == 3 and any(
            sub.kind == "conv" for sub in step.constituents
        ):
            conv = next(
                sub for sub in step.constituents if sub.kind == "conv"
            )
            try:
                _, _, out_h, out_w = conv.module.output_shape(
                    (1,) + shape
                )
                step_rows = batch_rows * int(out_h) * int(out_w)
            except Exception:
                pass
        rows.append(step_rows)
        shape = _propagate_shape(step, shape)
    return rows


def resolve_backend(
    rows: int,
    reduce_dim: int,
    cases: Sequence[TimingCase],
    candidates: Sequence[str] = AUTOPIN_CANDIDATES,
) -> Optional[str]:
    """The measured winner for a GEMM shape (nearest case in log space)."""
    best_case = None
    for case in cases:
        if not any(name in case.timings for name in candidates):
            continue
        if best_case is None or case.distance(rows, reduce_dim) < (
            best_case.distance(rows, reduce_dim)
        ):
            best_case = case
    if best_case is None:
        return None
    winner = None
    for name in candidates:  # candidate order breaks exact ties
        ms = best_case.timings.get(name)
        if ms is not None and (winner is None or ms < best_case.timings[winner]):
            winner = name
    return winner


def autopin_steps(
    steps: Sequence[KernelStep],
    batch_rows: Optional[int] = None,
    cases: Optional[Sequence[TimingCase]] = None,
    candidates: Sequence[str] = AUTOPIN_CANDIDATES,
    input_shape: Optional[Sequence[int]] = None,
) -> List[KernelStep]:
    """Rewrite GEMM-bearing steps with their measured backend winner.

    ``cases`` defaults to the committed kernel microbenchmark record when
    it is fresh for this machine, else to an in-process calibration over
    the plan's own layer shapes.  GEMM-bearing steps include the im2col'd
    convolutions: with ``input_shape`` (the per-sample ``(C, H, W)``) their
    expected rows scale by the conv's feature-map positions — the height
    the sharded column blocks actually run at.  Steps without a resolvable
    GEMM shape (depthwise, pools, opaque modules) pass through unpinned.
    """
    from dataclasses import replace

    rows = int(batch_rows) if batch_rows else DEFAULT_BATCH_ROWS
    shapes = [gemm_shape(step) for step in steps]
    step_rows = _step_rows(steps, rows, input_shape)
    if cases is None:
        cases = load_recorded_cases(candidates=candidates)
    if cases is None:
        wanted = sorted(
            {
                (r, k, n)
                for r, shape in zip(step_rows, shapes)
                if shape
                for k, n in [shape]
            }
        )
        cases = calibrate(wanted, candidates=candidates) if wanted else []
    pinned = []
    for step, shape, r in zip(steps, shapes, step_rows):
        if shape is None:
            pinned.append(step)
            continue
        winner = resolve_backend(r, shape[0], cases, candidates)
        if winner:
            _count_pinned_step(winner)
        pinned.append(replace(step, backend=winner) if winner else step)
    return pinned


def autopin(
    plan,
    batch_rows: Optional[int] = None,
    cases: Optional[Sequence[TimingCase]] = None,
    candidates: Sequence[str] = AUTOPIN_CANDIDATES,
    input_shape: Optional[Sequence[int]] = None,
):
    """A copy of ``plan`` with every GEMM step pinned to its measured winner.

    ``batch_rows`` is the expected GEMM batch height (for serving: the
    coalesced batch times the folded label count); it defaults to the
    serve-shaped :data:`DEFAULT_BATCH_ROWS`.  ``input_shape`` lets conv
    steps scale that height by their feature-map positions.  See
    :func:`autopin_steps` for the timing-source resolution order.
    """
    from dataclasses import replace as dc_replace

    steps = autopin_steps(
        plan.steps, batch_rows=batch_rows, cases=cases,
        candidates=candidates, input_shape=input_shape,
    )
    return dc_replace(plan, steps=steps)


__all__ = [
    "AUTOPIN_CANDIDATES",
    "DEFAULT_BATCH_ROWS",
    "KERNEL_MICRO_ENV_VAR",
    "TimingCase",
    "record_is_fresh",
    "cases_from_record",
    "load_recorded_cases",
    "time_rowwise_kernel",
    "calibrate",
    "clear_calibration_cache",
    "gemm_shape",
    "resolve_backend",
    "autopin_steps",
    "autopin",
]
