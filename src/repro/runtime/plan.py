"""Plan compiler: flatten an FF unit stack into a list of kernel steps.

``compile_plan`` walks the module tree of every unit and lowers it to a flat
sequence of :class:`KernelStep`\\ s — gemm, conv, depthwise, norm,
activation, pool, dropout, reshape — in execution order.  Only
:class:`~repro.nn.containers.Sequential` containers are dissolved (their
forward *is* the sequence); structured modules such as residual adds and
squeeze-excite gates stay opaque ``module`` steps so their exact gradient
topology is preserved.

Two optimization passes run over the lowered steps:

* **Per-layer backend pinning** (``pins=``): individual steps carry a
  backend override (``"gemm"``, ``"unit0"``, ``"unit1.gemm"`` specs) that
  :mod:`repro.runtime.dispatch` resolves as the most specific selection —
  wide layers can run the tiled ``parallel`` kernels while narrow ones stay
  on single-threaded BLAS.
* **Fusion** (``fuse=True``, the default): adjacent ``norm→gemm``,
  ``gemm→activation`` and ``norm→gemm→activation`` runs inside one unit
  collapse into a single ``fused`` step, and so do the convolutional
  serving blocks — ``conv→batchnorm→activation``, ``depthwise→batchnorm→
  activation`` and ``gemm→batchnorm→activation`` (eval-mode BatchNorm is
  folded into the GEMM epilogue as an exact per-channel affine, applied in
  the im2col column layout before the NCHW transpose).  The executor runs
  fused steps through the backend's ``fused_*`` kernels without
  materializing the intermediate module outputs; backends that do not
  support fusion (the ``reference`` oracle), training-mode steps that must
  fill activation caches or update BatchNorm running statistics, and
  instrumented runs all fall back to the original step-by-step module walk
  — so fusion never changes a number, only the amount of allocation
  between kernels.

The compiled :class:`ExecutionPlan` is what every forward path in the repo
executes (training, label-probe classification, softmax readout features,
and batched serving) via :class:`~repro.runtime.executor.PlanExecutor`; the
kernels inside each step route through :mod:`repro.runtime.dispatch` and the
selected backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.activations import LeakyReLU, ReLU, ReLU6, Sigmoid, SiLU, Tanh
from repro.nn.containers import Sequential
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.dropout import Dropout
from repro.nn.functional import sigmoid
from repro.nn.linear import Linear
from repro.nn.module import Identity, Module
from repro.nn.norm import FFLayerNorm, _BatchNormBase
from repro.nn.pooling import AvgPool2d, Flatten, GlobalAvgPool2d, MaxPool2d

#: step kinds a plan can contain (``reshape`` is the synthetic input flatten,
#: ``fused`` a collapsed norm/gemm/activation run)
STEP_KINDS = (
    "gemm",
    "conv",
    "depthwise",
    "norm",
    "activation",
    "pool",
    "dropout",
    "identity",
    "reshape",
    "module",
    "fused",
)

_KIND_BY_TYPE = (
    (Linear, "gemm"),
    (Conv2d, "conv"),
    (DepthwiseConv2d, "depthwise"),
    (_BatchNormBase, "norm"),
    (FFLayerNorm, "norm"),
    ((ReLU, ReLU6, LeakyReLU, Sigmoid, SiLU, Tanh), "activation"),
    ((MaxPool2d, AvgPool2d, GlobalAvgPool2d), "pool"),
    (Flatten, "reshape"),
    (Dropout, "dropout"),
    (Identity, "identity"),
)


def step_kind(module: Module) -> str:
    """Classify a leaf (or opaque composite) module into a step kind."""
    for types, kind in _KIND_BY_TYPE:
        if isinstance(module, types):
            return kind
    return "module"


# --------------------------------------------------------------------------- #
# fused activation appliers
# --------------------------------------------------------------------------- #
def _apply_relu(out: np.ndarray) -> np.ndarray:
    # Masked store rather than np.maximum: identical to the module's
    # ``np.where(x > 0, x, 0.0)`` even for NaN (mapped to 0) and -0.0.
    out[~(out > 0.0)] = 0.0
    return out


def _apply_relu6(out: np.ndarray) -> np.ndarray:
    np.clip(out, 0.0, 6.0, out=out)
    return out


def _apply_sigmoid(out: np.ndarray) -> np.ndarray:
    return sigmoid(out)


def _apply_silu(out: np.ndarray) -> np.ndarray:
    sig = sigmoid(out)
    out *= sig
    return out


def _apply_tanh(out: np.ndarray) -> np.ndarray:
    np.tanh(out, out=out)
    return out


def activation_applier(module: Module) -> Optional[Callable[[np.ndarray], np.ndarray]]:
    """In-place applier matching ``module``'s forward arithmetic, or ``None``.

    Appliers operate on a freshly-allocated float32 GEMM output, so they are
    free to mutate it; each computes exactly the values the activation module
    would produce on finite inputs (the parity the fusion tests pin down).
    Unknown activation types return ``None`` and block fusion.
    """
    kind = type(module)
    if kind is ReLU:
        return _apply_relu
    if kind is ReLU6:
        return _apply_relu6
    if kind is LeakyReLU:
        slope = module.negative_slope

        def _apply_leaky(out: np.ndarray) -> np.ndarray:
            return np.where(out > 0, out, slope * out).astype(np.float32)

        return _apply_leaky
    if kind is Sigmoid:
        return _apply_sigmoid
    if kind is SiLU:
        return _apply_silu
    if kind is Tanh:
        return _apply_tanh
    return None


@dataclass(frozen=True)
class KernelStep:
    """One executable step of a compiled plan.

    ``backend`` is an optional per-step pin resolved by
    :func:`repro.runtime.dispatch.pin_backend` (the most specific backend
    selection there is).  ``fused`` holds the constituent steps of a
    ``kind == "fused"`` step, in execution order.
    """

    kind: str
    module: Optional[Module]
    unit_index: int
    is_unit_output: bool = False
    backend: Optional[str] = None
    fused: Tuple["KernelStep", ...] = ()

    @property
    def constituents(self) -> Tuple["KernelStep", ...]:
        """The original unfused steps this step executes (itself if unfused)."""
        return self.fused if self.kind == "fused" else (self,)

    @property
    def quantized(self) -> bool:
        """True when the step's GEMM runs through an attached INT8 engine."""
        return any(
            getattr(step.module, "quant_engine", None) is not None
            for step in self.constituents
        )

    def describe(self) -> str:
        if self.kind == "fused":
            name = "+".join(
                type(step.module).__name__ for step in self.fused
            )
        else:
            name = type(self.module).__name__ if self.module is not None else "-"
        flags = []
        if self.quantized:
            flags.append("int8")
        if self.backend is not None:
            flags.append(f"pin={self.backend}")
        if self.is_unit_output:
            flags.append("unit-out")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"unit{self.unit_index}: {self.kind:<10} {name}{suffix}"


@dataclass
class ExecutionPlan:
    """A flat kernel-step program over an ordered stack of FF units."""

    steps: List[KernelStep]
    unit_modules: List[Module]
    flatten_input: bool = False
    unit_step_counts: List[int] = field(default_factory=list)

    @property
    def num_units(self) -> int:
        return len(self.unit_modules)

    def describe(self) -> str:
        """Human-readable listing of the compiled steps."""
        header = (
            f"ExecutionPlan: {len(self.steps)} steps over {self.num_units} "
            f"units (flatten_input={self.flatten_input})"
        )
        return "\n".join([header] + [f"  {step.describe()}" for step in self.steps])

    # ------------------------------------------------------------------ #
    def training_flags(self) -> List[bool]:
        """Top-level training flag of every unit (for save/restore)."""
        return [unit.training for unit in self.unit_modules]

    def restore_training_flags(self, flags: Sequence[bool]) -> None:
        for unit, mode in zip(self.unit_modules, flags):
            unit.train(mode)

    def eval(self) -> None:
        for unit in self.unit_modules:
            unit.eval()


def _lower_module(
    module: Module, unit_index: int, steps: List[KernelStep]
) -> None:
    """Recursively lower one module into kernel steps."""
    if isinstance(module, Sequential):
        for child in module.layers():
            _lower_module(child, unit_index, steps)
        return
    steps.append(KernelStep(step_kind(module), module, unit_index))


# --------------------------------------------------------------------------- #
# per-layer backend pinning
# --------------------------------------------------------------------------- #
#: kinds a pin spec may name: everything compile_plan lowers to, except
#: ``fused`` — pins are applied *before* the fusion pass (they decide what
#: may fuse), so a ``fused`` spec could never match; pin the constituent
#: kinds (``norm``/``gemm``/``activation``) instead.
_PINNABLE_KINDS = tuple(kind for kind in STEP_KINDS if kind != "fused")

#: sentinel pin spec: resolve every layer's backend from measured timings
#: (see :func:`repro.runtime.autopin.autopin`) instead of a hand-written
#: mapping.  Accepted everywhere a pin mapping is (``FFConfig.pins``,
#: ``ServeConfig.pins``, CLI ``--pin auto``).
AUTO_PINS = "auto"


def _valid_pin_key(key: str) -> bool:
    """True for ``"<kind>"``, ``"unit<N>"`` and ``"unit<N>.<kind>"`` specs."""
    if key in _PINNABLE_KINDS:
        return True
    base, dot, kind = key.partition(".")
    if not (base.startswith("unit") and base[len("unit"):].isdigit()):
        return False
    return not dot or kind in _PINNABLE_KINDS


def _pin_candidates(step: KernelStep) -> Tuple[str, ...]:
    """Pin spec keys matching ``step``, most specific first."""
    return (
        f"unit{step.unit_index}.{step.kind}",
        f"unit{step.unit_index}",
        step.kind,
    )


def validate_pins(pins):
    """Eagerly validate pin spec keys and backend names.

    Raises on malformed keys and unregistered backends; whether a pin
    actually matches a step is only known at :func:`compile_plan` time.
    Returns the mapping unchanged so configs can validate-and-store.  The
    :data:`AUTO_PINS` sentinel (``"auto"``) passes through — its resolution
    is measured, not declared.
    """
    from repro.runtime.backends import get_backend

    if pins == AUTO_PINS:
        return pins
    for key, backend_name in pins.items():
        if not _valid_pin_key(key):
            raise ValueError(
                f"invalid pin spec {key!r}; expected '<kind>', 'unit<N>' or "
                f"'unit<N>.<kind>' with kind in {_PINNABLE_KINDS} "
                f"('fused' steps take the pin of their constituents)"
            )
        get_backend(backend_name)  # fail fast on unknown backends
    return pins


def _apply_pins(
    steps: List[KernelStep], pins: Dict[str, str]
) -> List[KernelStep]:
    """Attach per-step backend overrides from a pin-spec mapping.

    Keys are ``"<kind>"`` (every step of that kind), ``"unit<N>"`` (every
    step of unit N) or ``"unit<N>.<kind>"``; the most specific match wins.
    Backend names are validated eagerly and every pin must match at least
    one step, so config typos fail at compile time instead of silently
    running on the wrong kernels.
    """
    validate_pins(pins)
    matched: set = set()
    pinned: List[KernelStep] = []
    for step in steps:
        backend_name = None
        for candidate in _pin_candidates(step):
            if candidate in pins:
                if backend_name is None:
                    backend_name = pins[candidate]
                # A generic spec shadowed by a more specific one on every
                # step it covers still "matched" — it is not a typo.
                matched.add(candidate)
        pinned.append(
            replace(step, backend=backend_name) if backend_name else step
        )
    unmatched = sorted(set(pins) - matched)
    if unmatched:
        raise ValueError(
            f"pin specs {unmatched} matched no step of the compiled plan; "
            f"steps are {[step.describe() for step in steps]}"
        )
    return pinned


# --------------------------------------------------------------------------- #
# fusion pass
# --------------------------------------------------------------------------- #
#: module types allowed as the GEMM-bearing core of a fused group, by kind.
_FUSABLE_CORES = {
    "gemm": Linear,
    "conv": Conv2d,
    "depthwise": DepthwiseConv2d,
}


def _core_channels(step: KernelStep) -> int:
    """Output channel/feature count of a fusable core step."""
    module = step.module
    if step.kind == "gemm":
        return int(module.weight.data.shape[0])
    if step.kind == "conv":
        return int(module.out_channels)
    return int(module.channels)


def batchnorm_foldable(norm: KernelStep, core: KernelStep) -> bool:
    """True when ``norm`` is a BatchNorm the fused core epilogue can absorb.

    Eval-mode BatchNorm after a conv/linear is a per-output-channel affine
    — exactly representable as an elementwise pass over the GEMM output
    (in the im2col column layout for convolutions, where channels are the
    trailing axis).  Structural check only: training-mode refusal (running
    statistics must mutate) happens at execution time, where the mode is
    actually known.
    """
    return (
        isinstance(norm.module, _BatchNormBase)
        and norm.module.num_features == _core_channels(core)
    )


def _fusable_group(
    steps: List[KernelStep], start: int
) -> Optional[Tuple[KernelStep, ...]]:
    """The longest fusable run starting at ``start``, if any.

    Two families of runs collapse: ``[FFLayerNorm] → Linear → [activation]``
    (the dense FF stack) and ``conv|depthwise|gemm → [BatchNorm] →
    [activation]`` (the conv/serving blocks — eval-mode BatchNorm folds
    into the core's epilogue, see :func:`batchnorm_foldable`).  Constituents
    must belong to the same unit and carry the same backend pin; a
    constituent that is a unit output can only be the group's last element
    (the goodness function taps unit outputs, so intermediate activities
    inside a fused step must not be observable ones).  Training-mode
    BatchNorm never executes fused — the executor falls back to the module
    walk so running statistics update exactly as before.
    """
    index = start
    norm: Optional[KernelStep] = None
    first = steps[index]
    if (
        first.kind == "norm"
        and type(first.module) is FFLayerNorm
        and not first.is_unit_output
        and index + 1 < len(steps)
    ):
        norm = first
        index += 1
    core = steps[index] if index < len(steps) else None
    if core is None or type(core.module) is not _FUSABLE_CORES.get(core.kind):
        return None
    if norm is not None and core.kind != "gemm":
        # FFLayerNorm pre-normalization only pairs with the dense GEMM (the
        # FF stack shape); a conv after it stays step-per-module.
        return None
    if norm is not None and (
        core.unit_index != norm.unit_index or core.backend != norm.backend
    ):
        return None
    index += 1
    post: Optional[KernelStep] = None
    if not core.is_unit_output and index < len(steps):
        candidate = steps[index]
        if (
            candidate.kind == "norm"
            and candidate.unit_index == core.unit_index
            and candidate.backend == core.backend
            and batchnorm_foldable(candidate, core)
        ):
            post = candidate
            index += 1
    tail = post if post is not None else core
    act: Optional[KernelStep] = None
    if not tail.is_unit_output and index < len(steps):
        candidate = steps[index]
        if (
            candidate.kind == "activation"
            and candidate.unit_index == core.unit_index
            and candidate.backend == core.backend
            and activation_applier(candidate.module) is not None
        ):
            act = candidate
    group = tuple(step for step in (norm, core, post, act) if step is not None)
    return group if len(group) >= 2 else None


def _fuse_steps(steps: List[KernelStep]) -> List[KernelStep]:
    """Collapse fusable norm/gemm/activation runs into ``fused`` steps."""
    fused_steps: List[KernelStep] = []
    index = 0
    while index < len(steps):
        group = _fusable_group(steps, index)
        if group is None:
            fused_steps.append(steps[index])
            index += 1
            continue
        last = group[-1]
        fused_steps.append(
            KernelStep(
                "fused",
                None,
                last.unit_index,
                last.is_unit_output,
                backend=last.backend,
                fused=group,
            )
        )
        index += len(group)
    return fused_steps


def compile_plan(
    units: Sequence[Module],
    flatten_input: bool = False,
    fuse: bool = True,
    pins=None,
    auto_rows: Optional[int] = None,
    auto_input_shape: Optional[Sequence[int]] = None,
) -> ExecutionPlan:
    """Compile an ordered FF unit stack into an :class:`ExecutionPlan`.

    Each unit's final step is tagged ``is_unit_output`` — those are the
    activities the goodness function taps and the per-unit boundaries the
    trainer updates at.  ``pins`` attaches per-step backend overrides (see
    :func:`_apply_pins` for the spec syntax, or :data:`AUTO_PINS` to
    resolve every layer from measured timings — ``auto_rows`` then names
    the expected GEMM batch rows and ``auto_input_shape`` the per-sample
    ``(C, H, W)`` so conv steps scale those rows by their feature-map
    positions) and ``fuse`` (default on) collapses norm/gemm/conv/
    activation runs into fused steps; every pass preserves the executed
    arithmetic exactly.
    """
    if not units:
        raise ValueError("cannot compile a plan over zero units")
    steps: List[KernelStep] = []
    for unit_index, unit in enumerate(units):
        before = len(steps)
        _lower_module(unit, unit_index, steps)
        if len(steps) == before:
            # An empty Sequential still forwards its input unchanged; keep a
            # step so the unit has an output boundary.
            steps.append(KernelStep("identity", unit, unit_index))
        last = steps[-1]
        steps[-1] = KernelStep(last.kind, last.module, last.unit_index, True)
    if pins and pins != AUTO_PINS:
        steps = _apply_pins(steps, dict(pins))
    if fuse:
        steps = _fuse_steps(steps)
    if pins == AUTO_PINS:
        # Auto-pinning runs after fusion so a fused step is routed once, by
        # the shape of its constituent GEMM (lazy import: autopin pulls the
        # benchmark-record loader, which plan compilation never needs).
        from repro.runtime.autopin import autopin_steps

        steps = autopin_steps(
            steps, batch_rows=auto_rows, input_shape=auto_input_shape
        )
    unit_step_counts = [0] * len(units)
    for step in steps:
        unit_step_counts[step.unit_index] += 1
    return ExecutionPlan(
        steps=steps,
        unit_modules=list(units),
        flatten_input=flatten_input,
        unit_step_counts=unit_step_counts,
    )


__all__ = [
    "STEP_KINDS",
    "AUTO_PINS",
    "step_kind",
    "activation_applier",
    "batchnorm_foldable",
    "validate_pins",
    "KernelStep",
    "ExecutionPlan",
    "compile_plan",
]
