"""Plan compiler: flatten an FF unit stack into a list of kernel steps.

``compile_plan`` walks the module tree of every unit and lowers it to a flat
sequence of :class:`KernelStep`\\ s — gemm, conv, depthwise, norm,
activation, pool, dropout, reshape — in execution order.  Only
:class:`~repro.nn.containers.Sequential` containers are dissolved (their
forward *is* the sequence); structured modules such as residual adds and
squeeze-excite gates stay opaque ``module`` steps so their exact gradient
topology is preserved.

The compiled :class:`ExecutionPlan` is what every forward path in the repo
executes (training, label-probe classification, softmax readout features,
and batched serving) via :class:`~repro.runtime.executor.PlanExecutor`; the
kernels inside each step route through :mod:`repro.runtime.dispatch` and the
selected backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.nn.activations import LeakyReLU, ReLU, ReLU6, Sigmoid, SiLU, Tanh
from repro.nn.containers import Sequential
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Identity, Module
from repro.nn.norm import FFLayerNorm, _BatchNormBase
from repro.nn.pooling import AvgPool2d, Flatten, GlobalAvgPool2d, MaxPool2d

#: step kinds a plan can contain (``reshape`` is the synthetic input flatten)
STEP_KINDS = (
    "gemm",
    "conv",
    "depthwise",
    "norm",
    "activation",
    "pool",
    "dropout",
    "identity",
    "reshape",
    "module",
)

_KIND_BY_TYPE = (
    (Linear, "gemm"),
    (Conv2d, "conv"),
    (DepthwiseConv2d, "depthwise"),
    (_BatchNormBase, "norm"),
    (FFLayerNorm, "norm"),
    ((ReLU, ReLU6, LeakyReLU, Sigmoid, SiLU, Tanh), "activation"),
    ((MaxPool2d, AvgPool2d, GlobalAvgPool2d), "pool"),
    (Flatten, "reshape"),
    (Dropout, "dropout"),
    (Identity, "identity"),
)


def step_kind(module: Module) -> str:
    """Classify a leaf (or opaque composite) module into a step kind."""
    for types, kind in _KIND_BY_TYPE:
        if isinstance(module, types):
            return kind
    return "module"


@dataclass(frozen=True)
class KernelStep:
    """One executable step of a compiled plan."""

    kind: str
    module: Optional[Module]
    unit_index: int
    is_unit_output: bool = False

    @property
    def quantized(self) -> bool:
        """True when the step's GEMM runs through an attached INT8 engine."""
        return getattr(self.module, "quant_engine", None) is not None

    def describe(self) -> str:
        name = type(self.module).__name__ if self.module is not None else "-"
        flags = []
        if self.quantized:
            flags.append("int8")
        if self.is_unit_output:
            flags.append("unit-out")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"unit{self.unit_index}: {self.kind:<10} {name}{suffix}"


@dataclass
class ExecutionPlan:
    """A flat kernel-step program over an ordered stack of FF units."""

    steps: List[KernelStep]
    unit_modules: List[Module]
    flatten_input: bool = False
    unit_step_counts: List[int] = field(default_factory=list)

    @property
    def num_units(self) -> int:
        return len(self.unit_modules)

    def describe(self) -> str:
        """Human-readable listing of the compiled steps."""
        header = (
            f"ExecutionPlan: {len(self.steps)} steps over {self.num_units} "
            f"units (flatten_input={self.flatten_input})"
        )
        return "\n".join([header] + [f"  {step.describe()}" for step in self.steps])

    # ------------------------------------------------------------------ #
    def training_flags(self) -> List[bool]:
        """Top-level training flag of every unit (for save/restore)."""
        return [unit.training for unit in self.unit_modules]

    def restore_training_flags(self, flags: Sequence[bool]) -> None:
        for unit, mode in zip(self.unit_modules, flags):
            unit.train(mode)

    def eval(self) -> None:
        for unit in self.unit_modules:
            unit.eval()


def _lower_module(
    module: Module, unit_index: int, steps: List[KernelStep]
) -> None:
    """Recursively lower one module into kernel steps."""
    if isinstance(module, Sequential):
        for child in module.layers():
            _lower_module(child, unit_index, steps)
        return
    steps.append(KernelStep(step_kind(module), module, unit_index))


def compile_plan(
    units: Sequence[Module], flatten_input: bool = False
) -> ExecutionPlan:
    """Compile an ordered FF unit stack into an :class:`ExecutionPlan`.

    Each unit's final step is tagged ``is_unit_output`` — those are the
    activities the goodness function taps and the per-unit boundaries the
    trainer updates at.
    """
    if not units:
        raise ValueError("cannot compile a plan over zero units")
    steps: List[KernelStep] = []
    unit_step_counts: List[int] = []
    for unit_index, unit in enumerate(units):
        before = len(steps)
        _lower_module(unit, unit_index, steps)
        produced = len(steps) - before
        if produced == 0:
            # An empty Sequential still forwards its input unchanged; keep a
            # step so the unit has an output boundary.
            steps.append(KernelStep("identity", unit, unit_index))
            produced = 1
        unit_step_counts.append(produced)
        last = steps[-1]
        steps[-1] = KernelStep(last.kind, last.module, last.unit_index, True)
    return ExecutionPlan(
        steps=steps,
        unit_modules=list(units),
        flatten_input=flatten_input,
        unit_step_counts=unit_step_counts,
    )


__all__ = [
    "STEP_KINDS",
    "step_kind",
    "KernelStep",
    "ExecutionPlan",
    "compile_plan",
]
