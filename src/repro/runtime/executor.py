"""Plan execution: the one forward path every workload routes through.

Before the runtime layer, the repo carried three hand-rolled forward walks
that had to stay numerically identical — the FF trainer's
``forward_through_units``, :class:`FFGoodnessClassifier` inference, and the
serving engine's folded-label readout.  :class:`PlanExecutor` replaces all
of them: it runs a compiled :class:`~repro.runtime.plan.ExecutionPlan` step
by step on a selected backend, and offers the derived read-outs (per-unit
activities, accumulated goodness, label-probe goodness matrices in both the
per-label-loop and folded-batch forms) in one place.

Numerical contract: executing a plan is arithmetic-identical to walking the
original module tree.  Unfused steps *are* the original modules; fused
norm→gemm→activation steps run the same arithmetic through the backend's
``fused_*`` kernels (skipping the intermediate materializations), and the
executor falls back to the step-by-step module walk whenever fusion could be
observable — on backends without fusion support (``reference``), when a
constituent module must fill its activation cache for a backward pass, or
while instrumentation hooks are registered (so per-module observers miss
nothing).  Only the GEMMs inside route through the pluggable backend, and
every shipped backend is exact.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.nn.functional import im2col
from repro.nn.module import Module
from repro.nn.norm import _BatchNormBase
from repro.obs import trace as obs_trace
from repro.runtime import dispatch, instrument
from repro.runtime.dispatch import BackendLike
from repro.runtime.plan import (
    ExecutionPlan,
    KernelStep,
    activation_applier,
    compile_plan,
)


def _fused_fallback_required(step: KernelStep) -> bool:
    """True when a fused step must run as the original module walk.

    A constituent that would cache activations (training mode with caching
    enabled) needs its module ``forward`` to run so the backward pass finds
    its tensors; fused execution would silently starve it.  A training-mode
    BatchNorm must mutate its running statistics, which only its module
    ``forward`` does — folding it would silently freeze the stats — so it
    refuses to fold regardless of the caching flag.
    """
    for sub in step.fused:
        module = sub.module
        if module.training and (
            module.cache_activations or isinstance(module, _BatchNormBase)
        ):
            return True
    return False


def _batchnorm_applier(norm: Module):
    """In-place eval-mode BatchNorm epilogue over channel-trailing rows.

    Computes exactly the module's eval arithmetic — ``x_hat = (x - mean) *
    inv_std`` then ``gamma * x_hat + beta``, each a separate float32 ufunc
    pass — on a ``(rows, channels)`` GEMM output, where broadcasting over
    the trailing axis pairs every element with the same per-channel
    statistics the NCHW module walk would.  Elementwise, so the result is
    bit-identical whatever layout the values sit in.
    """
    def apply(out: np.ndarray) -> np.ndarray:
        inv_std = 1.0 / np.sqrt(norm.running_var + norm.eps)
        out -= norm.running_mean
        out *= inv_std
        out *= norm.gamma.data
        out += norm.beta.data
        return out

    return apply


def _split_fused(step: KernelStep):
    """(pre_norm, core, post_norm, activation) constituents of a fused step."""
    pre = core = post = act = None
    for sub in step.fused:
        if sub.kind == "norm":
            if isinstance(sub.module, _BatchNormBase):
                post = sub
            else:
                pre = sub
        elif sub.kind == "activation":
            act = sub
        else:
            core = sub
    return pre, core, post, act


def _run_fused_conv(
    core: KernelStep, hidden: np.ndarray, bn_apply, act_apply
) -> np.ndarray:
    """Execute a fused conv/depthwise step: one im2col'd GEMM + epilogues.

    The convolution lowers exactly as its module forward does (same im2col,
    same GEMM through the quant engine or :func:`dispatch.matmul`, same
    bias add); the BatchNorm fold and activation then run as elementwise
    passes on the ``(positions, channels)`` column-layout output *before*
    the NCHW transpose — skipping the intermediate 4-D materializations the
    module walk pays between conv, norm and activation.
    """
    module = core.module
    batch = hidden.shape[0]
    _, _, out_h, out_w = module.output_shape(hidden.shape)
    cols = im2col(hidden, module.kernel_size, module.stride, module.padding)
    if core.kind == "depthwise":
        channels = module.channels
        kernel_area = module.kernel_size[0] * module.kernel_size[1]
        cols = cols.reshape(-1, channels, kernel_area)
        weight = module.weight.data.reshape(channels, kernel_area)
        if module.quant_engine is not None:
            out = module.quant_engine.depthwise_forward(cols, weight)
        else:
            out = np.einsum("pck,ck->pc", cols, weight)
    else:
        channels = module.out_channels
        weight_matrix = module.weight.data.reshape(channels, -1)
        if module.quant_engine is not None:
            out = module.quant_engine.linear_forward(cols, weight_matrix)
        else:
            out = dispatch.matmul(cols, weight_matrix.T)
    if module.bias is not None:
        out = out + module.bias.data
    out = out.astype(np.float32, copy=False)
    if bn_apply is not None:
        out = bn_apply(out)
    if act_apply is not None:
        out = act_apply(out)
    out = out.reshape(batch, out_h, out_w, channels)
    return out.transpose(0, 3, 1, 2).astype(np.float32)


def _run_fused(step: KernelStep, hidden: np.ndarray) -> np.ndarray:
    """Execute a fused plan step on the active backend."""
    backend = dispatch.active_backend()
    pre, core, post, act = _split_fused(step)
    applier = activation_applier(act.module) if act is not None else None
    bn_apply = _batchnorm_applier(post.module) if post is not None else None
    if core.kind in ("conv", "depthwise"):
        return _run_fused_conv(core, hidden, bn_apply, applier)
    gemm = core.module
    if pre is not None:
        hidden = backend.fused_ffnorm(hidden, pre.module.eps)
    if hidden.ndim != 2:
        hidden = hidden.reshape(hidden.shape[0], -1)
    if gemm.quant_engine is not None:
        # The engine performs its own dispatched, op-counted GEMM; bias,
        # BatchNorm fold and activation then mutate its freshly-allocated
        # output in place.
        out = gemm.quant_engine.linear_forward(hidden, gemm.weight.data)
        if gemm.bias is not None:
            out += gemm.bias.data
        out = out.astype(np.float32, copy=False)
        if bn_apply is not None:
            out = bn_apply(out)
        if applier is not None:
            out = applier(out)
        return out
    if bn_apply is not None:
        epilogue = (
            bn_apply if applier is None
            else (lambda out: applier(bn_apply(out)))
        )
    else:
        epilogue = applier
    return dispatch.fused_matmul_bias_act(
        hidden,
        gemm.weight.data.T,
        None if gemm.bias is None else gemm.bias.data,
        epilogue,
        backend=backend,
    )


class PlanExecutor:
    """Executes a compiled plan on a (lazily resolved) kernel backend.

    ``static_eval=True`` declares that the plan's units are permanently in
    eval mode (frozen serving artifacts): :meth:`inference_mode` then skips
    the save/eval/restore traversal of the module tree, which would
    otherwise be two recursive flag walks of pure overhead — and a
    cross-thread mutation of shared module state — per served batch.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        backend: BackendLike = None,
        static_eval: bool = False,
    ) -> None:
        self.plan = plan
        self.backend = backend
        self.static_eval = static_eval
        # Snapshot the ambient default for lifecycle bookkeeping: an engine
        # built under one default and closed under another must release the
        # pools it actually used, not whatever the default is at close time
        # (kernel execution still follows the live ambient selection).
        self._default_backend_at_build = dispatch.default_backend_name()

    # ------------------------------------------------------------------ #
    @classmethod
    def for_units(
        cls,
        units: Sequence[Module],
        flatten_input: bool = False,
        backend: BackendLike = None,
        static_eval: bool = False,
        fuse: bool = True,
        pins: Optional[Dict[str, str]] = None,
        auto_rows: Optional[int] = None,
        auto_input_shape: Optional[Sequence[int]] = None,
    ) -> "PlanExecutor":
        """Compile ``units`` and wrap the plan in an executor.

        ``fuse``, ``pins``, ``auto_rows`` and ``auto_input_shape`` forward
        to :func:`compile_plan` (fused norm/gemm/conv/activation steps,
        per-layer backend pinning — hand-written or ``pins="auto"``
        measured, with conv rows scaled by the feature-map positions).
        """
        return cls(
            compile_plan(units, flatten_input=flatten_input, fuse=fuse,
                         pins=pins, auto_rows=auto_rows,
                         auto_input_shape=auto_input_shape),
            backend,
            static_eval=static_eval,
        )

    # ------------------------------------------------------------------ #
    def step_backend_objs(self) -> List:
        """Distinct backend instances this executor's plan can route to.

        Resolves per-step pins (names) and the executor-level selection
        (name, instance, or the ambient default) through the registry, so
        an engine constructed with a backend *instance* reaches that exact
        object — not the registry singleton of the same name.
        """
        raw = [
            step.backend for step in self.plan.steps
            if step.backend is not None
        ]
        raw.append(
            self.backend if self.backend is not None
            else self._default_backend_at_build
        )
        objs: List = []
        seen = set()
        for item in raw:
            try:
                backend = dispatch.get_backend(item)
            except ValueError:  # pragma: no cover - unregistered pin
                continue
            if id(backend) not in seen:
                seen.add(id(backend))
                objs.append(backend)
        return objs

    def step_backends(self) -> List[str]:
        """Distinct backend names this executor's plan can route to."""
        return sorted(backend.name for backend in self.step_backend_objs())

    def stage_shared_weights(self) -> None:
        """Give every involved backend a chance to pre-stage plan weights.

        Backends that keep weight operands in out-of-process storage (the
        ``shard`` backend's shared-memory segments) override
        :meth:`~repro.runtime.backends.base.Backend.stage_plan_weights`;
        for all others this is a no-op.  Engines over frozen plans call it
        once at construction so the first served request pays no staging.
        """
        for backend in self.step_backend_objs():
            backend.stage_plan_weights(self.plan)

    def _prepare(self, inputs: np.ndarray) -> np.ndarray:
        if self.plan.flatten_input:
            return inputs.reshape(inputs.shape[0], -1)
        return inputs

    # ------------------------------------------------------------------ #
    def _run_step(self, step: KernelStep, hidden: np.ndarray) -> np.ndarray:
        """Execute one plan step (honouring pins and fused fast paths).

        The observability check is two thread-local/module attribute reads;
        un-observed requests take the original path untouched, which is what
        keeps tracing-off overhead under the 1% guard.
        """
        if obs_trace.has_active_trace() or instrument.step_hooks_active():
            return self._run_step_observed(step, hidden)
        if step.backend is not None:
            with dispatch.pin_backend(step.backend):
                return self._execute(step, hidden)
        return self._execute(step, hidden)

    def _run_step_observed(
        self, step: KernelStep, hidden: np.ndarray
    ) -> np.ndarray:
        """Timed variant of :meth:`_run_step`: span + ``on_step`` emission.

        Runs the *same* execution path — including fused kernels, because
        step hooks live outside the unfusing registry — and attributes each
        step to the backend that actually ran it (the pin, the executor
        selection, or the ambient default, resolved inside the pin context).
        """
        rows = int(hidden.shape[0])
        cols = int(np.prod(hidden.shape[1:])) if hidden.ndim > 1 else 1
        name = f"unit{step.unit_index}.{step.kind}"
        with obs_trace.span(name, rows=rows, cols=cols) as attrs:
            start_s = perf_counter()
            if step.backend is not None:
                with dispatch.pin_backend(step.backend):
                    backend_name = dispatch.active_backend().name
                    fused = self._step_runs_fused(step)
                    out = self._execute(step, hidden)
            else:
                backend_name = dispatch.active_backend().name
                fused = self._step_runs_fused(step)
                out = self._execute(step, hidden)
            duration_ms = (perf_counter() - start_s) * 1e3
            attrs["backend"] = backend_name
            attrs["fused"] = fused
        if instrument.step_hooks_active():
            instrument.emit_step(step, duration_ms, backend_name, rows)
        return out

    def _step_runs_fused(self, step: KernelStep) -> bool:
        """Will ``_execute`` run this step through the fused kernels?

        Must be asked with the step's backend pin already applied — the
        answer depends on the *active* backend's fusion support.
        """
        return (
            step.kind == "fused"
            and getattr(dispatch.active_backend(), "supports_fusion", False)
            and not instrument.hooks_active()
            and not _fused_fallback_required(step)
        )

    def _execute(self, step: KernelStep, hidden: np.ndarray) -> np.ndarray:
        if step.kind != "fused":
            return step.module(hidden)
        if not self._step_runs_fused(step):
            for sub in step.fused:
                hidden = sub.module(hidden)
            return hidden
        return _run_fused(step, hidden)

    @contextmanager
    def inference_mode(self) -> Iterator[None]:
        """Run the block with every unit in eval mode, then restore."""
        if self.static_eval:
            yield
            return
        flags = self.plan.training_flags()
        self.plan.eval()
        try:
            yield
        finally:
            self.plan.restore_training_flags(flags)

    # ------------------------------------------------------------------ #
    # core traversal
    # ------------------------------------------------------------------ #
    def unit_outputs(
        self, inputs: np.ndarray, limit: Optional[int] = None
    ) -> List[np.ndarray]:
        """Output activity of each unit (optionally only the first ``limit``).

        This is the shared forward pass of Algorithm 1: one traversal,
        every unit's activity collected for goodness/loss evaluation.
        """
        outputs: List[np.ndarray] = []
        with dispatch.use_backend(self.backend):
            hidden = self._prepare(inputs)
            for step in self.plan.steps:
                if limit is not None and step.unit_index >= limit:
                    break
                hidden = self._run_step(step, hidden)
                if step.is_unit_output:
                    outputs.append(hidden)
        return outputs

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Final unit's output activity."""
        outputs = self.unit_outputs(inputs)
        return outputs[-1]

    # ------------------------------------------------------------------ #
    # goodness read-outs
    # ------------------------------------------------------------------ #
    def goodness_totals(
        self, inputs: np.ndarray, goodness, skip_first: bool
    ) -> np.ndarray:
        """Total goodness per row, accumulated over the counted units."""
        total = np.zeros(inputs.shape[0], dtype=np.float64)
        with dispatch.use_backend(self.backend):
            hidden = self._prepare(inputs)
            for step in self.plan.steps:
                hidden = self._run_step(step, hidden)
                if step.is_unit_output and not (
                    skip_first and step.unit_index == 0
                ):
                    total += goodness.value(hidden)
        return total.astype(np.float32)

    def goodness_matrix(
        self,
        inputs: np.ndarray,
        overlay,
        goodness,
        skip_first: bool,
        fold_labels: bool = False,
    ) -> np.ndarray:
        """Goodness for every (sample, candidate label) pair.

        ``fold_labels=False`` probes one label overlay at a time — the
        classical FF read-out, exact for engines whose activation scales are
        batch-global.  ``fold_labels=True`` folds every overlay into the
        batch dimension for a single traversal — valid only when activation
        quantization is per-row (the frozen serving kernels), where it is
        bit-identical to the per-label loop and ``num_classes`` times
        cheaper per traversal.
        """
        with self.inference_mode():
            if fold_labels:
                inputs = np.asarray(inputs, dtype=np.float32)
                if inputs.shape[0] == 0:
                    return np.zeros(
                        (0, overlay.num_classes), dtype=np.float32
                    )
                candidates = overlay.candidates(inputs)
                num_labels, batch = candidates.shape[0], candidates.shape[1]
                folded = candidates.reshape(
                    (num_labels * batch,) + candidates.shape[2:]
                )
                totals = self.goodness_totals(folded, goodness, skip_first)
                return np.ascontiguousarray(
                    totals.reshape(num_labels, batch).T
                )
            candidates = overlay.candidates(inputs)
            return np.stack(
                [
                    self.goodness_totals(candidates[label], goodness, skip_first)
                    for label in range(overlay.num_classes)
                ],
                axis=1,
            )

    def predict(
        self, inputs: np.ndarray, overlay, goodness, skip_first: bool,
        fold_labels: bool = False,
    ) -> np.ndarray:
        """Argmax label of the goodness matrix."""
        return np.argmax(
            self.goodness_matrix(
                inputs, overlay, goodness, skip_first, fold_labels=fold_labels
            ),
            axis=1,
        )


def forward_through_units(
    units: Sequence[Module], inputs: np.ndarray
) -> List[np.ndarray]:
    """Run one shared forward pass, returning every unit's output activity.

    Compatibility shim over :class:`PlanExecutor` for callers holding a bare
    unit list; hot loops should compile once and reuse the executor.
    """
    return PlanExecutor.for_units(units).unit_outputs(inputs)


__all__ = ["PlanExecutor", "forward_through_units"]
