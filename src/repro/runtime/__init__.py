"""``repro.runtime`` — compiled execution plans + pluggable kernel backends.

One execution layer for every workload:

* :func:`compile_plan` lowers an FF unit stack into a flat
  :class:`ExecutionPlan` of kernel steps, optionally fusing
  norm→gemm→activation runs and pinning individual layers to a backend;
  :class:`PlanExecutor` runs it — training forward passes, goodness
  classification, readout features and batched serving all execute the
  same plan code.
* :mod:`repro.runtime.backends` hosts the kernel backends: ``reference``
  (the seed NumPy arithmetic), ``fast`` (exact-float32 BLAS integer GEMMs
  with preallocated scratch), ``parallel`` (row-block thread tiling of
  the fast kernels plus float32/numba depthwise products) and ``shard``
  (multiprocess row-block sharding through shared-memory segments for
  many-core hosts).  Select with the ``REPRO_BACKEND`` environment
  variable, :func:`set_default_backend`, a config's ``backend`` field, the
  CLI ``--backend`` flag, or per layer with plan pins — hand-written specs
  or ``pins="auto"``, which resolves each layer to the measured winner via
  :mod:`repro.runtime.autopin`; every backend is bit-identical.
* :mod:`repro.runtime.instrument` exposes the dispatch layer's
  instrumentation hooks — :class:`OpCounts`/:class:`OpCountingHook` for
  Table IV op accounting and arbitrary observers for profiling — which see
  every kernel whatever backend runs it.

The plan/executor halves import the nn layer, which itself reports into
``repro.runtime.instrument``; they are therefore imported lazily (PEP 562)
to keep the package import-cycle free.
"""

from __future__ import annotations

from repro.runtime import instrument
from repro.runtime.backends import (
    Backend,
    FastBackend,
    ParallelBackend,
    ReferenceBackend,
    ShardBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.runtime.dispatch import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    active_backend,
    default_backend_name,
    pin_backend,
    set_default_backend,
    use_backend,
)
from repro.runtime.instrument import (
    Instrumentation,
    OpCountingHook,
    OpCounts,
    counting,
    instrumented,
)

_LAZY = {
    "KernelStep": "repro.runtime.plan",
    "ExecutionPlan": "repro.runtime.plan",
    "compile_plan": "repro.runtime.plan",
    "step_kind": "repro.runtime.plan",
    "STEP_KINDS": "repro.runtime.plan",
    "AUTO_PINS": "repro.runtime.plan",
    "activation_applier": "repro.runtime.plan",
    "PlanExecutor": "repro.runtime.executor",
    "forward_through_units": "repro.runtime.executor",
    "autopin": "repro.runtime.autopin",
    "calibrate": "repro.runtime.autopin",
    "AUTOPIN_CANDIDATES": "repro.runtime.autopin",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.runtime' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


__all__ = [
    "Backend",
    "ReferenceBackend",
    "FastBackend",
    "ParallelBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "active_backend",
    "default_backend_name",
    "set_default_backend",
    "use_backend",
    "pin_backend",
    "instrument",
    "Instrumentation",
    "OpCounts",
    "OpCountingHook",
    "counting",
    "instrumented",
    "KernelStep",
    "ExecutionPlan",
    "compile_plan",
    "step_kind",
    "STEP_KINDS",
    "AUTO_PINS",
    "activation_applier",
    "PlanExecutor",
    "forward_through_units",
    "autopin",
    "calibrate",
    "AUTOPIN_CANDIDATES",
]
