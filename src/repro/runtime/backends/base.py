"""Kernel backend protocol.

A backend supplies the handful of dense kernels every execution path in the
repo reduces to.  Callers (the nn layers, the training INT8 engine, the
frozen serving kernels) never compute a GEMM themselves — they route through
:mod:`repro.runtime.dispatch`, which picks the active backend and feeds the
instrumentation hooks.  Adding a backend (numba, multiprocess sharding, a
real accelerator) means implementing this protocol in one file and
registering it.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np


class Backend:
    """Abstract kernel set; subclasses override whichever kernels they own."""

    #: registry key; subclasses must set a unique name
    name = "abstract"

    #: capability flag: True when :meth:`rowwise_quantized_gemm` can exploit
    #: a caller-precomputed float32 copy of ``rhs_q`` (``rhs_f32``).  Callers
    #: holding frozen weights consult this so backends that never read the
    #: copy don't force its materialization.
    wants_f32_rhs = False

    #: capability flag: True when the executor may run ``fused`` plan steps
    #: through the ``fused_*`` kernels below.  The ``reference`` oracle keeps
    #: this False, so fused plans automatically fall back to the seed
    #: step-per-module walk there and stay bit-identical by construction.
    supports_fusion = False

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full-precision GEMM ``a @ b``."""
        raise NotImplementedError

    def int8_gemm(self, lhs_q: np.ndarray, rhs_q: np.ndarray) -> np.ndarray:
        """Integer GEMM over quantized operands.

        Must return the *exact* integer accumulation ``lhs_q @ rhs_q``; the
        dtype of the accumulator is backend-specific (int32/int64 or float32
        holding exact integers) — callers rescale with ``astype``.
        """
        raise NotImplementedError

    def int8_depthwise(
        self, cols_q: np.ndarray, weight_q: np.ndarray
    ) -> np.ndarray:
        """Exact integer depthwise inner product ``pck,ck->pc``."""
        raise NotImplementedError

    def int8_depthwise_grad(
        self, grad_q: np.ndarray, cols_q: np.ndarray
    ) -> np.ndarray:
        """Exact integer depthwise weight gradient ``pc,pck->ck``."""
        raise NotImplementedError

    def rowwise_quantized_gemm(
        self,
        x: np.ndarray,
        rhs_q: np.ndarray,
        qmax: int,
        rhs_f32: Optional[np.ndarray] = None,
        exact_f32: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused per-row quantization + integer GEMM (the serving hot path).

        Quantizes each row of ``x`` with its own nearest-rounding scale and
        multiplies against the pre-quantized ``rhs_q``; returns
        ``(accumulator, row_scales)``.  ``rhs_f32``/``exact_f32`` are
        optional operand hints (in the spirit of BLAS workspace arguments):
        backends with :attr:`wants_f32_rhs` may use the caller's precomputed
        float32 operand when ``exact_f32`` certifies the accumulation is
        exactly representable in float32; all others ignore them.
        """
        raise NotImplementedError

    def rowwise_quantize(
        self, values: np.ndarray, qmax: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Materialized per-row quantization ``(int8 levels, row scales)``."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # fused kernels (norm→gemm→activation plan steps)
    # ------------------------------------------------------------------ #
    # The default implementations compose the backend's own kernels with
    # in-place bias/activation application on the freshly-allocated GEMM
    # output — the same arithmetic as the unfused module walk, minus its
    # intermediate materializations.  Subclasses may override with genuinely
    # fused kernels; every override must keep the values identical to the
    # unfused composition (the fusion parity tests enforce this).

    def fused_ffnorm(self, x: np.ndarray, eps: float) -> np.ndarray:
        """Sample-wise L2 length normalization (FFLayerNorm's arithmetic).

        Skips the module layer's defensive output copy: the result feeds the
        fused GEMM directly and is never cached.
        """
        flat = x.reshape(x.shape[0], -1)
        norm = np.sqrt(np.sum(np.square(flat), axis=1, keepdims=True)) + eps
        out_flat = flat / norm
        return out_flat.reshape(x.shape).astype(np.float32, copy=False)

    def fused_matmul_bias_act(
        self,
        x: np.ndarray,
        weight_t: np.ndarray,
        bias: Optional[np.ndarray] = None,
        act: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> np.ndarray:
        """``act(x @ weight_t + bias)`` without intermediate materialization.

        ``act`` is an in-place activation applier (see
        :func:`repro.runtime.plan.activation_applier`); bias addition and the
        activation mutate the GEMM output buffer instead of allocating a new
        array per op.
        """
        out = self.matmul(x, weight_t)
        if bias is not None:
            out += bias
        out = out.astype(np.float32, copy=False)
        if act is not None:
            out = act(out)
        return out

    # ------------------------------------------------------------------ #
    # resource lifecycle
    # ------------------------------------------------------------------ #
    # Backends that own pools (worker threads, worker processes, shared
    # memory) override :meth:`shutdown`; it must be idempotent, and a
    # backend must transparently restart its pool on the next kernel call
    # after a shutdown.  The base implementations make every backend usable
    # as a context manager so tests and short-lived tools release resources
    # deterministically instead of at interpreter exit.

    def shutdown(self) -> None:
        """Release pools/segments owned by this backend (idempotent)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def stage_plan_weights(self, plan) -> None:
        """Pre-stage a compiled plan's frozen weight operands (hook).

        Called by :meth:`repro.runtime.executor.PlanExecutor.stage_shared_weights`
        once per plan so backends that keep weights in out-of-process storage
        (shared-memory segments) pay the staging copy before the first
        request instead of on it.  The default is a no-op.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
