"""Kernel backend protocol.

A backend supplies the handful of dense kernels every execution path in the
repo reduces to.  Callers (the nn layers, the training INT8 engine, the
frozen serving kernels) never compute a GEMM themselves — they route through
:mod:`repro.runtime.dispatch`, which picks the active backend and feeds the
instrumentation hooks.  Adding a backend (numba, multiprocess sharding, a
real accelerator) means implementing this protocol in one file and
registering it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class Backend:
    """Abstract kernel set; subclasses override whichever kernels they own."""

    #: registry key; subclasses must set a unique name
    name = "abstract"

    #: capability flag: True when :meth:`rowwise_quantized_gemm` can exploit
    #: a caller-precomputed float32 copy of ``rhs_q`` (``rhs_f32``).  Callers
    #: holding frozen weights consult this so backends that never read the
    #: copy don't force its materialization.
    wants_f32_rhs = False

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full-precision GEMM ``a @ b``."""
        raise NotImplementedError

    def int8_gemm(self, lhs_q: np.ndarray, rhs_q: np.ndarray) -> np.ndarray:
        """Integer GEMM over quantized operands.

        Must return the *exact* integer accumulation ``lhs_q @ rhs_q``; the
        dtype of the accumulator is backend-specific (int32/int64 or float32
        holding exact integers) — callers rescale with ``astype``.
        """
        raise NotImplementedError

    def int8_depthwise(
        self, cols_q: np.ndarray, weight_q: np.ndarray
    ) -> np.ndarray:
        """Exact integer depthwise inner product ``pck,ck->pc``."""
        raise NotImplementedError

    def int8_depthwise_grad(
        self, grad_q: np.ndarray, cols_q: np.ndarray
    ) -> np.ndarray:
        """Exact integer depthwise weight gradient ``pc,pck->ck``."""
        raise NotImplementedError

    def rowwise_quantized_gemm(
        self,
        x: np.ndarray,
        rhs_q: np.ndarray,
        qmax: int,
        rhs_f32: Optional[np.ndarray] = None,
        exact_f32: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused per-row quantization + integer GEMM (the serving hot path).

        Quantizes each row of ``x`` with its own nearest-rounding scale and
        multiplies against the pre-quantized ``rhs_q``; returns
        ``(accumulator, row_scales)``.  ``rhs_f32``/``exact_f32`` are
        optional operand hints (in the spirit of BLAS workspace arguments):
        backends with :attr:`wants_f32_rhs` may use the caller's precomputed
        float32 operand when ``exact_f32`` certifies the accumulation is
        exactly representable in float32; all others ignore them.
        """
        raise NotImplementedError

    def rowwise_quantize(
        self, values: np.ndarray, qmax: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Materialized per-row quantization ``(int8 levels, row scales)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
