"""Shard kernel backend: row-block sharding across worker *processes*.

The ``parallel`` backend tops out at the fraction of a kernel that releases
the GIL (BLAS calls, buffered ufunc loops); everything else — per-row scale
derivation, quantization rounding, operand staging — serializes on the
interpreter lock.  ``shard`` removes that ceiling on many-core hosts by
splitting GEMM row-blocks across a persistent pool of **worker processes**
that communicate through ``multiprocessing.shared_memory`` ring buffers:

* **Weights staged once.**  The GEMM's right-hand operand (a frozen serving
  weight, a quantized training weight) is copied into a shared float32
  segment keyed by an array *fingerprint* — an id/layout token backed by a
  content digest — so repeated kernel calls and every worker reuse one
  staging copy.  :meth:`stage_plan_weights` (driven by
  :meth:`~repro.runtime.executor.PlanExecutor.stage_shared_weights`) pays
  this copy at plan-compile time for frozen serving plans.
* **Activation ring buffers.**  Per call, the left-hand operand is copied
  into a reused shared input segment, each worker computes its row block
  into the shared output segment in place, and the parent assembles the
  result with one copy out.  Segments grow geometrically and are reused
  across calls — the steady-state hot path allocates nothing in the
  parent but the result array.
* **Exact-float32 BLAS per shard.**  Shards only run where the ``fast``
  backend's exact-float32 trick applies (``K·qmax·rhs_max < 2^24``): each
  shard accumulates exact integers, so the concatenated result is
  bit-identical to ``reference``/``fast``/``parallel`` whatever the shard
  boundaries — the same parity property tests cover all four backends.
  The im2col'd conv path rides this for free (its column blocks are GEMM
  rows through ``rowwise_quantized_gemm``), and ``int8_depthwise`` ships
  its per-position column blocks through the same rings (positions are
  rows; each reduction spans only ``kernel_area`` products).
* **Threshold delegation.**  Below :attr:`min_rows` (default
  ``REPRO_SHARD_MIN_ROWS`` or the measured crossover default) the IPC
  round-trip cannot pay for itself, so the kernels delegate to the
  inherited ``parallel``/``fast`` implementations — ``shard`` is never the
  slow choice for small inputs.  :meth:`calibrate_min_rows` measures the
  crossover on the live machine for deployments that want a tighter bound.

Lifecycle: the pool starts lazily on the first sharded call, shuts down
deterministically via :meth:`shutdown` / the context-manager protocol, is
registered with ``atexit`` as a last resort, and is fork-safe — a child
created by ``os.fork`` detects the foreign pool and rebuilds its own
instead of writing into the parent's pipes.  On single-core hosts
(``shard_workers == 1``) no process is ever spawned and ``shard`` behaves
exactly like ``parallel``.

Fingerprint staging is sized for the *serving* steady state: frozen
engines hold stable weight objects, so every call after the first is an
id-token cache hit.  Training-side engines re-derive their quantized
weights each step — a fresh object whose content digest (and, on content
change, staging copy) would be paid per call; in practice training
batches sit far below :attr:`min_rows` and delegate, but workloads that
shard large fresh-weight GEMMs every call should expect (and measure)
that staging overhead.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import threading
import traceback
import uuid
import weakref
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import trace as obs_trace
from repro.obs.registry import get_registry
from repro.runtime.backends.fast import exact_f32_possible
from repro.runtime.backends.parallel import ParallelBackend
from repro.runtime.backends.reference import rowwise_scales

# Pool/ring/staging health published into the process-wide registry: pool
# resets are the "worker restarts" signal a future heartbeat loop watches,
# ring reuse vs grows tells whether the steady-state zero-allocation claim
# holds in production, staged bytes bound the shared-memory footprint.
_OBS = get_registry()
_POOL_STARTS = _OBS.counter(
    "repro_shard_pool_starts_total", help="Shard worker pools started.")
_POOL_RESETS = _OBS.counter(
    "repro_shard_pool_resets_total",
    help="Shard pools torn down after a worker failure.")
_WORKERS_GAUGE = _OBS.gauge(
    "repro_shard_workers", help="Live shard worker processes.")
_RING_GROWS = _OBS.counter(
    "repro_shard_ring_grows_total",
    help="Shared ring segment (re)allocations.")
_RING_REUSE = _OBS.counter(
    "repro_shard_ring_reuse_total",
    help="Sharded calls served entirely from existing ring capacity.")
_RING_BYTES = _OBS.gauge(
    "repro_shard_ring_bytes", help="Current ring segment capacity, bytes.")
_STAGED_SEGMENTS = _OBS.counter(
    "repro_shard_staged_segments_total",
    help="Weight segments staged into shared memory.")
_STAGED_BYTES = _OBS.gauge(
    "repro_shard_staged_bytes", help="Staged shared weight segments, bytes.")

#: Environment override for the worker-process count (default: CPU count).
SHARD_WORKERS_ENV_VAR = "REPRO_SHARD_WORKERS"

#: Environment override for the small-input delegation threshold (rows).
SHARD_MIN_ROWS_ENV_VAR = "REPRO_SHARD_MIN_ROWS"

#: Environment override for the multiprocessing start method.
SHARD_START_METHOD_ENV_VAR = "REPRO_SHARD_START_METHOD"

#: Default delegation threshold: below this many result rows the
#: pipe round-trip + shared-memory copies outweigh the extra cores (the
#: kernel microbenchmark's measured crossover sits in the low hundreds of
#: rows on commodity multi-core hosts; ``calibrate_min_rows`` refines it).
DEFAULT_MIN_ROWS = 256

#: How many shared weight segments the parent keeps staged (LRU).
_WEIGHT_CACHE_ENTRIES = 32

#: How many attached segments each worker caches before closing old ones.
_WORKER_CACHE_ENTRIES = 48


def _default_shard_workers() -> int:
    override = os.environ.get(SHARD_WORKERS_ENV_VAR)
    if override:
        return max(1, int(override))
    return max(1, os.cpu_count() or 1)


def _default_min_rows() -> int:
    override = os.environ.get(SHARD_MIN_ROWS_ENV_VAR)
    if override:
        return max(1, int(override))
    return DEFAULT_MIN_ROWS


def _unregister_tracker(name: str) -> None:
    """Detach an attached segment from this process's resource tracker.

    Attach-side ``SharedMemory`` handles register with the resource tracker
    exactly like create-side ones (fixed only in Python 3.13's
    ``track=False``).  A spawn/forkserver worker owns a *separate* tracker,
    which would "clean up" — unlink — the parent's live segments when the
    worker exits; unregistering restores single ownership to the parent.
    Fork workers share the parent's tracker process, where the attach-side
    registration is an idempotent set-add — unregistering there would strip
    the parent's own registration instead, so fork workers skip this.
    """
    try:  # pragma: no cover - depends on stdlib internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name.lstrip('/')}", "shared_memory")
    except Exception:
        pass


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #
def _attach_segment(cache: "OrderedDict[str, Any]", name: str,
                    untrack: bool = False):
    """Attach (or reuse) a shared segment by name, LRU-bounding the cache."""
    shm = cache.get(name)
    if shm is not None:
        cache.move_to_end(name)
        return shm
    shm = shared_memory.SharedMemory(name=name)
    if untrack:
        _unregister_tracker(name)
    cache[name] = shm
    while len(cache) > _WORKER_CACHE_ENTRIES:
        _, old = cache.popitem(last=False)
        old.close()
    return shm


def _view(shm, shape, dtype) -> np.ndarray:
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


def _shard_compute(
    op: str,
    qmax: int,
    lhs: np.ndarray,
    rhs: np.ndarray,
    out: np.ndarray,
    scales: Optional[np.ndarray],
    r0: int,
    r1: int,
) -> None:
    """The one shard kernel body, over already-resolved array views.

    Shared verbatim by the worker processes and the parent's own shard 0 —
    there is exactly one copy of the arithmetic, so parent and worker tiles
    cannot drift apart (the bit-identity contract the backend rests on).
    """
    if op == "int8_gemm":
        # Same arithmetic as the fast backend's exact path: int8 rows staged
        # to float32 feed one sgemm whose accumulation is exact.
        np.matmul(lhs[r0:r1].astype(np.float32), rhs, out=out[r0:r1])
    elif op == "depthwise":
        # Positions are rows: each (position, channel) reduction spans only
        # kernel_area products bounded by 128^2, far inside float32's exact
        # window — the same tile arithmetic as the parallel backend's f32
        # einsum, so shard boundaries cannot change a bit.
        np.einsum(
            "pck,ck->pc", lhs[r0:r1].astype(np.float32), rhs,
            out=out[r0:r1],
        )
    elif op == "rowwise":
        tile = lhs[r0:r1]
        tile_scales = rowwise_scales(tile, qmax)
        scales[r0:r1] = tile_scales
        levels = tile / tile_scales[:, None]
        np.rint(levels, out=levels)
        np.clip(levels, -qmax, qmax, out=levels)
        np.matmul(levels, rhs, out=out[r0:r1])
    else:  # pragma: no cover - protocol guard
        raise ValueError(f"unknown shard op {op!r}")


def _execute_shard(job: Dict[str, Any], cache: "OrderedDict[str, Any]",
                   untrack: bool = False) -> None:
    """Resolve a job's shared segments into views and run the kernel body."""
    lhs = _view(
        _attach_segment(cache, job["in_name"], untrack),
        job["in_shape"], job["in_dtype"],
    )
    rhs = _view(
        _attach_segment(cache, job["rhs_name"], untrack),
        job["rhs_shape"], "float32",
    )
    out = _view(
        _attach_segment(cache, job["out_name"], untrack),
        job["out_shape"], "float32",
    )
    scales = None
    if job["op"] == "rowwise":
        scales = _view(
            _attach_segment(cache, job["scales_name"], untrack),
            (job["in_shape"][0],),
            "float32",
        )
    _shard_compute(job["op"], job["qmax"], lhs, rhs, out, scales,
                   job["r0"], job["r1"])


def _worker_main(conn, untrack: bool = False,
                 stale_fds: Tuple[int, ...] = ()) -> None:  # pragma: no cover
    """Worker loop: receive row-block jobs, compute into shared memory.

    ``stale_fds`` are the parent-side pipe ends a fork-started process
    inherited — the pipes to earlier workers *and this worker's own*
    (created before the fork).  Closing them immediately restores EOF
    semantics in both directions: if a sibling worker dies, the parent's
    ``recv`` raises instead of blocking on a write end this process kept
    alive; and if the parent dies (hard kill, ``os._exit``), this worker's
    own ``recv`` sees EOF and exits instead of idling as an orphan that
    pins the parent's inherited stdout/stderr pipes.
    """
    for fd in stale_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    cache: "OrderedDict[str, Any]" = OrderedDict()
    try:
        while True:
            try:
                job = conn.recv()
            except (EOFError, OSError):
                break
            if job is None:
                break
            try:
                _execute_shard(job, cache, untrack)
                conn.send(("ok", None))
            except BaseException:
                try:
                    conn.send(("err", traceback.format_exc()))
                except Exception:
                    break
    finally:
        for shm in cache.values():
            shm.close()
        try:
            conn.close()
        except Exception:
            pass


# --------------------------------------------------------------------------- #
# parent-side shared staging
# --------------------------------------------------------------------------- #
class _SharedArray:
    """A parent-owned shared segment holding one staged array."""

    __slots__ = ("shm", "name", "shape", "dtype", "nbytes")

    def __init__(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array)
        self.name = f"repro-shard-{os.getpid()}-{uuid.uuid4().hex[:12]}"
        self.nbytes = max(1, array.nbytes)
        self.shm = shared_memory.SharedMemory(
            create=True, size=self.nbytes, name=self.name
        )
        self.shape = array.shape
        self.dtype = str(array.dtype)
        _view(self.shm, array.shape, array.dtype)[...] = array
        _STAGED_SEGMENTS.inc()
        _STAGED_BYTES.inc(self.nbytes)

    def close(self, unlink: bool = True) -> None:
        try:
            self.shm.close()
            if unlink:
                self.shm.unlink()
        except Exception:
            pass
        if self.nbytes:
            _STAGED_BYTES.dec(self.nbytes)
            self.nbytes = 0


class _RingSegment:
    """A reusable, geometrically-grown shared segment (one per operand role).

    The ring is reused across calls: a call copies its activations in,
    workers write result tiles in place, the parent copies the result out —
    after the first few calls the segment reaches steady-state size and the
    hot path performs no shared-memory allocation at all.
    """

    __slots__ = ("shm", "name", "capacity")

    def __init__(self) -> None:
        self.shm = None
        self.name = ""
        self.capacity = 0

    def ensure(self, nbytes: int) -> bool:
        """Guarantee capacity; True when a (re)allocation was needed.

        The boolean feeds the grow/reuse counters: a healthy steady state
        is all-reuse, so a growing ``repro_shard_ring_grows_total`` under
        stable traffic means the zero-allocation claim is not holding.
        """
        if self.shm is not None and self.capacity >= nbytes:
            return False
        if self.shm is not None:
            self.shm.close()
            try:
                self.shm.unlink()
            except Exception:
                pass
            _RING_BYTES.dec(self.capacity)
        capacity = max(1, nbytes, int(self.capacity * 1.5))
        self.name = f"repro-shard-{os.getpid()}-{uuid.uuid4().hex[:12]}"
        self.shm = shared_memory.SharedMemory(
            create=True, size=capacity, name=self.name
        )
        self.capacity = capacity
        _RING_BYTES.inc(capacity)
        return True

    def view(self, shape, dtype) -> np.ndarray:
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=self.shm.buf)

    def close(self, unlink: bool = True) -> None:
        if self.shm is None:
            return
        try:
            self.shm.close()
            if unlink:
                self.shm.unlink()
        except Exception:
            pass
        _RING_BYTES.dec(self.capacity)
        self.shm = None
        self.capacity = 0


class ShardBackend(ParallelBackend):
    """Multiprocess row-block sharding of the exact-float32 GEMM kernels."""

    name = "shard"
    supports_fusion = True

    def __init__(
        self,
        num_workers: Optional[int] = None,
        min_rows: Optional[int] = None,
        min_rows_per_shard: int = 64,
    ) -> None:
        super().__init__()
        # The *process* count.  Deliberately distinct from the inherited
        # ``num_workers`` (the parallel backend's thread-tiling width): a
        # delegated small-input call must still thread-tile exactly like
        # ``parallel`` would, whatever REPRO_SHARD_WORKERS says.
        self.shard_workers = (
            _default_shard_workers()
            if num_workers is None
            else max(1, int(num_workers))
        )
        self.min_rows = (
            _default_min_rows() if min_rows is None else max(1, int(min_rows))
        )
        self.min_rows_per_shard = max(1, int(min_rows_per_shard))
        self._shard_lock = threading.Lock()
        self._workers: List[Tuple[Any, Any]] = []  # (process, pipe)
        self._owner_pid: Optional[int] = None
        self._rings = {
            "in": _RingSegment(),
            "out": _RingSegment(),
            "scales": _RingSegment(),
        }
        # fingerprint caches: id/layout token -> content digest (guarded by
        # a weakref so a recycled id can never alias), digest -> segment.
        # The LRU bound is per-instance and grows to fit whole plans (see
        # stage_plan_weights): a conv model with more layers than the
        # default bound would otherwise evict-and-restage segments on every
        # traversal, churning shared memory per request.
        self._digest_by_token: Dict[tuple, Tuple[Any, str]] = {}
        self._staged: "OrderedDict[str, _SharedArray]" = OrderedDict()
        self._weight_cache_entries = _WEIGHT_CACHE_ENTRIES
        self._shard_atexit = False

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #
    def _check_owner(self) -> None:
        """Discard pool state inherited through os.fork (child side)."""
        if self._owner_pid is None or self._owner_pid == os.getpid():
            return
        # The processes, pipes and segments belong to the parent; close our
        # duplicated handles without unlinking and start from scratch.
        for _, conn in self._workers:
            try:
                conn.close()
            except Exception:
                pass
        self._workers = []
        for ring in self._rings.values():
            ring.close(unlink=False)
        for staged in self._staged.values():
            staged.close(unlink=False)
        self._staged = OrderedDict()
        self._digest_by_token = {}
        self._owner_pid = None

    def _ensure_pool(self) -> List[Tuple[Any, Any]]:
        self._check_owner()
        if self._workers:
            return self._workers
        method = os.environ.get(SHARD_START_METHOD_ENV_VAR)
        if not method:
            # fork starts a worker in O(ms) (spawn re-imports numpy per
            # worker), but forking a *multithreaded* parent can clone a
            # lock some sibling thread holds mid-BLAS and wedge the child
            # on its first kernel.  Serving engines stage weights (and
            # hence start this pool) from the main thread before batcher
            # workers exist, so they keep the fast path; a pool first
            # started from inside a threaded server pays the safe, slower
            # spawn once.  REPRO_SHARD_START_METHOD overrides either way.
            methods = multiprocessing.get_all_start_methods()
            single_threaded = threading.active_count() == 1
            if "fork" in methods and single_threaded:
                method = "fork"
            elif "spawn" in methods:
                method = "spawn"
            else:  # pragma: no cover - exotic platform
                method = None
        ctx = multiprocessing.get_context(method)
        forked = ctx.get_start_method() == "fork"
        untrack = not forked
        workers: List[Tuple[Any, Any]] = []
        for index in range(max(1, self.shard_workers - 1)):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            stale_fds = tuple(
                [conn.fileno() for _, conn in workers]
                + [parent_conn.fileno()]
            ) if forked else ()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, untrack, stale_fds),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers.append((process, parent_conn))
        self._workers = workers
        self._owner_pid = os.getpid()
        _POOL_STARTS.inc()
        _WORKERS_GAUGE.set(len(workers))
        if not self._shard_atexit:
            atexit.register(self.shutdown)
            self._shard_atexit = True
        return workers

    def _stop_workers(self) -> None:
        """Signal, join (or terminate) and forget the worker processes.

        Callers hold :attr:`_shard_lock` (or are the sole user during
        interpreter exit); the pool respawns lazily on the next sharded
        call.
        """
        workers, self._workers = self._workers, []
        self._owner_pid = None
        if workers:
            _WORKERS_GAUGE.set(0)
        for process, conn in workers:
            try:
                conn.send(None)
            except Exception:
                pass
        for process, conn in workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
            try:
                conn.close()
            except Exception:
                pass

    @property
    def workers_active(self) -> bool:
        """Process pool *or* inherited delegation thread pool live."""
        return self.pool_active or ParallelBackend.pool_active.fget(self)

    def stop_workers(self) -> None:
        """Stop worker processes and threads; keep staged weights and rings.

        The lighter half of :meth:`shutdown`, for callers that started the
        pool as a side effect (autopin calibration) and must not invalidate
        weight segments other engines pre-staged — the next sharded call
        respawns workers, which re-attach the surviving segments by name.
        """
        with self._shard_lock:
            self._check_owner()
            self._stop_workers()
        ParallelBackend.shutdown(self)  # the delegation thread pool

    def shutdown(self) -> None:
        """Stop workers and unlink every shared segment (idempotent)."""
        with self._shard_lock:
            self._check_owner()
            self._stop_workers()
            for ring in self._rings.values():
                ring.close()
            for staged in self._staged.values():
                staged.close()
            self._staged = OrderedDict()
            self._digest_by_token = {}
        super().shutdown()  # the inherited thread pool, if one was started

    @property
    def pool_active(self) -> bool:
        """True while worker processes are alive in this process."""
        return bool(self._workers) and self._owner_pid == os.getpid()

    # ------------------------------------------------------------------ #
    # weight staging (fingerprint-keyed shared segments)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _token(array: np.ndarray) -> Tuple[tuple, np.ndarray]:
        """Cheap identity/layout token for an operand + its weakref anchor.

        Keyed on the owning base array so per-call transpose *views* of one
        weight buffer share a token; the weakref guard means a recycled id
        can never alias a dead array.
        """
        base = array if array.base is None else array.base
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        anchor = base if isinstance(base, np.ndarray) else array
        interface = array.__array_interface__
        return (
            (
                id(anchor),
                interface["data"][0],
                array.shape,
                array.strides,
                str(array.dtype),
            ),
            anchor,
        )

    def _staged_weight(self, source: np.ndarray, f32_factory) -> _SharedArray:
        """Shared float32 segment for a GEMM rhs, staged at most once.

        ``source`` is the fingerprint carrier (the stable int8/float weight
        array); ``f32_factory`` produces the exact float32 operand content
        and is only invoked on a staging miss, so cache hits — the steady
        state — pay neither a cast nor a copy.  Mutating a staged array in
        place is outside the contract (the repo's kernels re-derive or
        freeze weights; they never mutate a staged operand) — call
        :meth:`shutdown` to invalidate staging wholesale.
        """
        token, anchor = self._token(source)
        entry = self._digest_by_token.get(token)
        if entry is not None:
            ref, digest = entry
            if ref() is anchor and digest in self._staged:
                self._staged.move_to_end(digest)
                return self._staged[digest]
        digest = hashlib.blake2b(
            np.ascontiguousarray(source).tobytes(),
            digest_size=16,
        ).hexdigest() + f":{source.shape}:{source.dtype}"
        ref = weakref.ref(anchor, lambda _r, t=token: self._digest_by_token.pop(t, None))
        self._digest_by_token[token] = (ref, digest)
        staged = self._staged.get(digest)
        if staged is None:
            staged = _SharedArray(
                np.ascontiguousarray(f32_factory(), dtype=np.float32)
            )
            self._staged[digest] = staged
            while len(self._staged) > self._weight_cache_entries:
                _, evicted = self._staged.popitem(last=False)
                evicted.close()
        else:
            self._staged.move_to_end(digest)
        return staged

    def stage_plan_weights(self, plan) -> None:
        """Stage a compiled plan's frozen INT8 weights into shared segments.

        One staging copy per plan instead of a fingerprint lookup + copy on
        the first serving request; a no-op when sharding cannot engage
        (single worker) or for layers whose reduction is not exact-float32.
        """
        if self.shard_workers < 2:
            return
        wanted = []
        for step in plan.steps:
            for sub in step.constituents:
                engine = getattr(sub.module, "quant_engine", None)
                if engine is None:
                    continue
                if sub.kind == "depthwise":
                    # The sharded depthwise operand is the frozen int8
                    # weight itself (staged as exact float32), provided its
                    # kernel_area reduction stays inside the exact window.
                    weight_q = getattr(engine, "weight_q", None)
                    if (
                        weight_q is not None
                        and weight_q.dtype == np.int8
                        and exact_f32_possible(
                            weight_q.shape[-1], qmax=128, rhs_max=128
                        )
                    ):
                        wanted.append(
                            (weight_q,
                             lambda a=weight_q: a.astype(np.float32))
                        )
                    continue
                # Public staging hook on the frozen serve kernels (see
                # FrozenInt8Kernel.rhs_f32_for); engines without it —
                # training-side kernels that re-derive weights — have
                # nothing stable to stage.
                hook = getattr(engine, "rhs_f32_for", None)
                rhs_f32 = hook(self) if callable(hook) else None
                if rhs_f32 is not None:
                    wanted.append((rhs_f32, lambda a=rhs_f32: a))
        with self._shard_lock:
            self._check_owner()
            # Grow the LRU bound to hold this plan *on top of* everything
            # already staged (plus headroom for ad-hoc kernel calls), so
            # per-plan weights are staged exactly once and survive every
            # traversal and plan swap — including when several engines'
            # plans share this backend instance, where a bound sized to one
            # plan would make the engines evict each other per traversal.
            self._weight_cache_entries = max(
                self._weight_cache_entries,
                len(self._staged) + len(wanted) + 8,
            )
            for source, factory in wanted:
                self._staged_weight(source, factory)
            if wanted:
                # Pre-warm the pool too: engines stage from the main
                # thread at construction, where the O(ms) fork start is
                # still available — a pool first started from inside a
                # threaded server would pay the slower spawn method on
                # the first served request instead.
                self._ensure_pool()

    # ------------------------------------------------------------------ #
    # sharded execution
    # ------------------------------------------------------------------ #
    def _shard_bounds(self, rows: int) -> Optional[List[Tuple[int, int]]]:
        """Row-block bounds across parent + workers, or ``None`` to delegate."""
        if self.shard_workers < 2 or rows < self.min_rows:
            return None
        blocks = min(self.shard_workers, max(2, rows // self.min_rows_per_shard))
        if blocks < 2:
            return None
        bounds = np.linspace(0, rows, blocks + 1).astype(int)
        return [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(blocks)
            if bounds[i] < bounds[i + 1]
        ]

    def _run_sharded(
        self,
        op: str,
        lhs: np.ndarray,
        rhs_staged: _SharedArray,
        out_shape: Tuple[int, int],
        shards: List[Tuple[int, int]],
        qmax: int = 0,
        with_scales: bool = False,
    ):
        """Scatter row blocks to the workers, compute shard 0 in-parent.

        The whole round-trip — ring staging, scatter, local shard 0,
        gather — shows up as one ``shard.ipc`` span in a traced request.
        """
        with obs_trace.span(
            "shard.ipc", op=op, rows=int(out_shape[0]), shards=len(shards),
        ):
            return self._run_sharded_inner(
                op, lhs, rhs_staged, out_shape, shards, qmax, with_scales
            )

    def _run_sharded_inner(
        self,
        op: str,
        lhs: np.ndarray,
        rhs_staged: _SharedArray,
        out_shape: Tuple[int, int],
        shards: List[Tuple[int, int]],
        qmax: int,
        with_scales: bool,
    ):
        workers = self._ensure_pool()
        rings = self._rings
        grew = rings["in"].ensure(lhs.nbytes)
        in_view = rings["in"].view(lhs.shape, lhs.dtype)
        in_view[...] = lhs
        out_nbytes = int(np.prod(out_shape, dtype=np.int64)) * 4
        grew |= rings["out"].ensure(out_nbytes)
        out_view = rings["out"].view(out_shape, np.float32)
        scales_view = None
        if with_scales:
            grew |= rings["scales"].ensure(out_shape[0] * 4)
            scales_view = rings["scales"].view((out_shape[0],), np.float32)
        (_RING_GROWS if grew else _RING_REUSE).inc()
        job = {
            "op": op,
            "qmax": int(qmax),
            "in_name": rings["in"].name,
            "in_shape": lhs.shape,
            "in_dtype": str(lhs.dtype),
            "rhs_name": rhs_staged.name,
            "rhs_shape": rhs_staged.shape,
            "out_name": rings["out"].name,
            "out_shape": out_shape,
            "scales_name": rings["scales"].name if with_scales else "",
        }
        # _shard_bounds caps the block count at num_workers, so there is
        # always exactly one executor per shard: the parent takes shard 0,
        # worker i takes shard i+1.
        busy = []
        for index, (r0, r1) in enumerate(shards[1:]):
            process, conn = workers[index]
            try:
                conn.send(dict(job, r0=r0, r1=r1))
            except (BrokenPipeError, OSError) as error:
                # A worker died between calls.  Terminate the whole pool
                # now: that both makes the next call respawn cleanly and
                # guarantees no already-scattered sibling leaves a stale
                # ack behind that could desynchronize a reused pool.
                _POOL_RESETS.inc()
                self._stop_workers()
                raise RuntimeError(
                    f"shard worker {process.name} is gone ({error}); pool "
                    f"reset — retry the call"
                ) from error
            busy.append((process, conn))
        r0, r1 = shards[0]
        _execute_shard_local(dict(job, r0=r0, r1=r1), in_view, out_view,
                             scales_view, rhs_staged, qmax)
        failures = []
        for process, conn in busy:
            try:
                # Bounded wait: a worker that died (or wedged) must surface
                # as an error, never as an indefinite parent hang.
                if not conn.poll(timeout=30.0):  # pragma: no cover
                    status, detail = "err", (
                        f"worker {process.name} unresponsive "
                        f"(alive={process.is_alive()})"
                    )
                else:
                    status, detail = conn.recv()
            except (EOFError, OSError) as error:
                # A SIGKILLed worker surfaces as EOF or a reset pipe
                # (ConnectionResetError) depending on where the kill lands;
                # both mean the same thing: the worker died mid-call.
                status, detail = "err", (
                    f"worker {process.name} exited ({type(error).__name__})"
                )
            if status != "ok":
                failures.append(detail)
        if failures:
            # A broken pool must not poison every later call: tear the
            # workers down now (staged weights survive) and let the next
            # sharded call respawn a clean pool.
            _POOL_RESETS.inc()
            self._stop_workers()
            raise RuntimeError(
                "shard worker failed:\n" + "\n".join(failures)
            )
        result = np.array(out_view, copy=True)
        if with_scales:
            return result, np.array(scales_view, copy=True)
        return result

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #
    def int8_gemm(self, lhs_q: np.ndarray, rhs_q: np.ndarray) -> np.ndarray:
        if lhs_q.ndim != 2:
            return super().int8_gemm(lhs_q, rhs_q)
        shards = self._shard_bounds(lhs_q.shape[0])
        exact = (
            lhs_q.dtype == np.int8
            and rhs_q.dtype == np.int8
            and exact_f32_possible(lhs_q.shape[-1], qmax=128, rhs_max=128)
        )
        if shards is None or not exact:
            return super().int8_gemm(lhs_q, rhs_q)
        with self._shard_lock:
            staged = self._staged_weight(
                rhs_q, lambda: rhs_q.astype(np.float32)
            )
            return self._run_sharded(
                "int8_gemm", np.ascontiguousarray(lhs_q), staged,
                (lhs_q.shape[0], rhs_q.shape[1]), shards,
            )

    def int8_depthwise(
        self, cols_q: np.ndarray, weight_q: np.ndarray
    ) -> np.ndarray:
        """Process-sharded depthwise inner products (positions are rows).

        The im2col'd column blocks ship through the same shared-memory ring
        buffers as the GEMM activations; below :attr:`min_rows` positions
        (small feature maps) the call delegates to the inherited
        ``parallel`` tiling so it never pays the IPC round-trip.
        """
        if cols_q.ndim != 3:
            return super().int8_depthwise(cols_q, weight_q)
        shards = self._shard_bounds(cols_q.shape[0])
        exact = (
            cols_q.dtype == np.int8
            and weight_q.dtype == np.int8
            and exact_f32_possible(cols_q.shape[2], qmax=128, rhs_max=128)
        )
        if shards is None or not exact:
            return super().int8_depthwise(cols_q, weight_q)
        with self._shard_lock:
            staged = self._staged_weight(
                weight_q, lambda: weight_q.astype(np.float32)
            )
            return self._run_sharded(
                "depthwise", np.ascontiguousarray(cols_q), staged,
                (cols_q.shape[0], cols_q.shape[1]), shards,
            )

    def rowwise_quantized_gemm(
        self,
        x: np.ndarray,
        rhs_q: np.ndarray,
        qmax: int,
        rhs_f32: Optional[np.ndarray] = None,
        exact_f32: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float32)
        shards = self._shard_bounds(x.shape[0]) if x.ndim == 2 else None
        exact = exact_f32 or exact_f32_possible(rhs_q.shape[0], qmax)
        if shards is None or not exact:
            return super().rowwise_quantized_gemm(
                x, rhs_q, qmax, rhs_f32=rhs_f32, exact_f32=exact_f32
            )
        with self._shard_lock:
            if rhs_f32 is not None:
                staged = self._staged_weight(rhs_f32, lambda: rhs_f32)
            else:
                staged = self._staged_weight(
                    rhs_q, lambda: rhs_q.astype(np.float32)
                )
            out, scales = self._run_sharded(
                "rowwise", np.ascontiguousarray(x), staged,
                (x.shape[0], rhs_q.shape[1]), shards,
                qmax=qmax, with_scales=True,
            )
            return out, scales

    # ------------------------------------------------------------------ #
    # threshold calibration
    # ------------------------------------------------------------------ #
    def calibrate_min_rows(
        self,
        reduce_dim: int = 196,
        cols: int = 64,
        candidates: Tuple[int, ...] = (64, 128, 256, 512, 1024),
        repeats: int = 3,
        seed: int = 0,
    ) -> int:
        """Measure the shard-vs-delegate crossover and set :attr:`min_rows`.

        Times the serving-shaped fused quantize+GEMM at increasing row
        counts on both the sharded path and the delegated ``parallel``/
        ``fast`` path, then pins :attr:`min_rows` to the smallest candidate
        where sharding wins (or above the largest candidate when it never
        does — e.g. single-core hosts).  Budget is a few milliseconds per
        candidate; deployments call this once at startup, **before**
        serving traffic — the measurement flips :attr:`min_rows`
        transiently, so kernels running concurrently would both observe
        the transient threshold and skew the timing.
        """
        if self.shard_workers < 2:
            self.min_rows = max(self.min_rows, candidates[-1] + 1)
            return self.min_rows
        # Shared timing harness with autopin's ranking calibration (lazy
        # import: autopin pulls the plan layer, which this module must not
        # import eagerly) — both measurements stay methodologically
        # identical by construction.
        from repro.runtime.autopin import time_rowwise_kernel

        crossover = candidates[-1] + 1
        saved = self.min_rows
        try:
            for rows in candidates:
                self.min_rows = 1
                sharded = time_rowwise_kernel(
                    self, rows, reduce_dim, cols, repeats=repeats, seed=seed
                )
                self.min_rows = rows + 1
                delegated = time_rowwise_kernel(
                    self, rows, reduce_dim, cols, repeats=repeats, seed=seed
                )
                if sharded < delegated:
                    crossover = rows
                    break
        finally:
            self.min_rows = saved
        self.min_rows = crossover
        return self.min_rows


def _execute_shard_local(
    job: Dict[str, Any],
    in_view: np.ndarray,
    out_view: np.ndarray,
    scales_view: Optional[np.ndarray],
    rhs_staged: _SharedArray,
    qmax: int,
) -> None:
    """Parent-side shard execution over already-attached views."""
    rhs = _view(rhs_staged.shm, rhs_staged.shape, rhs_staged.dtype)
    _shard_compute(job["op"], qmax, in_view, rhs, out_view, scales_view,
                   job["r0"], job["r1"])


__all__ = [
    "ShardBackend",
    "SHARD_WORKERS_ENV_VAR",
    "SHARD_MIN_ROWS_ENV_VAR",
    "SHARD_START_METHOD_ENV_VAR",
    "DEFAULT_MIN_ROWS",
]
