"""Fast kernel backend: BLAS-tiled integer GEMMs with preallocated scratch.

The core trick generalizes the serving engine's exact-float32 INT8 GEMM to
every integer kernel, training included: with int8 operands every product is
at most ``qmax^2`` and any partial sum of ``K`` products is bounded by
``K * qmax^2``, so while that bound stays below 2^24 (float32's exact-integer
range) a float32 BLAS ``sgemm`` returns the exact integer accumulation — the
same answer as the INT32 path for every summation order, and roughly an
order of magnitude faster than NumPy's non-BLAS integer matmul.

Operand staging (int8 -> float32 casts, quantization levels) goes through
per-thread preallocated scratch buffers so the serving hot path stops paying
an allocation per request batch.  Scratch is only ever used for operands
inside a single kernel call — outputs are always freshly allocated, because
callers retain them (activation caches, futures).

When exactness cannot be guaranteed (wide reduction dimensions, int16/int32
ablation operands) the kernels fall back to the reference integer path, so
the fast backend is bit-identical to the reference backend on every input.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.runtime.backends.reference import (
    ReferenceBackend,
    integer_matmul,
    rowwise_levels,
    rowwise_scales,
)

def exact_f32_possible(
    reduce_dim: int, qmax: int = 127, rhs_max: int = 128
) -> bool:
    """True when an INT8 accumulation over ``reduce_dim`` is exact in f32.

    ``qmax`` bounds the quantized operand's magnitude (the repo's symmetric
    quantizers clip to ±qmax); ``rhs_max`` bounds the other operand and
    defaults to 128 because a raw ``int8`` array may contain -128 even
    though the quantizers never produce it.  Every partial sum then stays
    below ``reduce_dim * qmax * rhs_max``, which must fit inside float32's
    exact-integer range (2^24).
    """
    return reduce_dim * qmax * rhs_max < 2 ** 24


class FastBackend(ReferenceBackend):
    """Exact-float32 integer GEMMs + scratch-buffer operand staging.

    Subclasses the reference backend so the kernels it does not accelerate
    (depthwise einsums, materialized row-wise quantization) exist exactly
    once — any fix there cannot diverge between backends.
    """

    name = "fast"
    wants_f32_rhs = True
    supports_fusion = True

    def __init__(self) -> None:
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    def _scratch(self, tag: str, shape: Tuple[int, ...]) -> np.ndarray:
        """Per-thread reusable float32 buffer for operand staging."""
        buffers: Dict[str, np.ndarray] = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = {}
            self._local.buffers = buffers
        buf = buffers.get(tag)
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if buf is None or buf.size < size:
            buf = np.empty(max(size, 1), dtype=np.float32)
            buffers[tag] = buf
        return buf[:size].reshape(shape)

    def _stage_f32(self, tag: str, values: np.ndarray) -> np.ndarray:
        """Cast an integer operand into a staged float32 buffer."""
        out = self._scratch(tag, values.shape)
        out[...] = values
        return out

    # ------------------------------------------------------------------ #
    def int8_gemm(self, lhs_q: np.ndarray, rhs_q: np.ndarray) -> np.ndarray:
        # Raw int8 operands may contain -128 on either side, so both
        # magnitude bounds are 128 here (quantizer-fed callers that clip to
        # ±qmax get the tighter bound via rowwise_quantized_gemm).
        if (
            lhs_q.dtype == np.int8
            and rhs_q.dtype == np.int8
            and exact_f32_possible(lhs_q.shape[-1], qmax=128, rhs_max=128)
        ):
            lhs_f32 = self._stage_f32("int8_gemm_lhs", lhs_q)
            rhs_f32 = self._stage_f32("int8_gemm_rhs", rhs_q)
            return lhs_f32 @ rhs_f32
        return integer_matmul(lhs_q, rhs_q)

    # int8_depthwise / int8_depthwise_grad: inherited from ReferenceBackend.
    # Neither kernel maps onto a single BLAS call (the forward reduction is
    # kernel_area-sized, the gradient spans all positions and exceeds the
    # float32 exact-integer window for realistic feature maps); the
    # ``parallel`` backend owns the accelerated versions — tiled float32
    # einsums with an exact-window row cap, plus the optional numba path.

    def rowwise_quantized_gemm(
        self,
        x: np.ndarray,
        rhs_q: np.ndarray,
        qmax: int,
        rhs_f32: Optional[np.ndarray] = None,
        exact_f32: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float32)
        scales = rowwise_scales(x, qmax)
        if exact_f32 or exact_f32_possible(rhs_q.shape[0], qmax):
            # Fused quantize+GEMM: the nearest-rounded clipped levels are
            # already exact small integers in float32, so they feed sgemm
            # directly — the int8 round-trip is never materialized.
            levels = x / scales.reshape((-1,) + (1,) * (x.ndim - 1))
            np.rint(levels, out=levels)
            np.clip(levels, -qmax, qmax, out=levels)
            if rhs_f32 is None:
                rhs_f32 = self._stage_f32("rowwise_rhs", rhs_q)
            return levels @ rhs_f32, scales
        q = rowwise_levels(x, scales, qmax).astype(np.int8)
        return integer_matmul(q, rhs_q), scales

    # rowwise_quantize: inherited from ReferenceBackend (already allocation-
    # minimal; the fusion win lives in rowwise_quantized_gemm above).
