"""Parallel kernel backend: row-block tiling across a worker-thread pool.

Every integer kernel in the repo is row-independent (INT8 GEMM rows, the
per-position depthwise inner products) or reduces over rows with an exact
integer accumulator (the depthwise weight gradient).  That makes them
tileable without changing a single bit: each tile computes exactly the rows
the full kernel would, with the same per-row arithmetic, so the concatenated
(or integer-summed) result is identical to the ``fast`` and ``reference``
backends on every input.

Three mechanisms stack up here:

* **Thread tiling.**  Row blocks are dispatched to a shared
  :class:`~concurrent.futures.ThreadPoolExecutor`; NumPy releases the GIL
  inside BLAS and buffered ufunc loops, so the tiles genuinely overlap on
  multi-core hosts.  The calling thread processes the first tile itself, and
  per-tile operand staging reuses the ``fast`` backend's per-*thread*
  scratch buffers — each pool worker owns its own scratch, so no
  tile ever contends on staging memory.
* **Exact-float32 tiles.**  Each tile runs the ``fast`` backend's trick:
  int8 operands staged to float32 feed BLAS ``sgemm``/vectorized einsums
  whose accumulations stay inside float32's exact-integer window.  For the
  depthwise *gradient* the reduction spans all positions and can leave that
  window, so tiles are capped at an exact-window row count and their exact
  partial sums accumulate in int64 — still bit-identical, now parallel.
  This finally takes ``int8_depthwise``/``int8_depthwise_grad`` off the
  reference integer-einsum path.
* **Optional numba JIT.**  When numba is importable
  (``importlib.util.find_spec("numba")``), the depthwise inner products
  compile to ``nogil`` machine-code loops that skip operand staging
  entirely; without numba (or if compilation fails) the NumPy tile kernels
  above serve unchanged.  Nothing is ever downloaded or required.

On single-core hosts (``num_workers == 1``) tiling cannot pay for itself, so
the GEMM kernels delegate straight to the inherited ``fast`` implementations
and only the depthwise float32 kernels remain active — ``parallel`` is then
simply ``fast`` with faster depthwise products.
"""

from __future__ import annotations

import atexit
import importlib.util
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.backends.fast import FastBackend, exact_f32_possible
from repro.runtime.backends.reference import (
    integer_matmul,
    rowwise_levels,
    rowwise_scales,
)

#: Environment override for the worker-pool width (default: CPU count).
WORKERS_ENV_VAR = "REPRO_PARALLEL_WORKERS"

_NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None
_numba_kernels: Optional[tuple] = None
_numba_lock = threading.Lock()


def _load_numba_kernels() -> Optional[tuple]:
    """Compile the depthwise kernels with numba once, or return ``None``.

    Gated on ``find_spec`` so environments without numba never attempt the
    import; any compilation failure also degrades cleanly to the NumPy
    kernels.
    """
    global _numba_kernels
    if not _NUMBA_AVAILABLE:
        return None
    if _numba_kernels is not None:
        return _numba_kernels or None
    with _numba_lock:
        if _numba_kernels is not None:
            return _numba_kernels or None
        try:
            import numba

            @numba.njit(nogil=True, cache=True)
            def depthwise(cols_q, weight_q, out):  # pragma: no cover - JIT
                positions, channels, kernel = cols_q.shape
                for p in range(positions):
                    for c in range(channels):
                        acc = np.int64(0)
                        for k in range(kernel):
                            acc += np.int64(cols_q[p, c, k]) * np.int64(
                                weight_q[c, k]
                            )
                        out[p, c] = acc

            @numba.njit(nogil=True, cache=True)
            def depthwise_grad(grad_q, cols_q, out):  # pragma: no cover - JIT
                positions, channels, kernel = cols_q.shape
                for p in range(positions):
                    for c in range(channels):
                        g = np.int64(grad_q[p, c])
                        for k in range(kernel):
                            out[c, k] += g * np.int64(cols_q[p, c, k])

            # njit defers compilation to the first call; probe both kernels
            # here so a broken numba install (llvmlite/LLVM mismatch, cache
            # write failure) trips the fallback instead of crashing the
            # first inference on a pool worker thread.
            probe_cols = np.zeros((1, 1, 1), dtype=np.int8)
            depthwise(probe_cols, np.zeros((1, 1), dtype=np.int8),
                      np.zeros((1, 1), dtype=np.int64))
            depthwise_grad(np.zeros((1, 1), dtype=np.int8), probe_cols,
                           np.zeros((1, 1), dtype=np.int64))
            _numba_kernels = (depthwise, depthwise_grad)
        except Exception:  # numba present but unusable: fall back silently
            _numba_kernels = ()
    return _numba_kernels or None


def _default_workers() -> int:
    override = os.environ.get(WORKERS_ENV_VAR)
    if override:
        return max(1, int(override))
    return max(1, os.cpu_count() or 1)


class ParallelBackend(FastBackend):
    """Tiled, threaded variant of the ``fast`` exact kernels."""

    name = "parallel"
    supports_fusion = True

    def __init__(
        self,
        num_workers: Optional[int] = None,
        min_rows_per_tile: int = 32,
    ) -> None:
        super().__init__()
        self.num_workers = (
            _default_workers() if num_workers is None else max(1, int(num_workers))
        )
        self.min_rows_per_tile = max(1, int(min_rows_per_tile))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._pool_pid: Optional[int] = None
        self._atexit_registered = False

    # ------------------------------------------------------------------ #
    # tiling machinery
    # ------------------------------------------------------------------ #
    def _tiles(
        self, rows: int, max_tile_rows: Optional[int] = None
    ) -> Optional[List[Tuple[int, int]]]:
        """Row-block bounds, or ``None`` when tiling cannot pay for itself.

        ``max_tile_rows`` caps a tile's height regardless of worker count
        (used by the depthwise gradient to stay inside the exact-float32
        accumulation window).
        """
        blocks = min(self.num_workers, rows // self.min_rows_per_tile)
        if max_tile_rows is not None and rows > max_tile_rows:
            blocks = max(blocks, -(-rows // max_tile_rows))
        if blocks < 2:
            return None
        bounds = np.linspace(0, rows, blocks + 1).astype(int)
        return [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(blocks)
            if bounds[i] < bounds[i + 1]
        ]

    def _executor(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is not None and self._pool_pid == os.getpid():
            return pool
        with self._pool_lock:
            # A pool inherited through os.fork is dead weight: the worker
            # threads did not survive into the child, so submitting to it
            # would queue work forever.  Drop the handle (the parent still
            # owns the real pool) and build a fresh one for this process.
            if self._pool is not None and self._pool_pid != os.getpid():
                self._pool = None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="repro-parallel",
                )
                self._pool_pid = os.getpid()
                if not self._atexit_registered:
                    # Idempotent shutdown at interpreter exit; explicit
                    # shutdown() / context-manager exit remains the
                    # deterministic path for tests and short-lived tools.
                    atexit.register(self.shutdown)
                    self._atexit_registered = True
        return self._pool

    @property
    def pool_active(self) -> bool:
        """True while a worker pool this process owns is live.

        Shared contract with :class:`ShardBackend` — callers that start a
        pool as a side effect (autopin calibration) consult it to release
        pools no engine will ever close.
        """
        return self._pool is not None and self._pool_pid == os.getpid()

    @property
    def workers_active(self) -> bool:
        """True when *any* worker resource (threads or processes) is live.

        :attr:`pool_active` keeps backend-specific semantics (the shard
        subclass reports its process pool there); this is the
        union view calibration uses to decide what it started.
        """
        return self.pool_active

    def stop_workers(self) -> None:
        """Release worker resources without touching cached operands.

        For the thread-pool backend this is simply :meth:`shutdown` (it
        owns no shared segments); the shard subclass overrides both this
        and :meth:`shutdown` to separate worker teardown from staged-weight
        invalidation.
        """
        self.shutdown()

    def shutdown(self) -> None:
        """Join and release the worker-thread pool (idempotent).

        The backend stays usable: the next tiled kernel call lazily builds
        a fresh pool.  A pool inherited through ``os.fork`` is discarded
        without joining — its threads only exist in the parent.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            owner = self._pool_pid
            self._pool_pid = None
        if pool is not None and owner == os.getpid():
            pool.shutdown(wait=True)

    def _run_tiles(
        self, work: Callable[[int, int], None], tiles: Sequence[Tuple[int, int]]
    ) -> None:
        """Run ``work(r0, r1)`` over every tile; calling thread takes tile 0.

        A concurrent :meth:`shutdown` (another engine closing a shared
        backend) may retire the pool between lookup and submit; tiles are
        order-independent and exact, so the unsubmitted remainder simply
        runs inline on the calling thread — same bits, one pool restart
        later.
        """
        if len(tiles) == 1 or self.num_workers == 1:
            for r0, r1 in tiles:
                work(r0, r1)
            return
        pool = self._executor()
        futures = []
        inline: List[Tuple[int, int]] = []
        for r0, r1 in tiles[1:]:
            try:
                futures.append(pool.submit(work, r0, r1))
            except RuntimeError:  # pool shut down mid-call
                inline.append((r0, r1))
        work(*tiles[0])
        for r0, r1 in inline:
            work(r0, r1)
        for future in futures:
            future.result()  # propagate worker exceptions

    # ------------------------------------------------------------------ #
    # GEMM kernels
    # ------------------------------------------------------------------ #
    def int8_gemm(self, lhs_q: np.ndarray, rhs_q: np.ndarray) -> np.ndarray:
        if lhs_q.ndim != 2:
            return super().int8_gemm(lhs_q, rhs_q)
        tiles = self._tiles(lhs_q.shape[0])
        if tiles is None:
            return super().int8_gemm(lhs_q, rhs_q)
        exact = (
            lhs_q.dtype == np.int8
            and rhs_q.dtype == np.int8
            and exact_f32_possible(lhs_q.shape[-1], qmax=128, rhs_max=128)
        )
        if exact:
            # Stage the shared rhs once (workers only read it); each tile
            # stages its own lhs rows into per-thread scratch.
            rhs_shared = rhs_q.astype(np.float32)
            out = np.empty((lhs_q.shape[0], rhs_q.shape[1]), dtype=np.float32)

            def work(r0: int, r1: int) -> None:
                lhs_f32 = self._stage_f32("parallel_lhs", lhs_q[r0:r1])
                np.matmul(lhs_f32, rhs_shared, out=out[r0:r1])

        else:
            narrow = lhs_q.dtype == np.int8 and rhs_q.dtype == np.int8
            accumulator = np.int32 if narrow else np.int64
            rhs_shared = rhs_q.astype(accumulator)
            out = np.empty(
                (lhs_q.shape[0], rhs_q.shape[1]), dtype=accumulator
            )

            def work(r0: int, r1: int) -> None:
                np.matmul(
                    lhs_q[r0:r1].astype(accumulator), rhs_shared, out=out[r0:r1]
                )

        self._run_tiles(work, tiles)
        return out

    def rowwise_quantized_gemm(
        self,
        x: np.ndarray,
        rhs_q: np.ndarray,
        qmax: int,
        rhs_f32: Optional[np.ndarray] = None,
        exact_f32: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float32)
        tiles = self._tiles(x.shape[0]) if x.ndim == 2 else None
        if tiles is None:
            return super().rowwise_quantized_gemm(
                x, rhs_q, qmax, rhs_f32=rhs_f32, exact_f32=exact_f32
            )
        rows, cols = x.shape[0], rhs_q.shape[1]
        scales = np.empty(rows, dtype=np.float32)
        exact = exact_f32 or exact_f32_possible(rhs_q.shape[0], qmax)
        if exact:
            rhs_shared = (
                rhs_f32 if rhs_f32 is not None else rhs_q.astype(np.float32)
            )
            out = np.empty((rows, cols), dtype=np.float32)

            def work(r0: int, r1: int) -> None:
                # Per-row scales and levels are independent of the tiling,
                # and the exact-integer accumulation is independent of the
                # BLAS blocking — both are bit-identical to the full-batch
                # fast kernel.
                tile = x[r0:r1]
                tile_scales = rowwise_scales(tile, qmax)
                scales[r0:r1] = tile_scales
                levels = tile / tile_scales[:, None]
                np.rint(levels, out=levels)
                np.clip(levels, -qmax, qmax, out=levels)
                np.matmul(levels, rhs_shared, out=out[r0:r1])

        else:
            rhs_shared = rhs_q.astype(np.int32)
            out = np.empty((rows, cols), dtype=np.int32)

            def work(r0: int, r1: int) -> None:
                tile = x[r0:r1]
                tile_scales = rowwise_scales(tile, qmax)
                scales[r0:r1] = tile_scales
                q = rowwise_levels(tile, tile_scales, qmax).astype(np.int8)
                np.matmul(q.astype(np.int32), rhs_shared, out=out[r0:r1])

        self._run_tiles(work, tiles)
        return out, scales

    # ------------------------------------------------------------------ #
    # depthwise kernels (off the reference path at last)
    # ------------------------------------------------------------------ #
    def int8_depthwise(
        self, cols_q: np.ndarray, weight_q: np.ndarray
    ) -> np.ndarray:
        if not (
            cols_q.dtype == np.int8
            and weight_q.dtype == np.int8
            and exact_f32_possible(cols_q.shape[2], qmax=128, rhs_max=128)
        ):
            return super().int8_depthwise(cols_q, weight_q)
        positions, channels = cols_q.shape[0], cols_q.shape[1]
        out = np.empty((positions, channels), dtype=np.int64)
        numba_kernels = _load_numba_kernels()
        if numba_kernels is not None:
            depthwise_jit = numba_kernels[0]

            def work(r0: int, r1: int) -> None:
                depthwise_jit(cols_q[r0:r1], weight_q, out[r0:r1])

        else:
            weight_f32 = weight_q.astype(np.float32)

            def work(r0: int, r1: int) -> None:
                # The per-(position, channel) reduction spans kernel_area
                # products bounded by 128^2, far inside float32's exact
                # window — the float einsum vectorizes where the integer
                # einsum cannot.
                out[r0:r1] = np.einsum(
                    "pck,ck->pc", cols_q[r0:r1].astype(np.float32), weight_f32
                )

        tiles = self._tiles(positions) or [(0, positions)]
        self._run_tiles(work, tiles)
        return out

    def int8_depthwise_grad(
        self, grad_q: np.ndarray, cols_q: np.ndarray
    ) -> np.ndarray:
        if not (
            grad_q.dtype == np.int8
            and cols_q.dtype == np.int8
            and cols_q.shape[0] > 0
        ):
            return super().int8_depthwise_grad(grad_q, cols_q)
        positions = cols_q.shape[0]
        # Each tile's float32 accumulation must stay exact: per-position
        # products are bounded by 128^2, so cap tile height accordingly
        # (tiles is never None once positions exceeds the cap).
        max_tile = max(1, (2 ** 24 - 1) // (128 * 128))
        tiles = self._tiles(positions, max_tile_rows=max_tile)
        if tiles is None:
            tiles = [(0, positions)]
        partials = np.zeros((len(tiles),) + cols_q.shape[1:], dtype=np.int64)
        numba_kernels = _load_numba_kernels()
        if numba_kernels is not None:
            grad_jit = numba_kernels[1]

            def work(index: int, r0: int, r1: int) -> None:
                grad_jit(grad_q[r0:r1], cols_q[r0:r1], partials[index])

        else:

            def work(index: int, r0: int, r1: int) -> None:
                # Exact inside the tile (the row cap keeps every partial sum
                # below 2^24); the cross-tile reduction is integer.
                partials[index] = np.einsum(
                    "pc,pck->ck",
                    grad_q[r0:r1].astype(np.float32),
                    cols_q[r0:r1].astype(np.float32),
                )

        if len(tiles) == 1 or self.num_workers == 1:
            for index, (r0, r1) in enumerate(tiles):
                work(index, r0, r1)
        else:
            pool = self._executor()
            futures = []
            inline = []
            for index, (r0, r1) in enumerate(tiles[1:], start=1):
                try:
                    futures.append(pool.submit(work, index, r0, r1))
                except RuntimeError:  # pool shut down mid-call: run inline
                    inline.append((index, r0, r1))
            work(0, *tiles[0])
            for index, r0, r1 in inline:
                work(index, r0, r1)
            for future in futures:
                future.result()
        return partials.sum(axis=0)


__all__ = ["ParallelBackend", "WORKERS_ENV_VAR"]
