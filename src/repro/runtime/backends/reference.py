"""Reference kernel backend: plain NumPy, bit-identical to the seed code.

Every kernel here is the exact arithmetic the repo shipped with before the
runtime layer existed: FP32 GEMMs via ``@``, integer GEMMs with INT8 operands
accumulated in INT32 (INT64 for the wide-operand bit-width ablations), and
depthwise inner products via integer ``einsum``.  The reference backend is
the correctness oracle the fast backend is tested against.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.runtime.backends.base import Backend


def integer_matmul(lhs_q: np.ndarray, rhs_q: np.ndarray) -> np.ndarray:
    """Integer GEMM with INT32 accumulation (INT64 for wide operands).

    Shared by both backends as the exactness fallback: products of int8
    operands are 16-bit and INT32 accumulation never overflows for
    K < 2^16; wider operands (int16/int32) accumulate in INT64.
    """
    narrow = lhs_q.dtype == np.int8 and rhs_q.dtype == np.int8
    accumulator = np.int32 if narrow else np.int64
    return lhs_q.astype(accumulator) @ rhs_q.astype(accumulator)


def rowwise_scales(values: np.ndarray, qmax: int) -> np.ndarray:
    """Per-row symmetric quantization scales (float32, never zero)."""
    flat = np.abs(values.reshape(values.shape[0], -1))
    extremes = flat.max(axis=1) if flat.size else np.zeros(
        values.shape[0], dtype=np.float32
    )
    return (np.maximum(extremes, np.float32(1e-12)) / np.float32(qmax)).astype(
        np.float32
    )


def rowwise_levels(
    values: np.ndarray, scales: np.ndarray, qmax: int
) -> np.ndarray:
    """Nearest-rounded, clipped quantization levels as float32 integers."""
    levels = values / scales.reshape((-1,) + (1,) * (values.ndim - 1))
    np.rint(levels, out=levels)
    np.clip(levels, -qmax, qmax, out=levels)
    return levels


class ReferenceBackend(Backend):
    """The seed NumPy kernels, unchanged."""

    name = "reference"

    # ------------------------------------------------------------------ #
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def int8_gemm(self, lhs_q: np.ndarray, rhs_q: np.ndarray) -> np.ndarray:
        return integer_matmul(lhs_q, rhs_q)

    def int8_depthwise(
        self, cols_q: np.ndarray, weight_q: np.ndarray
    ) -> np.ndarray:
        return np.einsum(
            "pck,ck->pc",
            cols_q.astype(np.int32),
            weight_q.astype(np.int32),
            dtype=np.int64,
        )

    def int8_depthwise_grad(
        self, grad_q: np.ndarray, cols_q: np.ndarray
    ) -> np.ndarray:
        return np.einsum(
            "pc,pck->ck",
            grad_q.astype(np.int32),
            cols_q.astype(np.int32),
            dtype=np.int64,
        )

    def rowwise_quantized_gemm(
        self,
        x: np.ndarray,
        rhs_q: np.ndarray,
        qmax: int,
        rhs_f32: Optional[np.ndarray] = None,
        exact_f32: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float32)
        scales = rowwise_scales(x, qmax)
        q = rowwise_levels(x, scales, qmax).astype(np.int8)
        return integer_matmul(q, rhs_q), scales

    def rowwise_quantize(
        self, values: np.ndarray, qmax: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        values = np.asarray(values, dtype=np.float32)
        scales = rowwise_scales(values, qmax)
        q = rowwise_levels(values, scales, qmax).astype(np.int8)
        return q, scales
