"""Backend registry.

Backends are registered by name and instantiated once (they may hold
per-thread scratch state and worker pools).  ``reference`` is the seed NumPy
arithmetic, ``fast`` the BLAS-tiled exact-float32 variant, ``parallel`` the
row-block-threaded tiling of the fast kernels (plus float32/numba depthwise
products), and ``shard`` the multiprocess row-block sharding of the exact
GEMMs through shared-memory segments; all four are bit-identical on every
input, so selection is purely a performance knob —
:func:`repro.runtime.autopin.autopin` picks per layer from measured data.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from repro.runtime.backends.base import Backend
from repro.runtime.backends.fast import FastBackend, exact_f32_possible
from repro.runtime.backends.parallel import ParallelBackend
from repro.runtime.backends.reference import ReferenceBackend, integer_matmul
from repro.runtime.backends.shard import ShardBackend

_FACTORIES: Dict[str, Callable[[], Backend]] = {}
_INSTANCES: Dict[str, Backend] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under ``name`` (overwrites any previous)."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_FACTORIES)


def get_backend(name: Union[str, Backend]) -> Backend:
    """Resolve a backend name (or pass a backend instance through)."""
    if isinstance(name, Backend):
        return name
    try:
        instance = _INSTANCES.get(name)
        if instance is None:
            instance = _FACTORIES[name]()
            _INSTANCES[name] = instance
        return instance
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


register_backend("reference", ReferenceBackend)
register_backend("fast", FastBackend)
register_backend("parallel", ParallelBackend)
register_backend("shard", ShardBackend)

__all__ = [
    "Backend",
    "ReferenceBackend",
    "FastBackend",
    "ParallelBackend",
    "ShardBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "integer_matmul",
    "exact_f32_possible",
]
