"""Instrumentation hooks on the runtime dispatch layer.

Every kernel the runtime dispatches (integer GEMMs, FP32 GEMMs, depthwise
inner products, quantization passes) and every module forward reports here.
Observers register an :class:`Instrumentation` hook and see the traffic of
*any* backend — the op counting behind Table IV and the hardware profiler
both plug in this way, so neither needs code inside the kernels themselves.

Fused plan steps keep this contract intact: a fused GEMM emits exactly the
MACs its constituent ops would (bias/activation passes were never counted as
MACs on the unfused path either), and while any hook is registered the
executor runs fused steps as the original step-per-module walk — so
per-module observers (``on_module``) miss nothing and Table IV accounting is
unchanged by fusion.

:class:`OpCounts` (formerly ``repro.quant.int8_ops.OpCounts``, re-exported
there for compatibility) is the canonical counter record;
:class:`OpCountingHook` adapts it to the hook protocol.

Step timing lives in a **separate registry** (:func:`register_step_hook`):
``on_step`` observes each executed :class:`~repro.runtime.plan.KernelStep`
with its wall-clock duration and the backend that ran it, *without*
counting as an "active hook" — so a registered :class:`StepTimingHook`
never forces the executor off the fused path the way per-module observers
do.  That separation is the point: timing must measure the plan the
process actually serves, fusion included.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple


@dataclass
class OpCounts:
    """Cumulative operation counts performed by an integer engine.

    A plain record with no synchronization: concurrent writers (e.g. one
    counter shared by several serving workers) may lose increments.  For an
    exact tally across threads, observe through a thread-safe
    :class:`OpCountingHook` instead of sharing a raw record.
    """

    int8_mul: int = 0
    int8_add: int = 0
    fp32_cmp: int = 0
    fp32_add: int = 0
    fp32_mul: int = 0

    def merge(self, other: "OpCounts") -> None:
        """Accumulate counts from another counter in place."""
        self.int8_mul += other.int8_mul
        self.int8_add += other.int8_add
        self.fp32_cmp += other.fp32_cmp
        self.fp32_add += other.fp32_add
        self.fp32_mul += other.fp32_mul

    def reset(self) -> None:
        """Zero every counter."""
        self.int8_mul = 0
        self.int8_add = 0
        self.fp32_cmp = 0
        self.fp32_add = 0
        self.fp32_mul = 0

    def as_dict(self) -> dict[str, int]:
        """Counts as a plain dictionary (for reports/serialization)."""
        return {
            "int8_mul": self.int8_mul,
            "int8_add": self.int8_add,
            "fp32_cmp": self.fp32_cmp,
            "fp32_add": self.fp32_add,
            "fp32_mul": self.fp32_mul,
        }


class Instrumentation:
    """Base hook: override the events you care about (all default to no-ops).

    Events fire synchronously on the executing thread; hooks must be cheap
    and must not call back into the runtime.
    """

    def on_int8_macs(self, macs: int) -> None:
        """An integer GEMM/inner product performed ``macs`` INT8 MACs."""

    def on_fp32_macs(self, macs: int) -> None:
        """A full-precision GEMM/inner product performed ``macs`` FP32 MACs."""

    def on_quantize(self, elements: int) -> None:
        """A quantization pass derived scales over ``elements`` values."""

    def on_module(self, module: Any, inputs: Any, output: Any) -> None:
        """A module's forward completed (fires for every ``Module.__call__``)."""

    def on_step(self, step: Any, duration_ms: float, backend: str,
                rows: int) -> None:
        """A plan :class:`~repro.runtime.plan.KernelStep` finished executing.

        Fires only for hooks attached via :func:`register_step_hook`; unlike
        the events above it does not disturb fusion, so ``duration_ms`` is
        the time of the step as actually served (fused or not).
        """


class OpCountingHook(Instrumentation):
    """Adapt an :class:`OpCounts` record to the instrumentation protocol.

    The quantization convention matches the engines': deriving a scale costs
    one FP32 compare (max reduction) and one FP32 add per element, and the
    rounding divide/add is folded into a second add — i.e. Table IV's
    "quantization phase" accounting.

    Updates are serialized with a lock: the hook registry is global so a
    profiler wrapped around a multi-threaded serving engine observes every
    worker's kernels, and plain ``+=`` on the shared record would lose
    increments under that interleaving.  Events fire per kernel call (not
    per element), so the lock is off the inner hot path.
    """

    def __init__(self, counts: Optional[OpCounts] = None) -> None:
        self.counts = counts if counts is not None else OpCounts()
        self._lock = threading.Lock()

    def on_int8_macs(self, macs: int) -> None:
        with self._lock:
            self.counts.int8_mul += macs
            self.counts.int8_add += macs

    def on_fp32_macs(self, macs: int) -> None:
        with self._lock:
            self.counts.fp32_mul += macs
            self.counts.fp32_add += macs

    def on_quantize(self, elements: int) -> None:
        with self._lock:
            self.counts.fp32_cmp += elements
            self.counts.fp32_add += elements


# --------------------------------------------------------------------------- #
# hook registry
# --------------------------------------------------------------------------- #
# Hooks are global (not thread-local) so that a profiler wrapped around a
# multi-threaded serving engine still observes worker-thread kernels.  The
# registry is an immutable tuple rebound atomically under the lock: emit
# paths iterate whatever tuple they loaded, so a concurrent unregister on
# another thread can never make them skip or double-fire a hook mid-walk
# (mutating a shared list while iterating it could do both).
_HOOKS: Tuple[Instrumentation, ...] = ()
_STEP_HOOKS: Tuple[Instrumentation, ...] = ()
_REGISTRY_LOCK = threading.Lock()


def hooks_active() -> bool:
    """Cheap guard for emit call sites on the hot path."""
    return bool(_HOOKS)


def register_hook(hook: Instrumentation) -> Instrumentation:
    """Attach an instrumentation hook to the dispatch layer."""
    global _HOOKS
    with _REGISTRY_LOCK:
        _HOOKS = _HOOKS + (hook,)
    return hook


def unregister_hook(hook: Instrumentation) -> None:
    """Detach a previously registered hook (no-op if absent)."""
    global _HOOKS
    with _REGISTRY_LOCK:
        if hook in _HOOKS:
            hooks = list(_HOOKS)
            hooks.remove(hook)
            _HOOKS = tuple(hooks)


@contextmanager
def instrumented(hook: Instrumentation) -> Iterator[Instrumentation]:
    """Register ``hook`` for the duration of the block."""
    register_hook(hook)
    try:
        yield hook
    finally:
        unregister_hook(hook)


@contextmanager
def counting(counts: Optional[OpCounts] = None) -> Iterator[OpCounts]:
    """Count every dispatched operation in the block into an OpCounts."""
    hook = OpCountingHook(counts)
    with instrumented(hook):
        yield hook.counts


# --------------------------------------------------------------------------- #
# step-timing registry (does NOT force unfusing)
# --------------------------------------------------------------------------- #
def step_hooks_active() -> bool:
    """Cheap executor guard: is anyone listening for step timings?"""
    return bool(_STEP_HOOKS)


def register_step_hook(hook: Instrumentation) -> Instrumentation:
    """Attach a hook that receives ``on_step`` events.

    Deliberately a separate registry from :func:`register_hook`: step hooks
    do not flip :func:`hooks_active`, so the executor keeps running fused
    steps fused and the timings describe production execution.
    """
    global _STEP_HOOKS
    with _REGISTRY_LOCK:
        _STEP_HOOKS = _STEP_HOOKS + (hook,)
    return hook


def unregister_step_hook(hook: Instrumentation) -> None:
    """Detach a step-timing hook (no-op if absent)."""
    global _STEP_HOOKS
    with _REGISTRY_LOCK:
        if hook in _STEP_HOOKS:
            hooks = list(_STEP_HOOKS)
            hooks.remove(hook)
            _STEP_HOOKS = tuple(hooks)


@contextmanager
def step_timing(hook: Optional["StepTimingHook"] = None
                ) -> Iterator["StepTimingHook"]:
    """Collect per-step timings for the duration of the block."""
    hook = hook if hook is not None else StepTimingHook()
    register_step_hook(hook)
    try:
        yield hook
    finally:
        unregister_step_hook(hook)


@dataclass
class StepTiming:
    """Aggregate wall-clock for one (step name, backend) pair."""

    calls: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0
    rows: int = 0


class StepTimingHook(Instrumentation):
    """Aggregate per-step wall-clock by ``(step name, backend)``.

    Register through :func:`register_step_hook` (or the :func:`step_timing`
    context manager) — never :func:`register_hook` — so measuring does not
    change what is measured: fused steps stay fused and the aggregates
    describe the plan as served.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._timings: Dict[Tuple[str, str], StepTiming] = {}

    def on_step(self, step: Any, duration_ms: float, backend: str,
                rows: int) -> None:
        name = getattr(step, "describe", lambda: str(step))()
        key = (name, backend)
        with self._lock:
            timing = self._timings.get(key)
            if timing is None:
                timing = self._timings[key] = StepTiming()
            timing.calls += 1
            timing.total_ms += duration_ms
            timing.max_ms = max(timing.max_ms, duration_ms)
            timing.rows += rows

    def timings(self) -> Dict[Tuple[str, str], StepTiming]:
        """Snapshot of the aggregates keyed by (step name, backend)."""
        with self._lock:
            return {
                key: StepTiming(timing.calls, timing.total_ms,
                                timing.max_ms, timing.rows)
                for key, timing in self._timings.items()
            }

    def format_report(self) -> str:
        """Human-readable table, slowest aggregate first."""
        rows = sorted(
            self.timings().items(), key=lambda item: -item[1].total_ms
        )
        lines = [f"{'step':<40} {'backend':<10} {'calls':>6} "
                 f"{'total ms':>10} {'max ms':>9}"]
        for (name, backend), timing in rows:
            lines.append(
                f"{name:<40.40} {backend:<10} {timing.calls:>6} "
                f"{timing.total_ms:>10.3f} {timing.max_ms:>9.3f}"
            )
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# emit helpers (called by the dispatch layer / kernels)
# --------------------------------------------------------------------------- #
def emit_int8_macs(macs: int, counts: Optional[OpCounts] = None) -> None:
    """Record INT8 MACs into a local counter and every registered hook."""
    if counts is not None:
        counts.int8_mul += macs
        counts.int8_add += macs
    for hook in _HOOKS:
        hook.on_int8_macs(macs)


def emit_fp32_macs(macs: int) -> None:
    """Record FP32 MACs into every registered hook."""
    for hook in _HOOKS:
        hook.on_fp32_macs(macs)


def emit_quantize(elements: int, counts: Optional[OpCounts] = None) -> None:
    """Record a quantization pass (scale derivation over ``elements``)."""
    if counts is not None:
        counts.fp32_cmp += elements
        counts.fp32_add += elements
    for hook in _HOOKS:
        hook.on_quantize(elements)


def emit_module(module: Any, inputs: Any, output: Any) -> None:
    """Record a completed module forward (guard with :func:`hooks_active`)."""
    for hook in _HOOKS:
        hook.on_module(module, inputs, output)


def emit_step(step: Any, duration_ms: float, backend: str,
              rows: int) -> None:
    """Record a timed plan step (guard with :func:`step_hooks_active`)."""
    for hook in _STEP_HOOKS:
        hook.on_step(step, duration_ms, backend, rows)


__all__ = [
    "OpCounts",
    "Instrumentation",
    "OpCountingHook",
    "StepTiming",
    "StepTimingHook",
    "hooks_active",
    "register_hook",
    "unregister_hook",
    "instrumented",
    "counting",
    "step_hooks_active",
    "register_step_hook",
    "unregister_step_hook",
    "step_timing",
    "emit_int8_macs",
    "emit_fp32_macs",
    "emit_quantize",
    "emit_module",
    "emit_step",
]
