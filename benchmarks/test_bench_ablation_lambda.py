"""Experiment E7 — ablation: the look-ahead coefficient schedule.

The paper initializes λ to 0 and increases it by 0.001 per epoch
(Section V-A3), arguing that early in training the later layers are too
unoptimized to provide useful feedback.  This ablation compares the paper's
ramp against a fixed λ and against no look-ahead at all.
"""

from __future__ import annotations

import pytest

from benchmarks._common import bench_epochs, emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.core import FFInt8Config, FFInt8Trainer
from repro.models import build_mlp
from repro.training.schedules import ConstantLambda, LinearLambda

EPOCHS = bench_epochs(18)

VARIANTS = {
    "no look-ahead": {"lookahead": False, "lambda_schedule": None},
    "fixed lambda=0.05": {"lookahead": True,
                          "lambda_schedule": ConstantLambda(0.05)},
    "ramp 0.001/epoch (paper)": {"lookahead": True,
                                 "lambda_schedule": LinearLambda(0.0, 0.001)},
    "ramp 0.01/epoch": {"lookahead": True,
                        "lambda_schedule": LinearLambda(0.0, 0.01)},
}


def _run(bench_mnist):
    train, test = bench_mnist
    accuracies = {}
    for name, overrides in VARIANTS.items():
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                           hidden_units=64, seed=0)
        config = FFInt8Config(
            epochs=EPOCHS, batch_size=64, lr=0.02, overlay_amplitude=2.0,
            evaluate_every=EPOCHS, eval_max_samples=128,
            train_eval_max_samples=32, seed=0, **overrides,
        )
        history = FFInt8Trainer(config).fit(bundle, train, test)
        accuracies[name] = 100.0 * history.final_test_accuracy
    return accuracies


@pytest.mark.benchmark(group="ablation")
def test_ablation_lambda_schedule(benchmark, bench_mnist):
    accuracies = run_once(benchmark, lambda: _run(bench_mnist))

    emit("")
    emit(format_table(
        ["lambda schedule", "final accuracy %"],
        [[name, acc] for name, acc in accuracies.items()],
        title="Ablation — look-ahead coefficient schedule (FF-INT8, MLP)",
        float_format="{:.1f}",
    ))

    result = ExperimentResult(
        experiment_id="ablation_lambda_schedule",
        paper_reference="Section IV-C / V-A3",
        description="FF-INT8 accuracy under different look-ahead coefficient "
                    "schedules",
        parameters={"epochs": EPOCHS},
        results=accuracies,
    )
    save_experiment(result)

    assert all(0.0 <= acc <= 100.0 for acc in accuracies.values())
    best = max(accuracies.values())
    # Look-ahead (any schedule) should be at least competitive with none.
    assert best >= accuracies["no look-ahead"] - 2.0
