"""Diff a fresh benchmark run against the committed results baselines.

The committed ``benchmarks/results/*.json`` records are the repo's
performance ledger; this tool answers "did this change move any number?"
without eyeballing JSON:

* point a fresh run somewhere else with ``REPRO_BENCH_RESULTS_DIR``::

      REPRO_BENCH_RESULTS_DIR=/tmp/fresh PYTHONPATH=src \\
          python -m pytest benchmarks -q -k kernel_micro
      PYTHONPATH=src python benchmarks/compare.py --fresh /tmp/fresh

* every numeric leaf under each record's ``results`` is compared.
  **Wall-clock keys** (``*_ms``, ``*_rps``, throughput, latency, elapsed,
  speedup) are tolerance-banded — by default a fresh value may drift up to
  ``--time-band`` (relative, default 1.0 = 2x either way) before it
  counts, and they are only compared at all when the two records' ``meta``
  sysinfo blocks describe the *same machine and numeric stack* (cpu count,
  arch, NumPy, BLAS, worker-count overrides).  **Structural values** must
  match to ~1e-6: operation-accounting keys (``mac_*``/``quant_*`` —
  deterministic integer arithmetic) on any machine, everything else
  (FP32 training accuracies/losses, timing-rided batching shapes) only
  same-machine.

Exit status: 0 when nothing exceeded its band, 1 otherwise — but only when
strict mode is on (``--strict`` or ``REPRO_BENCH_STRICT=1``, the same
switch the kernel microbenchmark honours); advisory mode always exits 0 so
shared-runner jitter cannot fail CI on its own.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

BASELINE_DIR = Path(__file__).resolve().parent / "results"

from repro.utils.sysinfo import same_machine  # noqa: E402


def _is_time_key(path: str) -> bool:
    """True when a results path holds a wall-clock measurement.

    Wall clock shows up two ways: suffix conventions on scalar keys
    (``*_ms``, ``*_rps``, percentile names) and whole subtrees that are
    nothing but timings (the kernel microbenchmark's ``kernels``/
    ``fused_plan`` tables).
    """
    lowered = path.lower()
    if "kernels." in lowered or "fused_plan." in lowered or (
        "fused_conv_plan." in lowered
    ):
        return True
    if "check_ns." in lowered:  # obs_overhead per-call guard timings
        return True
    leaf = lowered.rsplit(".", 1)[-1]
    if leaf.endswith(("_ms", "_rps", "_s", "_ns", "_pct")):
        return True
    if leaf in ("p50", "p95", "p99"):
        return True
    return any(
        marker in leaf
        for marker in ("latency", "throughput", "elapsed", "speedup",
                       "overhead")
    )


def _is_op_count_key(path: str) -> bool:
    """True for operation-accounting leaves (``mac_*``, ``quant_*`` ops).

    These count deterministic integer arithmetic events, so they are
    comparable across machines where wall clock and FP32-training outcomes
    are not.
    """
    leaf = path.lower().rsplit(".", 1)[-1]
    return leaf.startswith(("mac_", "quant_")) or leaf.endswith(
        ("_macs", "_ops")
    )


def _obs_context(baseline: dict, fresh: dict) -> List[str]:
    """Behavioural-counter diffs between two records' ``meta.obs`` blocks.

    When a wall-clock key drifts, the first question is whether the two
    runs did the same *work*: a record that recompiled plans, restarted a
    shard pool, or regrew IPC rings is slower for a reason the telemetry
    names outright.  Only counters are compared — gauges and histograms
    are point-in-time and load-shaped, so their drift is expected.
    """
    base_counters = ((baseline.get("meta") or {}).get("obs") or {}).get(
        "counters"
    ) or {}
    fresh_counters = ((fresh.get("meta") or {}).get("obs") or {}).get(
        "counters"
    ) or {}
    if not base_counters and not fresh_counters:
        return []
    lines: List[str] = []
    for name in sorted(set(base_counters) | set(fresh_counters)):
        base_value = base_counters.get(name)
        fresh_value = fresh_counters.get(name)
        if base_value != fresh_value:
            shown_base = "absent" if base_value is None else f"{base_value:g}"
            shown_fresh = (
                "absent" if fresh_value is None else f"{fresh_value:g}"
            )
            lines.append(f"obs {name}: {shown_base} -> {shown_fresh}")
    return lines


def _numeric_leaves(value, path: str = "") -> Iterator[Tuple[str, float]]:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield path, float(value)
    elif isinstance(value, dict):
        for key in sorted(value):
            yield from _numeric_leaves(value[key], f"{path}.{key}" if path else key)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            yield from _numeric_leaves(item, f"{path}[{index}]")


def compare_record(
    baseline: dict,
    fresh: dict,
    time_band: float,
) -> Tuple[List[str], List[str], bool]:
    """(hard mismatches, advisory notes, machines_match) for one record."""
    machines_match = same_machine(baseline.get("meta"), fresh.get("meta"))
    base_leaves = dict(_numeric_leaves(baseline.get("results") or {}))
    fresh_leaves = dict(_numeric_leaves(fresh.get("results") or {}))
    hard: List[str] = []
    notes: List[str] = []
    for path in sorted(set(base_leaves) | set(fresh_leaves)):
        if path not in fresh_leaves:
            hard.append(f"{path}: missing from fresh run")
            continue
        if path not in base_leaves:
            notes.append(f"{path}: new in fresh run ({fresh_leaves[path]:g})")
            continue
        base_value, fresh_value = base_leaves[path], fresh_leaves[path]
        if _is_time_key(path):
            if not machines_match:
                continue  # cross-machine wall clock: never comparable
            scale = max(abs(base_value), 1e-9)
            drift = abs(fresh_value - base_value) / scale
            if drift > time_band:
                hard.append(
                    f"{path}: {base_value:g} -> {fresh_value:g} "
                    f"({drift:+.0%} beyond the ±{time_band:.0%} band)"
                )
        else:
            scale = max(abs(base_value), abs(fresh_value), 1e-9)
            if abs(fresh_value - base_value) / scale > 1e-6:
                message = (
                    f"{path}: structural value changed "
                    f"{base_value:g} -> {fresh_value:g}"
                )
                # Operation-count keys (Table IV accounting) are
                # machine-invariant — deterministic integer arithmetic —
                # so their drift is a hard failure even cross-machine;
                # that is what lets the CI compare step catch corrupted op
                # accounting on hosted runners.  Everything else
                # structural (FP32 training accuracies/losses, batching
                # shapes that ride on timing) legitimately moves across
                # machines, so cross-machine it is advisory only.
                hard_failure = machines_match or _is_op_count_key(path)
                (hard if hard_failure else notes).append(message)
    return hard, notes, machines_match


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff fresh benchmark records against committed baselines"
    )
    parser.add_argument("--baseline", default=str(BASELINE_DIR),
                        help="baseline results directory (default: the "
                             "committed benchmarks/results)")
    parser.add_argument("--fresh", required=True,
                        help="directory holding the fresh run's records "
                             "(write one with REPRO_BENCH_RESULTS_DIR)")
    parser.add_argument("--time-band", type=float, default=1.0,
                        help="relative drift allowed on wall-clock keys "
                             "before they count as a mismatch (default 1.0)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on mismatches (also enabled by "
                             "REPRO_BENCH_STRICT=1)")
    args = parser.parse_args(argv)

    strict = args.strict or os.environ.get(
        "REPRO_BENCH_STRICT", ""
    ).strip().lower() not in ("", "0", "false", "no")
    baseline_dir, fresh_dir = Path(args.baseline), Path(args.fresh)
    if not fresh_dir.is_dir():
        print(f"fresh directory {fresh_dir} does not exist")
        return 1 if strict else 0

    total_hard = 0
    compared = 0
    for baseline_path in sorted(baseline_dir.glob("*.json")):
        fresh_path = fresh_dir / baseline_path.name
        if not fresh_path.exists():
            print(f"-- {baseline_path.name}: not in fresh run, skipped")
            continue
        try:
            baseline = json.loads(baseline_path.read_text())
            fresh = json.loads(fresh_path.read_text())
        except ValueError as error:
            print(f"!! {baseline_path.name}: unreadable ({error})")
            total_hard += 1
            continue
        hard, notes, machines_match = compare_record(
            baseline, fresh, args.time_band
        )
        compared += 1
        scope = "same machine" if machines_match else (
            "different machine: wall-clock keys skipped"
        )
        status = "OK" if not hard else f"{len(hard)} mismatch(es)"
        print(f"== {baseline_path.name}: {status} ({scope})")
        for line in hard:
            print(f"   !! {line}")
        for line in notes:
            print(f"   .. {line}")
        if hard:
            # Telemetry context: did the mismatched run do different work?
            for line in _obs_context(baseline, fresh):
                print(f"   >> {line}")
        total_hard += len(hard)

    print(
        f"\ncompared {compared} record(s); {total_hard} mismatch(es); "
        f"{'strict' if strict else 'advisory'} mode"
    )
    return 1 if (strict and total_hard) else 0


if __name__ == "__main__":
    sys.exit(main())
