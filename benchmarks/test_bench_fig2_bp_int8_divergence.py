"""Experiment E1 — Figure 2: direct INT8 gradient quantization under BP.

The paper trains ResNet-18 on CIFAR-10 with FP32 and with directly quantized
INT8 gradients: the FP32 run converges while the INT8 run's loss climbs and
its accuracy stays at random level.  This benchmark trains the reduced-scale
ResNet-18 variant on synthetic CIFAR-10 with both settings and prints the
per-epoch loss/accuracy series that Figure 2 plots.
"""

from __future__ import annotations

import pytest

from benchmarks._common import bench_epochs, emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.models import build_model
from repro.training import make_trainer

EPOCHS = bench_epochs(4)


def _train_both(bench_cifar):
    train, test = bench_cifar
    histories = {}
    for algorithm in ("BP-FP32", "BP-INT8"):
        bundle = build_model("resnet18-mini", input_shape=(3, 16, 16), seed=0)
        trainer = make_trainer(algorithm, epochs=EPOCHS, batch_size=32,
                               lr=0.05, seed=0)
        histories[algorithm] = trainer.fit(bundle, train, test)
    return histories


@pytest.mark.benchmark(group="fig2")
def test_fig2_bp_int8_divergence(benchmark, bench_cifar):
    histories = run_once(benchmark, lambda: _train_both(bench_cifar))

    rows = []
    for epoch in range(EPOCHS):
        fp32 = histories["BP-FP32"].records[epoch]
        int8 = histories["BP-INT8"].records[epoch]
        rows.append([
            epoch + 1, fp32.train_loss, 100 * (fp32.test_accuracy or 0.0),
            int8.train_loss, 100 * (int8.test_accuracy or 0.0),
        ])
    emit("")
    emit(format_table(
        ["epoch", "FP32 loss", "FP32 acc %", "INT8 loss", "INT8 acc %"],
        rows,
        title="Figure 2 — ResNet-18(-mini): loss/accuracy per epoch, "
              "FP32 vs directly-quantized INT8 backpropagation",
        float_format="{:.3f}",
    ))

    fp32_final = histories["BP-FP32"].final_test_accuracy
    int8_final = histories["BP-INT8"].final_test_accuracy
    result = ExperimentResult(
        experiment_id="fig2_bp_int8_divergence",
        paper_reference="Figure 2",
        description="ResNet-18 loss/accuracy per epoch under BP-FP32 vs "
                    "direct BP-INT8 gradient quantization",
        parameters={"epochs": EPOCHS, "model": "resnet18-mini"},
        paper_values={"fp32_converges": True, "int8_accuracy": "random level"},
        results={
            "fp32_losses": histories["BP-FP32"].train_losses,
            "int8_losses": histories["BP-INT8"].train_losses,
            "fp32_accuracies": histories["BP-FP32"].test_accuracies,
            "int8_accuracies": histories["BP-INT8"].test_accuracies,
        },
    )
    save_experiment(result)

    # Shape of Figure 2: FP32 learns; the INT8 run trails it.
    assert fp32_final is not None and int8_final is not None
    assert fp32_final > 0.25
    assert int8_final <= fp32_final + 0.05
