"""Experiment K1 — kernel microbenchmark: gemm / depthwise / fused, per backend.

End-to-end serving numbers fold queueing, Python dispatch and model shape
into one figure; this benchmark times the *kernels* in isolation so a
backend win (or regression) is attributable.  Four kernel cases run on every
registered backend, plus the fused-vs-unfused executor comparison on the
serve-shaped GEMM+activation stack:

* ``gemm_large``    — INT8 GEMM at a deliberately wide shape (the case the
  CI bench-smoke job watches: ``parallel`` must not lose to ``fast`` here,
  and on multi-core hosts ``shard`` must beat ``parallel``).
* ``rowwise_serve`` — fused per-row quantize + GEMM at the folded-label
  serving shape (10 labels x 32 requests of a 14x14 MLP).
* ``conv_cols``     — the same fused quantize+GEMM at an im2col'd conv
  shape (positions are rows: a 64-channel 3x3 conv over a batch of
  16x16 feature maps) — the ResNet/MobileNet serving hot path, where the
  shard backend ships column blocks through its ring buffers.
* ``depthwise`` / ``depthwise_grad`` — the MobileNet/EfficientNet hot path
  the parallel backend took off the reference integer-einsum kernels
  (``depthwise`` now also process-sharded on the shard backend).
* ``fused_plan``    — the compiled norm→gemm→activation serving stack,
  fused vs unfused, on the fusion-capable backends.
* ``fused_conv_plan`` — the compiled conv→batchnorm→activation stack
  (eval-mode BatchNorm folded into the conv epilogue), fused vs unfused.

This record doubles as the data source for measured auto-pinning
(:mod:`repro.runtime.autopin` reads the per-shape, per-backend timings and
the ``meta`` sysinfo block to decide whether they speak for this CPU), so
keeping it fresh directly improves ``--pin auto`` routing.

Every backend result is checked for exactness against ``reference`` before
it is timed — a fast wrong kernel must fail loudly, not win benchmarks.
Timing assertions are advisory by default (shared CI runners jitter); set
``REPRO_BENCH_STRICT=1`` to enforce them.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks._common import emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.models import build_mlp
from repro.nn.activations import ReLU, ReLU6
from repro.nn.containers import Sequential
from repro.nn.conv import Conv2d, DepthwiseConv2d
from repro.nn.norm import BatchNorm2d
from repro.quant import QuantConfig, prepare_int8
from repro.runtime import available_backends, get_backend
from repro.runtime.executor import PlanExecutor


REPEATS = 3 if os.environ.get("REPRO_BENCH_FAST") else 7
STRICT = os.environ.get("REPRO_BENCH_STRICT", "").strip().lower() not in (
    "", "0", "false", "no",
)

#: serve-shaped GEMM: 10 folded label overlays x 32 coalesced requests,
#: 14x14 inputs into 64 hidden units.
SERVE_ROWS, SERVE_IN, SERVE_OUT = 320, 196, 64
LARGE_M, LARGE_K, LARGE_N = 512, 784, 256
DW_POSITIONS, DW_CHANNELS, DW_KERNEL = 4096, 32, 9
#: im2col'd conv GEMM: 4 x 16x16 feature-map positions, 64ch 3x3 reduction.
CONV_ROWS, CONV_K, CONV_N = 1024, 576, 64


def _best_ms(func, repeats: int = REPEATS) -> float:
    """Best-of-N wall-clock of ``func`` (ms); best-of filters scheduler noise."""
    func()  # warm-up: scratch buffers, BLAS thread pools, JIT
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return 1000.0 * best


def _kernel_cases():
    rng = np.random.default_rng(0)
    lhs = rng.integers(-127, 128, size=(LARGE_M, LARGE_K)).astype(np.int8)
    rhs = rng.integers(-127, 128, size=(LARGE_K, LARGE_N)).astype(np.int8)
    x = rng.normal(size=(SERVE_ROWS, SERVE_IN)).astype(np.float32)
    serve_rhs = rng.integers(-127, 128, size=(SERVE_IN, SERVE_OUT)).astype(
        np.int8
    )
    cols = rng.integers(
        -127, 128, size=(DW_POSITIONS, DW_CHANNELS, DW_KERNEL)
    ).astype(np.int8)
    weight = rng.integers(-127, 128, size=(DW_CHANNELS, DW_KERNEL)).astype(
        np.int8
    )
    grad = rng.integers(-127, 128, size=(DW_POSITIONS, DW_CHANNELS)).astype(
        np.int8
    )
    conv_x = rng.normal(size=(CONV_ROWS, CONV_K)).astype(np.float32)
    conv_rhs = rng.integers(-127, 128, size=(CONV_K, CONV_N)).astype(np.int8)
    return {
        "gemm_large": lambda backend: backend.int8_gemm(lhs, rhs),
        "rowwise_serve": lambda backend: backend.rowwise_quantized_gemm(
            x, serve_rhs, 127
        ),
        "conv_cols": lambda backend: backend.rowwise_quantized_gemm(
            conv_x, conv_rhs, 127
        ),
        "depthwise": lambda backend: backend.int8_depthwise(cols, weight),
        "depthwise_grad": lambda backend: backend.int8_depthwise_grad(
            grad, cols
        ),
    }


def _as_comparable(value):
    if isinstance(value, tuple):
        return tuple(np.asarray(part, dtype=np.float64) for part in value)
    return (np.asarray(value, dtype=np.float64),)


def _serve_stack(seed: int = 0):
    """Eval-mode INT8 MLP units at the serving shape, plus a folded batch."""
    bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                       hidden_units=SERVE_OUT, seed=seed)
    units = bundle.ff_units()
    for index, unit in enumerate(units):
        prepare_int8(unit, QuantConfig(rounding="nearest"), seed=seed + index)
        unit.eval()
        unit.set_activation_caching(False)
    inputs = np.random.default_rng(seed).normal(
        size=(SERVE_ROWS, SERVE_IN)
    ).astype(np.float32)
    return units, inputs


def _conv_stack(seed: int = 0):
    """Eval-mode INT8 conv→BN→activation units (the conv serving blocks)."""
    units = [
        Sequential(
            Conv2d(3, 16, 3, stride=1, padding=1, bias=False, rng=seed),
            BatchNorm2d(16), ReLU(),
        ),
        Sequential(
            DepthwiseConv2d(16, 3, stride=1, padding=1, rng=seed + 1),
            BatchNorm2d(16), ReLU6(),
        ),
    ]
    rng = np.random.default_rng(seed + 2)
    for index, unit in enumerate(units):
        prepare_int8(unit, QuantConfig(rounding="nearest"), seed=seed + index)
        for module in unit.modules():
            if isinstance(module, BatchNorm2d):
                # Non-trivial running statistics so the BatchNorm fold is
                # exercised, not a multiply-by-one.
                module.running_mean = rng.normal(
                    size=module.num_features
                ).astype(np.float32)
                module.running_var = (
                    rng.random(module.num_features).astype(np.float32) + 0.5
                )
        unit.eval()
        unit.set_activation_caching(False)
    inputs = rng.normal(size=(8, 3, 16, 16)).astype(np.float32)
    return units, inputs


def _measure():
    backends = available_backends()
    cases = _kernel_cases()
    reference = get_backend("reference")
    timings = {case: {} for case in cases}
    for case, kernel in cases.items():
        expected = _as_comparable(kernel(reference))
        for name in backends:
            backend = get_backend(name)
            for got, want in zip(_as_comparable(kernel(backend)), expected):
                np.testing.assert_array_equal(
                    got, want,
                    err_msg=f"{name} diverged from reference on {case}",
                )
            timings[case][name] = _best_ms(lambda: kernel(backend))

    fused = {}
    fused_conv = {}
    for name in backends:
        if not getattr(get_backend(name), "supports_fusion", False):
            continue
        for stack, table in ((_serve_stack, fused), (_conv_stack, fused_conv)):
            units, inputs = stack()
            fused_exec = PlanExecutor.for_units(units, backend=name)
            unfused_exec = PlanExecutor.for_units(
                units, backend=name, fuse=False
            )
            np.testing.assert_array_equal(
                fused_exec.forward(inputs), unfused_exec.forward(inputs),
                err_msg=f"fused plan diverged on backend {name}",
            )
            fused_ms = _best_ms(lambda: fused_exec.forward(inputs))
            unfused_ms = _best_ms(lambda: unfused_exec.forward(inputs))
            table[name] = {
                "fused_ms": fused_ms,
                "unfused_ms": unfused_ms,
                "speedup": unfused_ms / fused_ms if fused_ms else 0.0,
            }
    return {
        "kernels": timings,
        "fused_plan": fused,
        "fused_conv_plan": fused_conv,
    }


@pytest.mark.benchmark(group="kernel_micro")
def test_kernel_microbenchmark(benchmark):
    measured = run_once(benchmark, _measure)
    timings, fused = measured["kernels"], measured["fused_plan"]
    fused_conv = measured["fused_conv_plan"]
    backends = available_backends()

    rows = [
        [case] + [timings[case].get(name, float("nan")) for name in backends]
        for case in timings
    ]
    emit("")
    emit(format_table(
        ["kernel case"] + [f"{name} (ms)" for name in backends], rows,
        title="kernel microbenchmark (best-of-%d)" % REPEATS,
        float_format="{:.3f}",
    ))
    emit(format_table(
        ["backend", "unfused (ms)", "fused (ms)", "speedup"],
        [
            [name, stats["unfused_ms"], stats["fused_ms"], stats["speedup"]]
            for name, stats in fused.items()
        ],
        title="fused vs unfused serve-shaped plan (norm→gemm→activation x2)",
        float_format="{:.3f}",
    ))
    emit(format_table(
        ["backend", "unfused (ms)", "fused (ms)", "speedup"],
        [
            [name, stats["unfused_ms"], stats["fused_ms"], stats["speedup"]]
            for name, stats in fused_conv.items()
        ],
        title="fused vs unfused conv plan (conv→BN→act + depthwise→BN→act)",
        float_format="{:.3f}",
    ))

    shard_workers = getattr(get_backend("shard"), "shard_workers", 1)
    result = ExperimentResult(
        experiment_id="kernel_micro",
        paper_reference="runtime backends (not in paper)",
        description="Kernel-level microbenchmark: INT8 GEMM, rowwise-"
                    "quantized GEMM, depthwise products and fused plans "
                    "per backend",
        parameters={
            "repeats": REPEATS,
            "gemm_large": [LARGE_M, LARGE_K, LARGE_N],
            "rowwise_serve": [SERVE_ROWS, SERVE_IN, SERVE_OUT],
            "conv_cols": [CONV_ROWS, CONV_K, CONV_N],
            "depthwise": [DW_POSITIONS, DW_CHANNELS, DW_KERNEL],
            "shard_workers": shard_workers,
        },
        results=measured,
        notes="All backends verified bit-identical to reference before "
              "timing; timings are wall-clock on shared hardware.  On "
              "single-core hosts the shard backend delegates everything, "
              "so its numbers track parallel there.  This record also "
              "feeds measured auto-pinning (--pin auto).",
    )
    save_experiment(result)

    # The structural wins fusion/tiling pay for must actually show up; on
    # shared runners the checks are advisory unless REPRO_BENCH_STRICT=1.
    # The fused yardstick is the *unfused fast* time — the hot path before
    # this layer existed — not each backend against itself, which on
    # single-core hosts drowns in worker-pool jitter for ``parallel``.
    complaints = []
    baseline = fused.get("fast", {}).get("unfused_ms")
    for name, stats in fused.items():
        if baseline is not None and stats["fused_ms"] >= baseline:
            complaints.append(
                f"fused {name} plan did not beat the unfused fast path "
                f"({stats['fused_ms']:.3f}ms vs {baseline:.3f}ms)"
            )
    parallel_large = timings["gemm_large"].get("parallel")
    fast_large = timings["gemm_large"].get("fast")
    if parallel_large is not None and fast_large is not None:
        if parallel_large > 1.25 * fast_large:
            complaints.append(
                f"parallel lost to fast on gemm_large "
                f"({parallel_large:.3f}ms vs {fast_large:.3f}ms)"
            )
    # Shard contract, both directions.  The never-regress band only holds
    # where threshold delegation actually engages (single worker, or rows
    # below min_rows) — there shard *is* parallel plus a branch.  Where
    # sharding genuinely runs, IPC overhead on a sub-millisecond kernel is
    # legitimate jitter, so the band would only make strict CI noisy.
    shard_backend = get_backend("shard")
    shard_large = timings["gemm_large"].get("shard")
    shard_serve = timings["rowwise_serve"].get("shard")
    parallel_serve = timings["rowwise_serve"].get("parallel")
    for case, rows, shard_ms, other_ms in (
        ("gemm_large", LARGE_M, shard_large, parallel_large),
        ("rowwise_serve", SERVE_ROWS, shard_serve, parallel_serve),
    ):
        delegates = shard_workers == 1 or rows < shard_backend.min_rows
        if delegates and shard_ms is not None and other_ms is not None:
            if shard_ms > 1.25 * other_ms:
                complaints.append(
                    f"shard regressed vs parallel on {case} "
                    f"({shard_ms:.3f}ms vs {other_ms:.3f}ms) — threshold "
                    f"delegation should make this shape free"
                )
    # The >=1.3x expectation needs real cores to shard across: with only
    # one extra worker process (2-core hosts, i.e. hosted CI runners) the
    # IPC overhead eats the single extra core, so the multiprocess win is
    # only demanded from >=4 workers.  The never-regress band above still
    # applies everywhere.
    if shard_workers >= 4 and shard_large is not None and (
        parallel_large is not None
    ):
        if shard_large > parallel_large / 1.3:
            complaints.append(
                f"shard ({shard_workers} workers) did not beat parallel "
                f">=1.3x on gemm_large ({shard_large:.3f}ms vs "
                f"{parallel_large:.3f}ms)"
            )
    for complaint in complaints:
        emit(f"ADVISORY: {complaint}")
    # Release the shard worker processes before pytest moves on; the
    # backend restarts them lazily if a later benchmark shards again.
    get_backend("shard").shutdown()
    if STRICT:
        assert not complaints, "; ".join(complaints)
