"""Experiment E12 — extension: batch-size and epoch-budget sweeps.

The paper evaluates one operating point (batch 32).  These sweeps show how
the FF-INT8 advantage moves with the two knobs an edge deployment controls:
the mini-batch size (memory advantage widens with batch) and the number of
extra FF epochs that fit inside the BP-GDAI8 time budget (the break-even
point of the "more but cheaper epochs" trade).
"""

from __future__ import annotations

import pytest

from benchmarks._common import bench_epochs, emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.hardware import (
    breakeven_ff_epochs,
    profile_bundle,
    sweep_batch_size,
    sweep_epochs,
)
from repro.models import build_model

BATCH_SIZES = (8, 16, 32, 64, 128)
FF_EPOCH_GRID = (20, 30, 36, 45, 60, 90)
BP_EPOCHS = bench_epochs(30)


def _run():
    bundle = build_model("resnet18")
    profile = profile_bundle(bundle, batch_size=1)
    batch_sweep = sweep_batch_size(profile, batch_sizes=BATCH_SIZES,
                                   dataset_size=50000)
    epoch_sweep = sweep_epochs(profile, ff_epoch_grid=FF_EPOCH_GRID,
                               bp_epochs=BP_EPOCHS, dataset_size=50000)
    return batch_sweep, epoch_sweep


@pytest.mark.benchmark(group="sweeps")
def test_batch_size_and_epoch_sweeps(benchmark):
    batch_sweep, epoch_sweep = run_once(benchmark, _run)

    rows = []
    for batch_size in batch_sweep.values():
        index = batch_sweep.values().index(batch_size)
        rows.append([
            int(batch_size),
            batch_sweep.series("BP-GDAI8", "memory_mb")[index],
            batch_sweep.series("FF-INT8", "memory_mb")[index],
            batch_sweep.savings("FF-INT8", "BP-GDAI8", "memory_mb")[batch_size],
            batch_sweep.savings("FF-INT8", "BP-GDAI8", "time_s")[batch_size],
        ])
    emit("")
    emit(format_table(
        ["batch size", "GDAI8 mem (MB)", "FF-INT8 mem (MB)",
         "memory saving %", "time saving %"],
        rows,
        title="Sweep — FF-INT8 vs BP-GDAI8 across mini-batch sizes (ResNet-18)",
        float_format="{:.1f}",
    ))

    breakeven = breakeven_ff_epochs(epoch_sweep)
    epoch_rows = []
    for value in epoch_sweep.values():
        index = epoch_sweep.values().index(value)
        epoch_rows.append([
            int(value),
            epoch_sweep.series("FF-INT8", "time_s")[index],
            epoch_sweep.series("BP-GDAI8", "time_s")[index],
        ])
    emit("")
    emit(format_table(
        ["FF-INT8 epochs", "FF-INT8 time (s)", f"BP-GDAI8 time (s, {BP_EPOCHS} epochs)"],
        epoch_rows,
        title=f"Sweep — FF-INT8 epoch budget vs the BP-GDAI8 time budget "
              f"(break-even at {breakeven:.0f} FF epochs)",
        float_format="{:.1f}",
    ))

    result = ExperimentResult(
        experiment_id="sweep_batch_epochs",
        paper_reference="extension of Table V",
        description="Batch-size sweep and FF epoch break-even analysis on the "
                    "hardware model",
        parameters={"batch_sizes": list(BATCH_SIZES),
                    "ff_epoch_grid": list(FF_EPOCH_GRID),
                    "bp_epochs": BP_EPOCHS},
        results={
            "batch_sweep": batch_sweep.as_dict(),
            "epoch_sweep": epoch_sweep.as_dict(),
            "breakeven_ff_epochs": breakeven,
        },
    )
    save_experiment(result)

    memory_savings = batch_sweep.savings("FF-INT8", "BP-GDAI8", "memory_mb")
    assert memory_savings[float(BATCH_SIZES[-1])] >= memory_savings[float(BATCH_SIZES[0])]
    assert breakeven is not None and breakeven >= BP_EPOCHS
