"""Experiment O1 — telemetry: tracing-off overhead on the serve hot path.

The ``repro.obs`` layer promises near-zero cost when tracing is off: every
instrumented hop guards its work behind a module-flag check, so the shipped
default (tracing disabled) adds only those checks to the hot path.  This
benchmark holds that promise to a number two ways:

* **check accounting** — the disabled-path guards (``maybe_trace``,
  ``has_active_trace``, ``step_hooks_active``, ``tracing_enabled``) are
  timed in a tight loop, multiplied by how often one served request
  actually hits them (once per request at the batcher, once per batch at
  the engine, twice per plan step), and divided by the measured
  per-request serving time.  That fraction is the structural tracing-off
  overhead and must stay under 1%.
* **A/B wall clock** — the same batched predict loop runs with tracing
  off and with every request traced (``sample=1.0``); the relative
  slowdown is reported so the *enabled* cost stays visible in the ledger.
  It is informational: full tracing is a debugging mode, not the default.

Timing assertions are advisory by default (shared CI runners jitter); set
``REPRO_BENCH_STRICT=1`` to enforce them.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks._common import bench_epochs, emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.core import FFInt8Config, FFInt8Trainer
from repro.models import build_mlp
from repro.obs import (
    clear_buffer,
    disable_tracing,
    enable_tracing,
    has_active_trace,
    maybe_trace,
    tracing_enabled,
)
from repro.runtime import instrument
from repro.serve import build_engine, export_artifact

TRAIN_EPOCHS = bench_epochs(4)
REQUESTS = 512
ENGINE_BATCH = 64
LOOP_REPEATS = 5
CHECK_CALLS = 200_000

STRICT = os.environ.get("REPRO_BENCH_STRICT", "").strip().lower() not in (
    "", "0", "false", "no",
)


def _build_engine(bench_mnist):
    train_set, test_set = bench_mnist
    bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                       hidden_units=64, seed=0)
    config = FFInt8Config(epochs=TRAIN_EPOCHS, batch_size=64, lr=0.02,
                          overlay_amplitude=2.0, evaluate_every=TRAIN_EPOCHS,
                          eval_max_samples=96, seed=0)
    history = FFInt8Trainer(config).fit(bundle, train_set, test_set)
    artifact = export_artifact(
        history.metadata["units"], bundle, goodness=config.goodness,
        overlay_amplitude=config.overlay_amplitude, theta=config.theta,
    )
    engine = build_engine(
        artifact,
        build_mlp(input_shape=(1, 14, 14), hidden_layers=2, hidden_units=64,
                  seed=1),
        backend="fast",
    )
    return engine, test_set


def _time_per_call_ns(func, calls: int = CHECK_CALLS) -> float:
    """Best-of-3 per-call cost of a zero-argument check, in nanoseconds."""
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(calls):
            func()
        best = min(best, time.perf_counter() - started)
    return 1e9 * best / calls


def _serve_loop_s(engine, stream) -> float:
    """Best-of-``LOOP_REPEATS`` wall clock for the batched predict loop."""
    best = float("inf")
    for _ in range(LOOP_REPEATS):
        started = time.perf_counter()
        for begin in range(0, REQUESTS, ENGINE_BATCH):
            engine.predict(stream[begin:begin + ENGINE_BATCH])
        best = min(best, time.perf_counter() - started)
    return best


def _measure(bench_mnist):
    engine, test_set = _build_engine(bench_mnist)
    stream = test_set.images[np.arange(REQUESTS) % len(test_set.images)]
    engine.predict(stream[:ENGINE_BATCH])  # warm-up (plan compile)

    # --- hot path, tracing off (the shipped default) ---
    disable_tracing()
    off_s = _serve_loop_s(engine, stream)
    per_request_s = off_s / REQUESTS

    # --- the same loop with every request traced ---
    clear_buffer()
    enable_tracing(sample=1.0)
    try:
        traced_s = _serve_loop_s(engine, stream)
    finally:
        disable_tracing()
        clear_buffer()

    # --- disabled-path check accounting ---
    check_ns = {
        "maybe_trace": _time_per_call_ns(
            lambda: maybe_trace("serve.request")
        ),
        "has_active_trace": _time_per_call_ns(has_active_trace),
        "step_hooks_active": _time_per_call_ns(instrument.step_hooks_active),
        "tracing_enabled": _time_per_call_ns(tracing_enabled),
    }
    # How often one request pays each check on the serve hot path: the
    # batcher calls ``maybe_trace`` once per request; the engine checks
    # ``tracing_enabled`` once per coalesced batch; the executor checks
    # ``has_active_trace`` and ``step_hooks_active`` once per plan step,
    # amortised over the batch.
    steps = len(engine.executor.plan.steps)
    checks_per_request_ns = (
        check_ns["maybe_trace"]
        + check_ns["tracing_enabled"] / ENGINE_BATCH
        + steps * (check_ns["has_active_trace"]
                   + check_ns["step_hooks_active"]) / ENGINE_BATCH
    )
    disabled_overhead_pct = 100.0 * (
        checks_per_request_ns / (1e9 * per_request_s)
    )
    traced_overhead_pct = 100.0 * (traced_s - off_s) / off_s

    return {
        "requests": REQUESTS,
        "plan_steps": steps,
        "per_request_ms": 1e3 * per_request_s,
        "throughput_rps": REQUESTS / off_s,
        "traced_throughput_rps": REQUESTS / traced_s,
        "check_ns": check_ns,
        "checks_per_request_ns": checks_per_request_ns,
        "disabled_overhead_pct": disabled_overhead_pct,
        "traced_overhead_pct": traced_overhead_pct,
    }


@pytest.mark.benchmark(group="obs")
def test_obs_overhead(benchmark, bench_mnist):
    measured = run_once(benchmark, lambda: _measure(bench_mnist))

    emit("")
    emit(format_table(
        ["check", "per call (ns)"],
        [[name, measured["check_ns"][name]]
         for name in sorted(measured["check_ns"])],
        title="tracing-off guard checks",
        float_format="{:.1f}",
    ))
    emit(f"serve hot path: {measured['per_request_ms']:.4f} ms/request "
         f"({measured['throughput_rps']:.0f} req/s, "
         f"{measured['plan_steps']} plan steps)")
    emit(f"tracing off: {measured['checks_per_request_ns']:.0f} ns of checks "
         f"per request = {measured['disabled_overhead_pct']:.3f}% overhead")
    emit(f"tracing on (sample=1.0): "
         f"{measured['traced_overhead_pct']:+.1f}% wall clock")

    result = ExperimentResult(
        experiment_id="obs_overhead",
        paper_reference="deployment (beyond the paper's tables)",
        description="cost of the telemetry layer on the serve hot path: "
                    "disabled-guard check accounting and traced A/B",
        parameters={"requests": REQUESTS, "engine_batch": ENGINE_BATCH,
                    "train_epochs": TRAIN_EPOCHS,
                    "loop_repeats": LOOP_REPEATS},
        results=measured,
    )
    save_experiment(result)

    # The observability contract: tracing off must be free to within noise.
    # The check-accounting bound is structural (counted calls x measured
    # per-call cost) so it holds even on jittery shared runners; enforce it
    # only under REPRO_BENCH_STRICT like every other timing assertion.
    if STRICT:
        assert measured["disabled_overhead_pct"] < 1.0, (
            f"tracing-off checks cost "
            f"{measured['disabled_overhead_pct']:.3f}% of the serve hot "
            f"path (budget: 1%)"
        )
