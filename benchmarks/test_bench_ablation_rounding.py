"""Experiment E8 — ablation: stochastic vs nearest rounding in FF-INT8.

Section IV-B quantizes the layer inputs and activity gradients with symmetric
uniform quantization *with stochastic rounding* (Gupta et al. 2015).  This
ablation swaps the rounding mode and also reports the raw quantization bias
that motivates the choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import bench_epochs, emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.core import FFInt8Config, FFInt8Trainer
from repro.models import build_mlp
from repro.quant import QuantConfig, fake_quantize

EPOCHS = bench_epochs(18)


def _train(bench_mnist):
    train, test = bench_mnist
    accuracies = {}
    for rounding in ("stochastic", "nearest"):
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                           hidden_units=64, seed=0)
        config = FFInt8Config(
            epochs=EPOCHS, batch_size=64, lr=0.02, overlay_amplitude=2.0,
            quant_config=QuantConfig(bits=8, rounding=rounding, seed=0),
            evaluate_every=EPOCHS, eval_max_samples=128,
            train_eval_max_samples=32, seed=0,
        )
        history = FFInt8Trainer(config).fit(bundle, train, test)
        accuracies[rounding] = 100.0 * history.final_test_accuracy
    return accuracies


def _rounding_bias() -> dict:
    """Mean accumulation bias of repeatedly quantizing small updates."""
    rng = np.random.default_rng(0)
    small_updates = rng.normal(scale=0.002, size=(200, 1000)).astype(np.float32)
    bias = {}
    for rounding in ("stochastic", "nearest"):
        config = QuantConfig(bits=8, rounding=rounding, seed=1)
        # A fixed scale chosen so the updates are sub-step: nearest rounding
        # flushes them to zero, stochastic rounding keeps them in expectation.
        scale = np.float64(0.01)
        accumulated = np.zeros(1000, dtype=np.float64)
        for update in small_updates:
            accumulated += fake_quantize(update, config) if rounding == "stochastic" \
                else np.round(update / scale) * scale
        truth = small_updates.sum(axis=0)
        bias[rounding] = float(np.mean(np.abs(accumulated - truth)))
    return bias


@pytest.mark.benchmark(group="ablation")
def test_ablation_rounding_mode(benchmark, bench_mnist):
    accuracies = run_once(benchmark, lambda: _train(bench_mnist))
    bias = _rounding_bias()

    emit("")
    emit(format_table(
        ["rounding", "FF-INT8 accuracy %", "sub-step accumulation bias"],
        [[name, accuracies[name], bias[name]] for name in accuracies],
        title="Ablation — rounding mode for FF-INT8 quantization",
        float_format="{:.3f}",
    ))

    result = ExperimentResult(
        experiment_id="ablation_rounding",
        paper_reference="Section IV-B (stochastic rounding)",
        description="FF-INT8 accuracy and small-update accumulation bias for "
                    "stochastic vs nearest rounding",
        parameters={"epochs": EPOCHS},
        results={"accuracy": accuracies, "bias": bias},
    )
    save_experiment(result)

    assert all(0.0 <= acc <= 100.0 for acc in accuracies.values())
    # Stochastic rounding is unbiased for sub-step updates; round-to-nearest
    # flushes them, which is the motivation cited by the paper.
    assert bias["stochastic"] < bias["nearest"]
