"""Experiment E4 — Figure 6: FF-INT8 convergence with and without look-ahead.

The paper trains an MLP (2 hidden layers) and ResNet-18 with FF-INT8, with
and without the look-ahead scheme, and plots test accuracy per epoch:
look-ahead converges faster and to higher accuracy, and for the residual
network vanilla FF is far below the look-ahead variant.  This benchmark
reproduces both accuracy-per-epoch series at reduced scale.
"""

from __future__ import annotations

import pytest

from benchmarks._common import bench_epochs, emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.core import FFInt8Config, FFInt8Trainer
from repro.models import build_mlp, build_model
from repro.training.schedules import LinearLambda

MLP_EPOCHS = bench_epochs(24)
RESNET_EPOCHS = bench_epochs(8)

# The paper ramps λ by 0.001 per epoch over runs of 130-180 epochs, reaching
# λ ≈ 0.13-0.18 by convergence.  The reduced-scale benchmarks train for far
# fewer epochs, so the ramp is scaled up to reach a comparable final λ over
# the shorter budget.
MLP_LAMBDA = LinearLambda(initial=0.0, increment=0.01)
RESNET_LAMBDA = LinearLambda(initial=0.0, increment=0.03)


def _train_mlp_pair(bench_mnist):
    train, test = bench_mnist
    histories = {}
    for lookahead in (False, True):
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                           hidden_units=64, seed=0)
        config = FFInt8Config(
            epochs=MLP_EPOCHS, batch_size=64, lr=0.02, lookahead=lookahead,
            lambda_schedule=MLP_LAMBDA if lookahead else None,
            overlay_amplitude=2.0,
            evaluate_every=4, eval_max_samples=128, train_eval_max_samples=32,
            seed=0,
        )
        histories[lookahead] = FFInt8Trainer(config).fit(bundle, train, test)
    return histories


def _train_resnet_pair(bench_cifar):
    train, test = bench_cifar
    histories = {}
    for lookahead in (False, True):
        bundle = build_model("resnet18-mini", input_shape=(3, 16, 16), seed=0)
        config = FFInt8Config(
            epochs=RESNET_EPOCHS, batch_size=32, lr=0.01, lookahead=lookahead,
            lambda_schedule=RESNET_LAMBDA if lookahead else None,
            goodness="mean_squares", theta=0.5,
            overlay_amplitude=2.0, evaluate_every=2, eval_max_samples=64,
            train_eval_max_samples=16, seed=0,
        )
        histories[lookahead] = FFInt8Trainer(config).fit(bundle, train, test)
    return histories


def _accuracy_series(history):
    return [
        (record.epoch, 100.0 * record.test_accuracy)
        for record in history.records
        if record.test_accuracy is not None
    ]


@pytest.mark.benchmark(group="fig6")
def test_fig6a_mlp_lookahead_convergence(benchmark, bench_mnist):
    histories = run_once(benchmark, lambda: _train_mlp_pair(bench_mnist))
    without = _accuracy_series(histories[False])
    with_la = _accuracy_series(histories[True])

    rows = [[e1, a1, a2] for (e1, a1), (_, a2) in zip(without, with_la)]
    emit("")
    emit(format_table(
        ["epoch", "FF-INT8 acc %", "FF-INT8 + look-ahead acc %"],
        rows,
        title="Figure 6(a) — MLP: FF-INT8 test accuracy per epoch",
        float_format="{:.1f}",
    ))

    result = ExperimentResult(
        experiment_id="fig6a_mlp_lookahead",
        paper_reference="Figure 6(a)",
        description="MLP FF-INT8 accuracy per epoch with and without the "
                    "look-ahead scheme",
        parameters={"epochs": MLP_EPOCHS, "hidden_layers": 2},
        paper_values={"without": "~90% after 180 epochs",
                      "with": "slightly higher accuracy after 130 epochs"},
        results={"without_lookahead": without, "with_lookahead": with_la},
    )
    save_experiment(result)

    # Shape: look-ahead must match or beat vanilla FF-INT8 at the end of the
    # budget (the paper reports slightly higher accuracy, sooner).
    assert with_la[-1][1] >= without[-1][1] - 2.0


@pytest.mark.benchmark(group="fig6")
def test_fig6b_resnet_lookahead_convergence(benchmark, bench_cifar):
    histories = run_once(benchmark, lambda: _train_resnet_pair(bench_cifar))
    without = _accuracy_series(histories[False])
    with_la = _accuracy_series(histories[True])

    rows = [[e1, a1, a2] for (e1, a1), (_, a2) in zip(without, with_la)]
    emit("")
    emit(format_table(
        ["epoch", "FF-INT8 acc %", "FF-INT8 + look-ahead acc %"],
        rows,
        title="Figure 6(b) — ResNet-18(-mini): FF-INT8 test accuracy per epoch",
        float_format="{:.1f}",
    ))

    result = ExperimentResult(
        experiment_id="fig6b_resnet_lookahead",
        paper_reference="Figure 6(b)",
        description="ResNet-18 FF-INT8 accuracy per epoch with and without "
                    "look-ahead (residual blocks need cross-layer feedback)",
        parameters={"epochs": RESNET_EPOCHS, "model": "resnet18-mini"},
        paper_values={"without": "converges to only ~60%, unstable",
                      "with": "significantly higher convergence accuracy"},
        results={"without_lookahead": without, "with_lookahead": with_la},
    )
    save_experiment(result)

    assert len(without) == len(with_la)
    assert all(0.0 <= acc <= 100.0 for _, acc in without + with_la)
    # Shape of Figure 6(b): on a residual network the look-ahead variant ends
    # clearly above vanilla FF-INT8.
    assert with_la[-1][1] >= without[-1][1] - 2.0
