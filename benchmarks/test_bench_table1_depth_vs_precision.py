"""Experiment E2 — Table I: MLP depth vs FP32/INT8 training accuracy.

The paper trains MLPs with 0-3 hidden layers (500 neurons each) on MNIST with
FP32 and with directly INT8-quantized gradients, and shows that the INT8
accuracy collapses as depth grows while FP32 improves.  This benchmark runs
the reduced-scale equivalent (64-unit layers, synthetic MNIST at 14x14) and
prints the same table rows.
"""

from __future__ import annotations

import pytest

import numpy as np

from benchmarks._common import bench_epochs, emit, run_once, save_experiment
from repro.analysis import ExperimentResult, collect_first_layer_gradients, format_table
from repro.models import build_mlp
from repro.quant import QuantConfig, fake_quantize
from repro.training import make_trainer

DEPTHS = (0, 1, 2, 3)
PAPER_TABLE1 = {
    0: (89.5, 88.7),
    1: (93.4, 73.8),
    2: (94.5, 62.4),
    3: (94.3, 65.2),
}
EPOCHS = bench_epochs(6)
HIDDEN_UNITS = 64


def _train_depth_sweep(bench_mnist):
    train, test = bench_mnist
    rows = {}
    for depth in DEPTHS:
        accs = {}
        for algorithm in ("BP-FP32", "BP-INT8"):
            bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=depth,
                               hidden_units=HIDDEN_UNITS, seed=0)
            trainer = make_trainer(algorithm, epochs=EPOCHS, batch_size=32,
                                   lr=0.05, seed=0)
            history = trainer.fit(bundle, train, test)
            accs[algorithm] = 100.0 * history.final_test_accuracy
        # Mechanism metric: what fraction of the first layer's FP32 weight
        # gradient is unresolvable (flushed to zero) by direct INT8
        # quantization.  This grows with depth because deeper networks
        # concentrate first-layer gradients near zero while keeping rare
        # large outliers (Figure 3) — the cause of the Table I collapse.
        probe = build_mlp(input_shape=(1, 14, 14), hidden_layers=depth,
                          hidden_units=HIDDEN_UNITS, seed=0)
        stats = collect_first_layer_gradients(probe, train, num_batches=6,
                                              batch_size=32, rng=0)
        quantized = fake_quantize(stats.samples, QuantConfig(rounding="nearest"))
        accs["zero_fraction"] = 100.0 * float(np.mean(quantized == 0.0))
        rows[depth] = accs
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_depth_vs_precision(benchmark, bench_mnist):
    rows = run_once(benchmark, lambda: _train_depth_sweep(bench_mnist))

    table_rows = []
    for depth in DEPTHS:
        fp32 = rows[depth]["BP-FP32"]
        int8 = rows[depth]["BP-INT8"]
        paper_fp32, paper_int8 = PAPER_TABLE1[depth]
        table_rows.append([
            depth, fp32, int8, int8 - fp32, rows[depth]["zero_fraction"],
            paper_fp32, paper_int8, paper_int8 - paper_fp32,
        ])
    emit("")
    emit(format_table(
        ["hidden layers", "FP32 acc %", "INT8 acc %", "diff %",
         "grad zeroed by INT8 %", "paper FP32", "paper INT8", "paper diff"],
        table_rows,
        title="Table I — MLP depth vs training precision (measured | paper)",
        float_format="{:.1f}",
    ))
    emit("note: the synthetic stand-in task saturates with coarse gradients, so "
         "the paper's accuracy collapse is attenuated here; the mechanism "
         "(INT8 cannot resolve the first-layer gradients of deeper nets) is "
         "shown by the 'grad zeroed' column.  See EXPERIMENTS.md.")

    result = ExperimentResult(
        experiment_id="table1_depth_vs_precision",
        paper_reference="Table I",
        description="MLP accuracy vs number of hidden layers for FP32 and "
                    "directly-quantized INT8 backpropagation",
        parameters={"depths": list(DEPTHS), "epochs": EPOCHS,
                    "hidden_units": HIDDEN_UNITS},
        paper_values={str(k): v for k, v in PAPER_TABLE1.items()},
        notes="Accuracy collapse attenuated on the synthetic stand-in; the "
              "gradient-resolution mechanism reproduces (zero fraction grows "
              "with depth).",
    )
    for depth in DEPTHS:
        result.record(f"depth{depth}_fp32", rows[depth]["BP-FP32"])
        result.record(f"depth{depth}_int8", rows[depth]["BP-INT8"])
        result.record(f"depth{depth}_grad_zero_fraction",
                      rows[depth]["zero_fraction"])
    save_experiment(result)

    # Both trainers must complete with sane accuracy at every depth.
    assert all(rows[d]["BP-FP32"] > 40.0 for d in DEPTHS)
    assert all(0.0 <= rows[d]["BP-INT8"] <= 100.0 for d in DEPTHS)
    # Mechanism of Table I: direct INT8 quantization zeroes a larger fraction
    # of the first-layer gradient as the network gets deeper.
    assert rows[DEPTHS[-1]]["zero_fraction"] > rows[DEPTHS[0]]["zero_fraction"]
