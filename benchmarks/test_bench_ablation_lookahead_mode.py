"""Experiment E10 — ablation: exact vs approximate look-ahead gradients.

DESIGN.md §5 documents the ambiguity in Equation 4: the exact gradient of the
look-ahead loss requires propagating goodness signals through later layers
("chained"), while the paper's cost claim corresponds to dropping the
cross-layer terms ("local").  This ablation trains FF-INT8 under both
interpretations plus the no-look-ahead baseline.
"""

from __future__ import annotations

import pytest

from benchmarks._common import bench_epochs, emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.core import FFInt8Config, FFInt8Trainer
from repro.models import build_mlp
from repro.training.schedules import LinearLambda

EPOCHS = bench_epochs(20)

VARIANTS = {
    "no look-ahead": {"lookahead": False, "lambda_schedule": None},
    "look-ahead, local grads": {
        "lookahead": True, "lookahead_mode": "local",
        "lambda_schedule": LinearLambda(0.0, 0.01),
    },
    "look-ahead, chained grads (exact Eq. 4)": {
        "lookahead": True, "lookahead_mode": "chained",
        "lambda_schedule": LinearLambda(0.0, 0.01),
    },
}


def _run(bench_mnist):
    train, test = bench_mnist
    results = {}
    for name, overrides in VARIANTS.items():
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                           hidden_units=64, seed=0)
        config = FFInt8Config(
            epochs=EPOCHS, batch_size=64, lr=0.02, overlay_amplitude=2.0,
            evaluate_every=EPOCHS, eval_max_samples=128,
            train_eval_max_samples=32, seed=0, **overrides,
        )
        history = FFInt8Trainer(config).fit(bundle, train, test)
        results[name] = 100.0 * history.final_test_accuracy
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_lookahead_mode(benchmark, bench_mnist):
    results = run_once(benchmark, lambda: _run(bench_mnist))

    emit("")
    emit(format_table(
        ["variant", "final accuracy %"],
        [[name, acc] for name, acc in results.items()],
        title="Ablation — look-ahead gradient interpretation (FF-INT8, MLP)",
        float_format="{:.1f}",
    ))

    result = ExperimentResult(
        experiment_id="ablation_lookahead_mode",
        paper_reference="Equation 4 / DESIGN.md section 5",
        description="FF-INT8 accuracy with exact (chained) vs approximate "
                    "(local) look-ahead gradients",
        parameters={"epochs": EPOCHS},
        results=results,
    )
    save_experiment(result)

    assert all(0.0 <= acc <= 100.0 for acc in results.values())
    # The exact look-ahead gradient should be at least as good as dropping
    # the cross-layer terms, and both at least competitive with no look-ahead.
    chained = results["look-ahead, chained grads (exact Eq. 4)"]
    assert chained >= results["no look-ahead"] - 2.0
