"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints a
paper-style table (bypassing pytest's output capture so the rows are always
visible in the terminal) and saves a JSON artifact under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from repro.analysis import ExperimentResult
from repro.obs import get_registry
from repro.utils.serialization import save_json
from repro.utils.sysinfo import machine_meta

#: Where benchmark records are written.  ``REPRO_BENCH_RESULTS_DIR`` points
#: fresh runs somewhere else so ``benchmarks/compare.py`` can diff them
#: against the committed baselines without overwriting them.
RESULTS_DIR = Path(
    os.environ.get("REPRO_BENCH_RESULTS_DIR")
    or Path(__file__).resolve().parent / "results"
)


def bench_epochs(default: int) -> int:
    """Epoch budget for a benchmark, reducible for smoke runs.

    ``REPRO_BENCH_EPOCHS=<n>`` pins every benchmark to ``n`` epochs;
    ``REPRO_BENCH_FAST=1`` quarters the default.  CI's benchmark smoke job
    uses this to exercise the harness end-to-end without paying full
    training budgets; accuracy-sensitive assertions should only be relied
    on at the default budget.
    """
    override = os.environ.get("REPRO_BENCH_EPOCHS")
    if override:
        return max(1, int(override))
    fast = os.environ.get("REPRO_BENCH_FAST", "").strip().lower()
    if fast not in ("", "0", "false", "no"):
        return max(1, default // 4)
    return default


def emit(text: str) -> None:
    """Print benchmark output even while pytest captures stdout."""
    stream = getattr(sys, "__stdout__", None) or sys.stdout
    stream.write(text + "\n")
    stream.flush()


def save_experiment(result: ExperimentResult) -> Path:
    """Persist a benchmark's experiment record under benchmarks/results/.

    Every record carries a ``meta`` block (CPU count, NumPy/BLAS build,
    active kernel backend) so wall-clock numbers measured on different
    machines are distinguishable.  The telemetry registry snapshot rides
    along as ``meta.obs`` — plan compiles, shard pool churn, serve counters
    — so a drifted record can be checked for a *behavioural* cause (extra
    compiles, pool resets) before blaming the machine.
    """
    payload = result.as_dict()
    payload["meta"] = machine_meta()
    payload["meta"]["obs"] = get_registry().snapshot()
    return save_json(payload, RESULTS_DIR / f"{result.experiment_id}.json")


def run_once(benchmark, func):
    """Run an expensive benchmark body exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
