"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints a
paper-style table (bypassing pytest's output capture so the rows are always
visible in the terminal) and saves a JSON artifact under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis import ExperimentResult

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def emit(text: str) -> None:
    """Print benchmark output even while pytest captures stdout."""
    stream = getattr(sys, "__stdout__", None) or sys.stdout
    stream.write(text + "\n")
    stream.flush()


def save_experiment(result: ExperimentResult) -> Path:
    """Persist a benchmark's experiment record under benchmarks/results/."""
    return result.save(RESULTS_DIR)


def run_once(benchmark, func):
    """Run an expensive benchmark body exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
