"""Experiment E3 — Figure 3: first-layer gradient distribution vs depth.

The paper plots the FP32 gradient distribution of the first layer for MLPs of
different depth: deeper networks concentrate the gradients in a narrower range
with rare large outliers, which is what defeats direct INT8 quantization.
This benchmark measures those distributions and prints the summary statistics
plus an ASCII rendering of each histogram.
"""

from __future__ import annotations

import pytest

from benchmarks._common import emit, run_once, save_experiment
from repro.analysis import (
    ExperimentResult,
    collect_first_layer_gradients,
    format_table,
    histogram_to_ascii,
)
from repro.models import build_mlp

DEPTHS = (0, 1, 2, 3)


def _collect(bench_mnist):
    train, _ = bench_mnist
    stats = {}
    for depth in DEPTHS:
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=depth,
                           hidden_units=64, seed=0)
        stats[depth] = collect_first_layer_gradients(
            bundle, train, num_batches=6, batch_size=32, rng=0
        )
    return stats


@pytest.mark.benchmark(group="fig3")
def test_fig3_gradient_distribution(benchmark, bench_mnist):
    stats = run_once(benchmark, lambda: _collect(bench_mnist))

    rows = [
        [depth, summary.std, summary.abs_max, summary.percentile_99_9,
         summary.sharpness, summary.kurtosis, summary.int8_quantization_error]
        for depth, summary in stats.items()
    ]
    emit("")
    emit(format_table(
        ["hidden layers", "std", "abs max", "p99.9", "sharpness",
         "kurtosis", "INT8 quant error"],
        rows,
        title="Figure 3 — first-layer FP32 gradient distribution vs depth",
        float_format="{:.5f}",
    ))
    for depth, summary in stats.items():
        counts, edges = summary.histogram
        emit(f"\n  gradient histogram, {depth} hidden layers:")
        emit(histogram_to_ascii(counts, edges, width=50, max_rows=12))

    result = ExperimentResult(
        experiment_id="fig3_gradient_distribution",
        paper_reference="Figure 3",
        description="First-layer gradient distribution statistics for MLPs of "
                    "increasing depth under FP32 backpropagation",
        parameters={"depths": list(DEPTHS), "hidden_units": 64},
        paper_values={
            "observation": "deeper networks have sharper distributions with "
                           "larger extreme values",
        },
    )
    for depth, summary in stats.items():
        result.record(f"depth{depth}", {
            "std": summary.std,
            "abs_max": summary.abs_max,
            "sharpness": summary.sharpness,
            "kurtosis": summary.kurtosis,
            "int8_quantization_error": summary.int8_quantization_error,
        })
    save_experiment(result)

    # Shape of Figure 3: the gradient bulk narrows as the network deepens.
    assert stats[3].std < stats[0].std
    # And every distribution is heavier-tailed than a Gaussian.
    assert all(summary.kurtosis > 3.0 for summary in stats.values())
