"""Shared fixtures for the benchmark harness (reduced-scale datasets)."""

from __future__ import annotations

import pytest

from repro.data import synthetic_cifar10, synthetic_mnist


@pytest.fixture(scope="session")
def bench_mnist():
    """MNIST-shaped data at reduced resolution for the MLP experiments."""
    return synthetic_mnist(num_train=512, num_test=160, seed=0, image_size=14)


@pytest.fixture(scope="session")
def bench_cifar():
    """CIFAR-shaped data at reduced resolution for the conv experiments."""
    return synthetic_cifar10(num_train=256, num_test=96, seed=0, image_size=16)
