"""Experiment E9 — ablation: the goodness threshold θ.

The paper fixes θ = 2.0 (Section V-A3).  θ controls the scale the layer
activities are pushed toward; this ablation sweeps it and reports the final
FF-INT8 accuracy and the achieved positive/negative goodness separation.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import bench_epochs, emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.core import FFInt8Config, FFInt8Trainer, SumSquaredGoodness
from repro.data import LabelOverlay
from repro.models import build_mlp

EPOCHS = bench_epochs(16)
THETAS = (0.5, 1.0, 2.0, 4.0, 8.0)


def _run(bench_mnist):
    train, test = bench_mnist
    results = {}
    goodness = SumSquaredGoodness()
    overlay = LabelOverlay(10, amplitude=2.0)
    probe_x = train.images[:64].reshape(64, -1)
    probe_y = train.labels[:64]
    for theta in THETAS:
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                           hidden_units=64, seed=0)
        config = FFInt8Config(
            epochs=EPOCHS, batch_size=64, lr=0.02, theta=theta,
            overlay_amplitude=2.0, evaluate_every=EPOCHS,
            eval_max_samples=128, train_eval_max_samples=32, seed=0,
        )
        history = FFInt8Trainer(config).fit(bundle, train, test)
        units = history.metadata["units"]
        pos = overlay.positive(probe_x, probe_y)
        neg, _ = overlay.negative(probe_x, probe_y, rng=np.random.default_rng(1))
        hidden_pos, hidden_neg = pos, neg
        separation = []
        for unit in units:
            unit.eval()
            hidden_pos = unit(hidden_pos)
            hidden_neg = unit(hidden_neg)
            separation.append(
                float(np.mean(goodness.value(hidden_pos) > goodness.value(hidden_neg)))
            )
        results[theta] = {
            "accuracy": 100.0 * history.final_test_accuracy,
            "separation": float(np.mean(separation)),
        }
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_goodness_threshold(benchmark, bench_mnist):
    results = run_once(benchmark, lambda: _run(bench_mnist))

    emit("")
    emit(format_table(
        ["theta", "final accuracy %", "pos>neg goodness fraction"],
        [[theta, row["accuracy"], row["separation"]] for theta, row in results.items()],
        title="Ablation — goodness threshold θ (paper uses θ = 2.0)",
        float_format="{:.2f}",
    ))

    result = ExperimentResult(
        experiment_id="ablation_theta",
        paper_reference="Section III / V-A3 (θ = 2.0)",
        description="FF-INT8 accuracy and goodness separation as a function "
                    "of the threshold θ",
        parameters={"epochs": EPOCHS, "thetas": list(THETAS)},
        results={str(theta): row for theta, row in results.items()},
    )
    save_experiment(result)

    assert all(0.0 <= row["accuracy"] <= 100.0 for row in results.values())
    # Every trained configuration must separate positive from negative
    # goodness better than chance.
    assert all(row["separation"] > 0.5 for row in results.values())
