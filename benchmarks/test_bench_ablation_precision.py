"""Experiment E11 — ablation: operand bit-width for Forward-Forward training.

The paper argues FF's layer-local objective makes INT8 training stable.  This
ablation sweeps the quantizer bit-width (4, 8, 16) against the FP32 FF
reference, showing where the precision cliff sits for FF training.
"""

from __future__ import annotations

import pytest

from benchmarks._common import bench_epochs, emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.core import FFConfig, FFInt8Config, FFInt8Trainer, ForwardForwardTrainer
from repro.models import build_mlp
from repro.quant import QuantConfig

EPOCHS = bench_epochs(18)
BIT_WIDTHS = (4, 8, 16)


def _run(bench_mnist):
    train, test = bench_mnist
    results = {}

    fp32_bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                            hidden_units=64, seed=0)
    fp32_config = FFConfig(
        epochs=EPOCHS, batch_size=64, lr=0.02, int8=False, lookahead=True,
        overlay_amplitude=2.0, evaluate_every=EPOCHS, eval_max_samples=128,
        train_eval_max_samples=32, seed=0,
    )
    fp32_history = ForwardForwardTrainer(fp32_config).fit(fp32_bundle, train, test)
    results["FP32"] = 100.0 * fp32_history.final_test_accuracy

    for bits in BIT_WIDTHS:
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                           hidden_units=64, seed=0)
        config = FFInt8Config(
            epochs=EPOCHS, batch_size=64, lr=0.02, overlay_amplitude=2.0,
            quant_config=QuantConfig(bits=bits, rounding="stochastic", seed=0),
            evaluate_every=EPOCHS, eval_max_samples=128,
            train_eval_max_samples=32, seed=0,
        )
        history = FFInt8Trainer(config).fit(bundle, train, test)
        results[f"INT{bits}"] = 100.0 * history.final_test_accuracy
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_precision(benchmark, bench_mnist):
    results = run_once(benchmark, lambda: _run(bench_mnist))

    emit("")
    emit(format_table(
        ["precision", "final accuracy %"],
        [[name, acc] for name, acc in results.items()],
        title="Ablation — Forward-Forward training precision sweep (MLP)",
        float_format="{:.1f}",
    ))

    result = ExperimentResult(
        experiment_id="ablation_precision",
        paper_reference="Section IV-B (INT8 choice)",
        description="FF training accuracy as a function of quantizer bit-width",
        parameters={"epochs": EPOCHS, "bit_widths": list(BIT_WIDTHS)},
        results=results,
    )
    save_experiment(result)

    assert all(0.0 <= acc <= 100.0 for acc in results.values())
    # INT8 FF training must hold up against the FP32 FF reference (the
    # paper's central claim); wider INT16 must not be worse than INT8 by a
    # large margin either.
    assert results["INT8"] >= results["FP32"] - 10.0
    assert results["INT16"] >= results["INT8"] - 10.0
