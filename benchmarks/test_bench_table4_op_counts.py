"""Experiment E5 — Table IV: operation counts per training step.

The paper counts the operations needed to train a mini-batch of 10 samples of
a 4-layer MLP on MNIST under FF-INT8, BP-FP32 and BP-GDAI8.  This benchmark
derives the same counts from the profiled model (see
:mod:`repro.hardware.table4` for the counting conventions) and prints them
next to the paper's values.
"""

from __future__ import annotations

import pytest

from benchmarks._common import emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.hardware import PAPER_TABLE4, profile_bundle, table4_op_counts
from repro.models import build_mlp

BATCH_SIZE = 10


def _count():
    bundle = build_mlp(input_shape=(1, 28, 28), hidden_layers=3,
                       hidden_units=500, seed=0)
    profile = profile_bundle(bundle, batch_size=1)
    return table4_op_counts(profile, batch_size=BATCH_SIZE)


def _fmt(value: float) -> str:
    if value == 0:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}K"
    return f"{value:.0f}"


@pytest.mark.benchmark(group="table4")
def test_table4_operation_counts(benchmark):
    counts = run_once(benchmark, _count)

    rows = []
    for setting in ("FF-INT8", "BP-FP32", "BP-GDAI8"):
        ours = counts[setting]
        paper = PAPER_TABLE4.get(setting, {})
        rows.append([
            setting,
            _fmt(ours["quant_fp32_cmp"]),
            _fmt(ours["quant_fp32_add"]),
            _fmt(ours["mac_int8_mul"]),
            _fmt(ours["mac_fp32_mul"]),
            _fmt(paper.get("quant_fp32_cmp", 0.0)),
            _fmt(paper.get("mac_int8_mul", 0.0) or paper.get("mac_fp32_mul", 0.0)),
        ])
    emit("")
    emit(format_table(
        ["setting", "quant CMP", "quant FADD", "INT8 MAC", "FP32 MAC",
         "paper quant CMP", "paper MAC"],
        rows,
        title=f"Table IV — operation counts for one {BATCH_SIZE}-sample "
              "training step (4-layer MLP)",
    ))

    result = ExperimentResult(
        experiment_id="table4_op_counts",
        paper_reference="Table IV",
        description="Operation counts per mini-batch training step for "
                    "FF-INT8 vs BP-FP32 vs BP-GDAI8",
        parameters={"batch_size": BATCH_SIZE, "hidden_layers": 3,
                    "hidden_units": 500},
        paper_values=PAPER_TABLE4,
        results=counts,
    )
    save_experiment(result)

    ff = counts["FF-INT8"]
    bp = counts["BP-FP32"]
    gdai8 = counts["BP-GDAI8"]
    # Shape of Table IV: the FF-INT8 step needs a small fraction of the MAC
    # operations of a BP step, entirely in INT8, and its quantization phase
    # is negligible; the BP baselines perform the full forward+backward MACs.
    assert ff["mac_int8_mul"] < 0.35 * bp["mac_fp32_mul"]
    assert ff["mac_fp32_mul"] == 0
    assert ff["quant_fp32_cmp"] < 0.01 * ff["mac_int8_mul"]
    assert gdai8["mac_int8_mul"] == bp["mac_fp32_mul"]
