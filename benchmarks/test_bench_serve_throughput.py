"""Experiment S1 — serving: single-sample vs batched INT8 inference.

The paper trains in INT8 so the result can be *deployed*; this benchmark
measures what deployment buys.  A small MLP is trained with FF-INT8, frozen
into an inference artifact, and then served three ways over the same request
stream:

* ``single``   — one engine call per request (the naive serving loop),
* ``batched``  — direct engine calls on full batches,
* ``queued``   — the micro-batching request queue (burst-submitted clients).

Batched execution must be at least 3x the single-sample throughput; latency
percentiles (p50/p95/p99) are reported for every mode.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks._common import bench_epochs, emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.core import FFInt8Config, FFInt8Trainer
from repro.models import build_mlp
from repro.serve import (
    MicroBatcher,
    ServeConfig,
    build_engine,
    export_artifact,
    latency_percentiles,
)

TRAIN_EPOCHS = bench_epochs(6)
REQUESTS = 256
ENGINE_BATCH = 64


def _train_and_freeze(bench_mnist):
    train_set, test_set = bench_mnist
    bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                       hidden_units=64, seed=0)
    config = FFInt8Config(epochs=TRAIN_EPOCHS, batch_size=64, lr=0.02,
                          overlay_amplitude=2.0, evaluate_every=TRAIN_EPOCHS,
                          eval_max_samples=96, seed=0)
    history = FFInt8Trainer(config).fit(bundle, train_set, test_set)
    artifact = export_artifact(
        history.metadata["units"], bundle, goodness=config.goodness,
        overlay_amplitude=config.overlay_amplitude, theta=config.theta,
    )
    # The serving hot path is defined by the fast backend (exact-float32
    # BLAS INT8 GEMMs); pin it so the measured speedup is independent of the
    # ambient REPRO_BACKEND selection.  Predictions are bit-identical either
    # way — only the throughput differs.
    engine = build_engine(
        artifact,
        build_mlp(input_shape=(1, 14, 14), hidden_layers=2, hidden_units=64,
                  seed=1),
        backend="fast",
    )
    return engine, test_set, history


def _measure(bench_mnist):
    engine, test_set, history = _train_and_freeze(bench_mnist)
    stream = test_set.images[np.arange(REQUESTS) % len(test_set.images)]
    engine.predict(stream[:ENGINE_BATCH])  # warm-up

    # Naive serving loop: one request per engine call.
    latencies = []
    started = time.perf_counter()
    for sample in stream:
        call_started = time.perf_counter()
        engine.predict(sample[None])
        latencies.append(1000.0 * (time.perf_counter() - call_started))
    single = {
        "throughput_rps": REQUESTS / (time.perf_counter() - started),
        **latency_percentiles(latencies),
    }

    # Direct batched engine calls.
    latencies = []
    started = time.perf_counter()
    for begin in range(0, REQUESTS, ENGINE_BATCH):
        call_started = time.perf_counter()
        engine.predict(stream[begin:begin + ENGINE_BATCH])
        batch_ms = 1000.0 * (time.perf_counter() - call_started)
        latencies.extend([batch_ms] * ENGINE_BATCH)
    batched = {
        "throughput_rps": REQUESTS / (time.perf_counter() - started),
        **latency_percentiles(latencies),
    }

    # Micro-batching queue with burst-submitted single-sample clients.
    config = ServeConfig(max_batch_size=ENGINE_BATCH, max_wait_ms=2.0,
                         cache_capacity=0, dedup_inflight=False)
    with MicroBatcher(engine, config) as batcher:
        started = time.perf_counter()
        labels = batcher.predict_many(list(stream))
        queued_elapsed = time.perf_counter() - started
    snapshot = batcher.metrics.snapshot()
    queued = {
        "throughput_rps": REQUESTS / queued_elapsed,
        "p50": snapshot["p50"], "p95": snapshot["p95"],
        "p99": snapshot["p99"],
        "mean_batch_size": snapshot["mean_batch_size"],
    }
    assert np.array_equal(labels, engine.predict(stream))

    return {
        "single": single,
        "batched": batched,
        "queued": queued,
        "accuracy": history.final_test_accuracy,
    }


@pytest.mark.benchmark(group="serve")
def test_serve_throughput(benchmark, bench_mnist):
    measured = run_once(benchmark, lambda: _measure(bench_mnist))

    rows = [
        [mode,
         measured[mode]["throughput_rps"],
         measured[mode]["p50"], measured[mode]["p95"], measured[mode]["p99"]]
        for mode in ("single", "batched", "queued")
    ]
    emit("")
    emit(format_table(
        ["mode", "throughput (req/s)", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        rows,
        title=f"INT8 serving throughput ({REQUESTS} requests, "
              f"batch={ENGINE_BATCH})",
        float_format="{:.2f}",
    ))
    speedup = (measured["batched"]["throughput_rps"]
               / measured["single"]["throughput_rps"])
    queued_speedup = (measured["queued"]["throughput_rps"]
                      / measured["single"]["throughput_rps"])
    emit(f"batched speedup {speedup:.2f}x, micro-batched queue "
         f"{queued_speedup:.2f}x")

    result = ExperimentResult(
        experiment_id="serve_throughput",
        paper_reference="deployment (beyond the paper's tables)",
        description="single-sample vs batched INT8 inference throughput "
                    "over a frozen FF-INT8 artifact",
        parameters={"requests": REQUESTS, "engine_batch": ENGINE_BATCH,
                    "train_epochs": TRAIN_EPOCHS},
        results={**measured, "batched_speedup": speedup,
                 "queued_speedup": queued_speedup},
    )
    save_experiment(result)

    # The serving subsystem's reason to exist: batching must win big.
    assert speedup >= 3.0, (
        f"batched INT8 throughput only {speedup:.2f}x single-sample"
    )
    assert queued_speedup >= 2.0, (
        f"micro-batched queue only {queued_speedup:.2f}x single-sample"
    )
