"""Experiment E6 — Table V: accuracy, time, energy and memory per algorithm.

The paper's headline table compares BP-FP32, BP-INT8, BP-UI8, BP-GDAI8 and
FF-INT8 on four architectures.  This benchmark produces the same rows:

* time / energy / memory come from the calibrated Jetson Orin Nano hardware
  model applied to the paper-scale architectures (see DESIGN.md §2 for the
  board substitution),
* accuracy columns show the paper's reported values; measured accuracies for
  the reduced-scale NumPy runs are produced separately by the Table I /
  Figure 6 benchmarks and the accuracy-sweep example.

The bottom of the output prints the two average-savings lines of Table V.
"""

from __future__ import annotations

import pytest

from benchmarks._common import emit, run_once, save_experiment
from repro.analysis import ExperimentResult, format_table
from repro.hardware import build_table5_summary
from repro.models import PAPER_BENCHMARKS
from repro.training import ALL_ALGORITHMS, BP_FP32, BP_GDAI8


@pytest.mark.benchmark(group="table5")
def test_table5_summary(benchmark):
    summary = run_once(benchmark, build_table5_summary)

    rows = []
    for model_name in PAPER_BENCHMARKS:
        for row in summary.rows_for_model(model_name):
            rows.append([
                model_name,
                row.algorithm,
                row.paper_accuracy,
                row.estimate.time_s,
                row.estimate.energy_j,
                row.estimate.memory_mb,
                row.paper_time_s,
                row.paper_energy_j,
                row.paper_memory_mb,
            ])
    emit("")
    emit(format_table(
        ["model", "algorithm", "paper acc %", "time (s)", "energy (J)",
         "memory (MB)", "paper time", "paper energy", "paper mem"],
        rows,
        title="Table V — accuracy / time / energy / memory per training "
              "algorithm (hardware-model estimates vs paper measurements)",
        float_format="{:.1f}",
    ))

    vs_fp32 = summary.relative_savings(BP_FP32)
    vs_gdai8 = summary.relative_savings(BP_GDAI8)
    emit("")
    emit(f"FF-INT8 vs BP-FP32  (paper: time -28.6%, energy -46.4%, mem -38.7%): "
         f"time -{vs_fp32['time']:.1f}%, energy -{vs_fp32['energy']:.1f}%, "
         f"mem -{vs_fp32['memory']:.1f}%")
    emit(f"FF-INT8 vs BP-GDAI8 (paper: time  -4.6%, energy  -8.3%, mem -27.0%): "
         f"time -{vs_gdai8['time']:.1f}%, energy -{vs_gdai8['energy']:.1f}%, "
         f"mem -{vs_gdai8['memory']:.1f}%")

    result = ExperimentResult(
        experiment_id="table5_summary",
        paper_reference="Table V",
        description="Accuracy/time/energy/memory comparison across training "
                    "algorithms and architectures",
        parameters={"algorithms": list(ALL_ALGORITHMS)},
        paper_values={"ff_vs_gdai8": {"time": 4.6, "energy": 8.3, "memory": 27.0},
                      "ff_vs_fp32": {"time": 28.6, "energy": 46.4, "memory": 38.7}},
        results={
            "rows": [row.as_dict() for row in summary.rows],
            "ff_vs_fp32": vs_fp32,
            "ff_vs_gdai8": vs_gdai8,
        },
    )
    save_experiment(result)

    # Shape of Table V: FF-INT8 wins on every axis against both references,
    # with the memory saving being the largest of the three.
    assert vs_gdai8["time"] > 0 and vs_gdai8["energy"] > 0 and vs_gdai8["memory"] > 0
    assert vs_fp32["time"] > 20 and vs_fp32["energy"] > 30 and vs_fp32["memory"] > 20
    assert vs_gdai8["memory"] > vs_gdai8["time"]

    # Per-model ordering: every model's FF-INT8 row must beat its BP-GDAI8 row.
    for model_name in PAPER_BENCHMARKS:
        by_algorithm = {r.algorithm: r for r in summary.rows_for_model(model_name)}
        assert by_algorithm["FF-INT8"].estimate.memory_mb \
            < by_algorithm["BP-GDAI8"].estimate.memory_mb
        assert by_algorithm["FF-INT8"].estimate.time_s \
            < by_algorithm["BP-GDAI8"].estimate.time_s
