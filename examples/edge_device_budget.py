"""Edge-deployment planning: which training algorithm fits a device budget?

The motivating scenario of the paper: a 4 GB Jetson-class device must train or
fine-tune a model on-device under a memory and energy budget.  This example
sweeps the four Table II architectures, asks the hardware model what each
training algorithm would cost, and reports which (model, algorithm) pairs fit
a user-specified budget — with FF-INT8 typically unlocking configurations
that backpropagation cannot fit.

Usage::

    python examples/edge_device_budget.py --memory-mb 700 --energy-kj 40
"""

from __future__ import annotations

import argparse

from repro import TrainingCostModel, build_model, profile_bundle
from repro.analysis import format_table
from repro.hardware.estimator import TABLE5_DATASET_SIZE, TABLE5_EPOCHS
from repro.models import PAPER_BENCHMARKS
from repro.training import ALL_ALGORITHMS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--memory-mb", type=float, default=700.0,
                        help="resident-memory budget in MB (default 700)")
    parser.add_argument("--energy-kj", type=float, default=40.0,
                        help="energy budget in kJ for the full training run")
    args = parser.parse_args()

    cost_model = TrainingCostModel()
    rows = []
    fits = []
    for model_row, info in PAPER_BENCHMARKS.items():
        bundle = build_model(info["full"])
        profile = profile_bundle(bundle, batch_size=1)
        dataset_size = TABLE5_DATASET_SIZE[info["dataset"]]
        for algorithm in ALL_ALGORITHMS:
            estimate = cost_model.estimate(
                profile, algorithm, epochs=TABLE5_EPOCHS[algorithm],
                dataset_size=dataset_size, batch_size=32,
            )
            within = (estimate.memory_mb <= args.memory_mb
                      and estimate.energy_j <= args.energy_kj * 1000.0)
            rows.append([
                model_row, algorithm, estimate.time_s, estimate.energy_j / 1000.0,
                estimate.memory_mb, "yes" if within else "no",
            ])
            if within:
                fits.append((model_row, algorithm))

    print()
    print(format_table(
        ["model", "algorithm", "time (s)", "energy (kJ)", "memory (MB)",
         "fits budget"],
        rows,
        title=(f"Training-cost estimates on the Jetson Orin Nano "
               f"(budget: {args.memory_mb:.0f} MB, {args.energy_kj:.0f} kJ)"),
        float_format="{:.1f}",
    ))

    ff_only = [
        (model, algorithm) for model, algorithm in fits if algorithm == "FF-INT8"
        and not any(m == model and a.startswith("BP") for m, a in fits)
    ]
    print(f"\n{len(fits)} (model, algorithm) pairs fit the budget.")
    if ff_only:
        unlocked = ", ".join(model for model, _ in ff_only)
        print(f"FF-INT8 is the only algorithm that fits the budget for: {unlocked}")


if __name__ == "__main__":
    main()
