"""End-to-end edge workflow: FF-INT8 training, checkpointing, deployment.

Walks through the full life-cycle a downstream user of FF-INT8 would follow
on an edge device:

1. train an MLP with FF-INT8 + look-ahead,
2. save the trained layers to a checkpoint,
3. restore the checkpoint into a fresh process (simulated here),
4. attach a single-pass softmax readout head for cheap inference and compare
   it against goodness-based label probing (which needs one forward pass per
   candidate label).

Usage::

    python examples/train_and_deploy.py [--epochs N] [--checkpoint PATH]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import FFInt8Config, FFInt8Trainer, build_model, synthetic_mnist
from repro.core import (
    ReadoutConfig,
    SoftmaxReadout,
    load_ff_checkpoint,
    restore_classifier,
    save_ff_checkpoint,
)
from repro.data import LabelOverlay
from repro.training.schedules import LinearLambda


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--checkpoint", type=Path, default=None,
                        help="where to store the checkpoint (default: tempdir)")
    args = parser.parse_args()

    train_set, test_set = synthetic_mnist(num_train=512, num_test=160,
                                          seed=0, image_size=14)

    # 1. Train with FF-INT8 + look-ahead (λ ramp scaled to the epoch budget).
    bundle = build_model("mlp-mini", hidden_units=64)
    config = FFInt8Config(
        epochs=args.epochs, batch_size=64, lr=0.02, overlay_amplitude=2.0,
        lambda_schedule=LinearLambda(0.0, 0.25 / args.epochs),
        evaluate_every=10, eval_max_samples=160, seed=0,
    )
    history = FFInt8Trainer(config).fit(bundle, train_set, test_set)
    units = history.metadata["units"]
    print(f"trained {bundle.name} for {args.epochs} epochs; "
          f"goodness-probe accuracy {history.final_test_accuracy:.3f}")

    # 2. Checkpoint the trained layers.
    checkpoint_dir = args.checkpoint or Path(tempfile.mkdtemp()) / "ff_mlp"
    checkpoint_path = save_ff_checkpoint(units, bundle, config, checkpoint_dir)
    print(f"checkpoint written to {checkpoint_path} (+ .json metadata)")

    # 3. Restore into a fresh bundle, as a deployment process would.
    checkpoint = load_ff_checkpoint(checkpoint_path)
    fresh_bundle = build_model("mlp-mini", hidden_units=64, seed=999)
    classifier = restore_classifier(checkpoint, fresh_bundle)
    probe_accuracy = classifier.accuracy(test_set)
    print(f"restored goodness-probe accuracy: {probe_accuracy:.3f} "
          f"(needs {train_set.num_classes} forward passes per prediction)")

    # 4. Train the single-pass softmax readout head on the frozen features.
    readout = SoftmaxReadout(
        classifier.units,
        LabelOverlay(train_set.num_classes, amplitude=config.overlay_amplitude),
        num_classes=train_set.num_classes,
        flatten_input=True,
        config=ReadoutConfig(epochs=25, lr=0.2, seed=0),
    )
    readout.fit(train_set)
    readout_accuracy = readout.accuracy(test_set)
    print(f"softmax readout accuracy:        {readout_accuracy:.3f} "
          f"(single forward pass per prediction)")

    speedup = train_set.num_classes
    print(f"\nAt inference time the readout head replaces {speedup} "
          f"label-probing passes with 1 pass plus one small matmul — the "
          f"deployment configuration an edge device would ship.")


if __name__ == "__main__":
    main()
