"""Figure 6 as a runnable script: FF-INT8 convergence with/without look-ahead.

Trains the 2-hidden-layer MLP with FF-INT8 twice — once with the look-ahead
scheme, once without — and renders the two accuracy-per-epoch curves as an
ASCII chart, the runnable analogue of Figure 6(a).

Usage::

    python examples/lookahead_convergence.py [--epochs N]
"""

from __future__ import annotations

import argparse

from repro import FFInt8Config, FFInt8Trainer, synthetic_mnist
from repro.models import build_mlp
from repro.training.schedules import LinearLambda


def train_pair(epochs: int):
    """Train FF-INT8 with and without look-ahead; return both histories."""
    train_set, test_set = synthetic_mnist(num_train=512, num_test=160,
                                          seed=0, image_size=14)
    histories = {}
    for lookahead in (False, True):
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                           hidden_units=64, seed=0)
        config = FFInt8Config(
            epochs=epochs, batch_size=64, lr=0.02, lookahead=lookahead,
            # λ ramp scaled so the final λ matches the paper's ~0.13-0.18
            # despite the shorter epoch budget.
            lambda_schedule=LinearLambda(0.0, 0.25 / epochs) if lookahead else None,
            overlay_amplitude=2.0, evaluate_every=2, eval_max_samples=160,
            train_eval_max_samples=32, seed=0,
        )
        histories[lookahead] = FFInt8Trainer(config).fit(bundle, train_set, test_set)
    return histories


def ascii_curves(histories, width: int = 60) -> str:
    """Render both accuracy curves on a shared ASCII axis."""
    series = {}
    for lookahead, history in histories.items():
        label = "with look-ahead   " if lookahead else "without look-ahead"
        series[label] = [
            (record.epoch, record.test_accuracy)
            for record in history.records
            if record.test_accuracy is not None
        ]
    lines = ["test accuracy per epoch (each column = one evaluation)"]
    for label, points in series.items():
        bar = "".join(
            str(min(9, int(accuracy * 10))) for _, accuracy in points
        )
        final = points[-1][1] if points else 0.0
        lines.append(f"{label} |{bar:<{width}}| final {final:.3f}")
    lines.append("(digits are accuracy deciles: 0 = <10%, 9 = >=90%)")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=30,
                        help="training epochs for both runs (default 30)")
    args = parser.parse_args()

    histories = train_pair(args.epochs)
    print()
    print(ascii_curves(histories))

    without = histories[False].final_test_accuracy
    with_la = histories[True].final_test_accuracy
    print(f"\nwithout look-ahead: {without:.3f}")
    print(f"with look-ahead:    {with_la:.3f}")
    epochs_to_40 = {
        "without": histories[False].epochs_to_accuracy(0.40),
        "with": histories[True].epochs_to_accuracy(0.40),
    }
    print(f"epochs to reach 40% accuracy: {epochs_to_40}")


if __name__ == "__main__":
    main()
