"""Compare all five training algorithms of Table V on one small workload.

Trains the same reduced-scale MLP with BP-FP32, BP-INT8, BP-UI8, BP-GDAI8 and
FF-INT8 on synthetic MNIST, then prints measured accuracy next to the Jetson
Orin Nano cost estimates — a miniature, fully-runnable version of Table V.

Usage::

    python examples/compare_training_algorithms.py
"""

from __future__ import annotations

import time

from repro import TrainingCostModel, build_model, profile_bundle, synthetic_mnist
from repro.analysis import format_table
from repro.training import ALL_ALGORITHMS, make_trainer

BP_EPOCHS = 8
FF_EPOCHS = 30


def main() -> None:
    train_set, test_set = synthetic_mnist(num_train=512, num_test=160,
                                          seed=0, image_size=14)
    cost_model = TrainingCostModel()
    profile = profile_bundle(build_model("mlp-mini", hidden_units=64), batch_size=1)

    rows = []
    for algorithm in ALL_ALGORITHMS:
        bundle = build_model("mlp-mini", hidden_units=64)
        epochs = FF_EPOCHS if algorithm == "FF-INT8" else BP_EPOCHS
        if algorithm == "FF-INT8":
            trainer = make_trainer(algorithm, epochs=epochs, batch_size=64,
                                   lr=0.02, overlay_amplitude=2.0,
                                   evaluate_every=epochs, seed=0)
        else:
            trainer = make_trainer(algorithm, epochs=epochs, batch_size=32,
                                   lr=0.05, seed=0)
        started = time.perf_counter()
        history = trainer.fit(bundle, train_set, test_set)
        wall_clock = time.perf_counter() - started

        estimate = cost_model.estimate(profile, algorithm, epochs=epochs,
                                       dataset_size=len(train_set), batch_size=32)
        rows.append([
            algorithm,
            100.0 * (history.final_test_accuracy or 0.0),
            epochs,
            wall_clock,
            estimate.time_s,
            estimate.energy_j,
            estimate.memory_mb,
        ])

    print()
    print(format_table(
        ["algorithm", "accuracy %", "epochs", "wall-clock (s, this machine)",
         "Jetson time (s)", "Jetson energy (J)", "Jetson memory (MB)"],
        rows,
        title="Miniature Table V — measured accuracy + Jetson Orin Nano estimates",
        float_format="{:.1f}",
    ))
    print("\nNote: absolute Jetson numbers come from the calibrated hardware "
          "model (DESIGN.md section 2); the relative ordering is the result "
          "the paper reports.")


if __name__ == "__main__":
    main()
