"""Front-end quickstart: serve a frozen model over a socket, with failures.

The fault-tolerant serving path of :mod:`repro.serve` in one script:

1. train a tiny MLP with FF-INT8 and freeze it into an INT8 artifact,
2. start a :class:`ServeFrontend` — a supervised pool of inference-engine
   replicas behind the length-prefixed wire protocol,
3. drive traffic through a :class:`FrontendClient`, with a deliberately
   broken replica in the pool: the supervisor routes around the failure
   and restarts the replica while clients keep getting answers,
4. demonstrate the explicit-outcome contract — a too-tight deadline raises
   :class:`DeadlineExceeded`, saturation raises :class:`RequestShed` with
   the server's adaptive ``retry_after_ms`` backoff hint — and finish with
   a graceful drain.

Usage::

    python examples/frontend_quickstart.py [--epochs N] [--requests N]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import (
    DeadlineExceeded,
    FFInt8Config,
    FFInt8Trainer,
    FrontendClient,
    FrontendConfig,
    RequestShed,
    ServeFrontend,
    build_engine,
    build_model,
    export_artifact,
    synthetic_mnist,
)
from repro.serve.faults import FaultSchedule, FaultyEngine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--replicas", type=int, default=2)
    args = parser.parse_args()

    # ----------------------------------------------------------------- #
    # 1. train + freeze (same path as serve_quickstart, smaller)
    # ----------------------------------------------------------------- #
    train_set, test_set = synthetic_mnist(
        num_train=192, num_test=64, seed=0, image_size=14
    )
    bundle = build_model("mlp-mini", input_shape=(1, 14, 14))
    config = FFInt8Config(epochs=args.epochs, batch_size=64,
                          evaluate_every=max(args.epochs, 1), seed=0)
    print(f"training {bundle.name} with FF-INT8 "
          f"for {args.epochs} epochs...")
    history = FFInt8Trainer(config).fit(bundle, train_set, test_set)
    artifact = export_artifact(
        history.metadata["units"], bundle,
        overlay_amplitude=config.overlay_amplitude, theta=config.theta,
        # The registry reference lets every replica (and every supervised
        # restart) rebuild its own engine from the artifact alone.
        registry_name="mlp-mini",
        registry_kwargs={"input_shape": [1, 14, 14]},
    )

    # ----------------------------------------------------------------- #
    # 2. a supervised replica pool, one replica broken on purpose
    # ----------------------------------------------------------------- #
    builds = [0]

    def engine_factory():
        engine = build_engine(artifact)
        builds[0] += 1
        if builds[0] == 1:
            # The first replica dies on its third batch; the supervisor
            # fails the request over, restarts the replica from this same
            # factory, health-probes it, and routes traffic back.
            return FaultyEngine(engine, FaultSchedule(fail_calls=[2]))
        return engine

    frontend_config = FrontendConfig(
        num_replicas=args.replicas, max_wait_ms=1.0,
        restart_backoff_ms=25.0, health_interval_ms=10.0,
        default_deadline_ms=2000.0, max_queue_depth=64,
    )
    samples = test_set.images[: args.requests]

    with ServeFrontend(engine_factory, frontend_config) as frontend:
        host, port = frontend.address
        print(f"front-end listening on {host}:{port} "
              f"({args.replicas} replicas)")
        with FrontendClient(host, port) as client:
            # 3. traffic straight through the injected failure
            served = sum(
                client.predict_with_retry(sample) is not None
                for sample in samples
            )
            deadline = time.perf_counter() + 5.0
            while (frontend.supervisor.restarts < 1
                   and time.perf_counter() < deadline):
                time.sleep(0.01)
            print(f"served {served}/{args.requests} requests; "
                  f"replica restarts: {frontend.supervisor.restarts}, "
                  f"healthy replicas: "
                  f"{frontend.supervisor.healthy_replicas}")

            # 4a. deadlines are explicit outcomes, not hangs
            try:
                client.predict(samples[0], deadline_ms=0.001)
                print("deadline outcome: served within 1 µs (!)")
            except DeadlineExceeded as error:
                print(f"deadline outcome: {error}")
            except RequestShed as error:
                print(f"deadline outcome (shed first): {error}")

            # 4b. the shed contract: explicit, with a backoff hint
            snapshot = client.server_metrics()["metrics"]
            print(f"server totals: {int(snapshot['requests'])} served, "
                  f"{int(snapshot['shed_requests'])} shed, "
                  f"{int(snapshot['deadline_exceeded_requests'])} "
                  "deadline-exceeded")
        print("draining...")
    print("front-end closed (intake stopped, in-flight flushed, "
          "engines closed)")


if __name__ == "__main__":
    main()
