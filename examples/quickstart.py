"""Quickstart: train an MLP with FF-INT8 (look-ahead) on synthetic MNIST.

Runs in well under a minute on a laptop CPU and shows the three things the
library is for:

1. building a model bundle and a dataset,
2. training it with the paper's FF-INT8 + look-ahead algorithm,
3. estimating what the run would cost on a Jetson Orin Nano.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FFInt8Config,
    FFInt8Trainer,
    TrainingCostModel,
    build_model,
    profile_bundle,
    synthetic_mnist,
)


def main() -> None:
    # 1. Data and model.  The "mini" MLP uses 14x14 inputs so the whole run
    #    stays fast; `build_model("mlp")` gives the paper-scale architecture.
    train_set, test_set = synthetic_mnist(num_train=512, num_test=160,
                                          seed=0, image_size=14)
    bundle = build_model("mlp-mini", hidden_units=64)
    print(f"model: {bundle.name}  ({bundle.num_parameters():,} parameters, "
          f"{len(bundle.backbone_blocks)} FF-trainable blocks)")

    # 2. FF-INT8 training with the look-ahead scheme (Algorithm 1).
    config = FFInt8Config(
        epochs=30,
        batch_size=64,
        lr=0.02,
        theta=2.0,                 # goodness threshold (paper Section V-A3)
        overlay_amplitude=2.0,     # strength of the one-hot label overlay
        evaluate_every=5,
        eval_max_samples=160,
        seed=0,
    )
    trainer = FFInt8Trainer(config)
    history = trainer.fit(bundle, train_set, test_set)

    print("\nepoch  lambda  train-loss  test-accuracy")
    for record in history.records:
        accuracy = "  -  " if record.test_accuracy is None else f"{record.test_accuracy:.3f}"
        print(f"{record.epoch:5d}  {record.lambda_value:.3f}  "
              f"{record.train_loss:10.4f}  {accuracy}")
    print(f"\nfinal FF-INT8 test accuracy: {history.final_test_accuracy:.3f}")

    # 3. What would this cost on the paper's edge device?
    profile = profile_bundle(bundle, batch_size=1)
    estimate = TrainingCostModel().estimate(
        profile, "FF-INT8", epochs=config.epochs,
        dataset_size=len(train_set), batch_size=config.batch_size,
    )
    print(f"\nJetson Orin Nano estimate for this run: "
          f"{estimate.time_s:.1f} s, {estimate.energy_j:.1f} J, "
          f"{estimate.memory_mb:.1f} MB resident")


if __name__ == "__main__":
    main()
