"""Observability quickstart: trace a served request and scrape the metrics.

The telemetry tour of :mod:`repro.obs` in one script:

1. train a tiny MLP with FF-INT8 and freeze it into an INT8 artifact,
2. turn on request tracing (``enable_tracing``) and serve a burst through
   the micro-batching queue,
3. print the slowest request's span tree — batcher enqueue, coalesce wait,
   engine pass, every kernel step with the backend that ran it,
4. dump the process-wide metrics registry, both as the Prometheus text a
   ``/metrics`` endpoint would expose and as a JSON snapshot.

Tracing is off by default and costs nearly nothing that way (the overhead
guard benchmark holds it under 1% of the serve hot path); this script
flips it on at ``sample=1.0`` so every request is traced.

Usage::

    python examples/obs_quickstart.py [--epochs N] [--requests N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    FFInt8Config,
    FFInt8Trainer,
    MicroBatcher,
    ServeConfig,
    build_engine,
    build_model,
    export_artifact,
    synthetic_mnist,
)
from repro.obs import (
    disable_tracing,
    enable_tracing,
    format_trace,
    get_registry,
    slowest_traces,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--requests", type=int, default=128,
                        help="size of the traced request burst")
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    args = parser.parse_args()

    # 1. Train + freeze.
    train_set, test_set = synthetic_mnist(num_train=512, num_test=160,
                                          seed=0, image_size=14)
    bundle = build_model("mlp-mini", hidden_units=64)
    config = FFInt8Config(epochs=args.epochs, batch_size=64, lr=0.02,
                          overlay_amplitude=2.0, evaluate_every=args.epochs,
                          eval_max_samples=160, seed=0)
    history = FFInt8Trainer(config).fit(bundle, train_set, test_set)
    artifact = export_artifact(
        history.metadata["units"], bundle,
        goodness=config.goodness, overlay_amplitude=config.overlay_amplitude,
        theta=config.theta, registry_name="mlp-mini",
        registry_kwargs={"hidden_units": 64},
    )
    engine = build_engine(artifact)
    print(f"trained and froze {bundle.name}; goodness-probe accuracy "
          f"{history.final_test_accuracy:.3f}")

    # 2. Serve a traced burst through the micro-batcher.
    rng = np.random.default_rng(0)
    indices = rng.integers(0, len(test_set.images), size=args.requests)
    stream = test_set.images[indices]
    serve_config = ServeConfig(max_batch_size=args.max_batch_size,
                               max_wait_ms=args.max_wait_ms)

    enable_tracing(sample=1.0)
    try:
        with engine, MicroBatcher(engine, serve_config) as batcher:
            batcher.predict_many(list(stream))
    finally:
        disable_tracing()

    # 3. The slowest request's life, as a span tree.  Every hop is a span:
    #    batcher bookkeeping, the coalesced engine pass, and each kernel
    #    step with its backend attribution (fused steps stay fused —
    #    timing never changes what it measures).
    print(f"\nslowest of {args.requests} traced requests:")
    for trace in slowest_traces(1):
        print(format_trace(trace))

    # 4. The metrics registry, both ways it exports.
    registry = get_registry()
    print("\nPrometheus exposition (excerpt):")
    exposition = registry.render_prometheus().splitlines()
    for line in exposition[:20]:
        print(f"  {line}")
    if len(exposition) > 20:
        print(f"  ... {len(exposition) - 20} more lines")

    snapshot = registry.snapshot()
    print(f"\nregistry snapshot: {len(snapshot['counters'])} counters, "
          f"{len(snapshot['gauges'])} gauges, "
          f"{len(snapshot['histograms'])} histograms")
    served = snapshot["counters"].get("repro_serve_requests_total", 0)
    batches = snapshot["counters"].get("repro_serve_batches_total", 0)
    print(f"served {served:g} requests in {batches:g} engine batches "
          "(counters accumulate for the process lifetime)")


if __name__ == "__main__":
    main()
