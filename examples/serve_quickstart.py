"""Serving quickstart: train a tiny MLP, freeze it, serve a request burst.

The full deployment loop of :mod:`repro.serve` in one script:

1. train an MLP with FF-INT8 on synthetic MNIST,
2. freeze the trained units into an immutable INT8 inference artifact
   (saved to disk, then reloaded the way a serving process would),
3. serve a burst of single-sample requests through the micro-batching
   queue, with the LRU prediction cache enabled,
4. print the latency/throughput table and compare against a sequential
   single-sample baseline.

Usage::

    python examples/serve_quickstart.py [--epochs N] [--requests N]
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    FFInt8Config,
    FFInt8Trainer,
    MicroBatcher,
    ServeConfig,
    build_engine,
    build_model,
    export_artifact,
    load_artifact,
    save_artifact,
    synthetic_mnist,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--requests", type=int, default=512,
                        help="size of the request burst to serve")
    parser.add_argument("--max-batch-size", type=int, default=64)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--cache-size", type=int, default=128)
    args = parser.parse_args()

    # 1. Train.
    train_set, test_set = synthetic_mnist(num_train=512, num_test=160,
                                          seed=0, image_size=14)
    bundle = build_model("mlp-mini", hidden_units=64)
    config = FFInt8Config(epochs=args.epochs, batch_size=64, lr=0.02,
                          overlay_amplitude=2.0, evaluate_every=args.epochs,
                          eval_max_samples=160, seed=0)
    history = FFInt8Trainer(config).fit(bundle, train_set, test_set)
    print(f"trained {bundle.name}; goodness-probe accuracy "
          f"{history.final_test_accuracy:.3f}")

    # 2. Freeze + persist + reload, as a deployment hand-off would.
    artifact = export_artifact(
        history.metadata["units"], bundle,
        goodness=config.goodness, overlay_amplitude=config.overlay_amplitude,
        theta=config.theta, registry_name="mlp-mini",
        registry_kwargs={"hidden_units": 64},
    )
    artifact_path = Path(tempfile.mkdtemp()) / "mlp_serve"
    save_artifact(artifact, artifact_path)
    engine = build_engine(load_artifact(artifact_path))
    print(f"frozen artifact: {len(artifact.quantized_keys())} INT8 weight "
          f"tensors, {artifact.nbytes() / 1024:.1f} KiB at {artifact_path}.npz")

    # 3. Serve a burst of single-sample requests (some repeats, so the
    #    prediction cache sees realistic traffic).
    rng = np.random.default_rng(0)
    indices = rng.integers(0, len(test_set.images), size=args.requests)
    stream = test_set.images[indices]

    started = time.perf_counter()
    for sample in stream:
        engine.predict(sample[None])
    single_elapsed = time.perf_counter() - started
    single_throughput = args.requests / single_elapsed

    serve_config = ServeConfig(max_batch_size=args.max_batch_size,
                               max_wait_ms=args.max_wait_ms,
                               cache_capacity=args.cache_size)
    with MicroBatcher(engine, serve_config) as batcher:
        started = time.perf_counter()
        labels = batcher.predict_many(list(stream))
        batched_elapsed = time.perf_counter() - started
    batched_throughput = args.requests / batched_elapsed

    # 4. Report.
    print()
    print(batcher.metrics.format_report(
        title=f"micro-batched serving ({args.requests} requests)"))
    print()
    cache_stats = batcher.cache.stats()
    snap = batcher.metrics.snapshot()
    print(f"cache: {cache_stats['hits']} hits / {cache_stats['misses']} "
          f"misses (hit rate {cache_stats['hit_rate']:.1%}); "
          f"{int(snap['deduped_requests'])} duplicate in-flight requests "
          f"coalesced")
    print(f"single-sample baseline: {single_throughput:,.0f} req/s")
    print(f"micro-batched:          {batched_throughput:,.0f} req/s "
          f"({batched_throughput / single_throughput:.2f}x)")
    assert np.array_equal(labels, engine.predict(stream)), \
        "micro-batching must never change a prediction"


if __name__ == "__main__":
    main()
