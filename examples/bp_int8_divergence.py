"""Figure 2 as a runnable script: what direct INT8 gradient quantization does.

Trains the reduced-scale ResNet-18 with FP32 backpropagation and with directly
INT8-quantized backpropagation, printing the per-epoch loss and accuracy
series plus the gradient-resolution diagnostics that explain the difference
(Section IV-A of the paper).

Usage::

    python examples/bp_int8_divergence.py [--epochs N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import build_model, synthetic_cifar10
from repro.analysis import collect_first_layer_gradients, format_table
from repro.quant import QuantConfig, fake_quantize
from repro.training import make_trainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=5)
    args = parser.parse_args()

    train_set, test_set = synthetic_cifar10(num_train=256, num_test=96,
                                            seed=0, image_size=16)
    histories = {}
    for algorithm in ("BP-FP32", "BP-INT8"):
        bundle = build_model("resnet18-mini", input_shape=(3, 16, 16), seed=0)
        trainer = make_trainer(algorithm, epochs=args.epochs, batch_size=32,
                               lr=0.05, seed=0)
        histories[algorithm] = trainer.fit(bundle, train_set, test_set)

    rows = []
    for epoch in range(args.epochs):
        fp32 = histories["BP-FP32"].records[epoch]
        int8 = histories["BP-INT8"].records[epoch]
        rows.append([
            epoch + 1, fp32.train_loss, 100 * (fp32.test_accuracy or 0),
            int8.train_loss, 100 * (int8.test_accuracy or 0),
        ])
    print()
    print(format_table(
        ["epoch", "FP32 loss", "FP32 acc %", "INT8 loss", "INT8 acc %"],
        rows,
        title="ResNet-18(-mini): BP-FP32 vs directly-quantized BP-INT8",
        float_format="{:.3f}",
    ))

    # The mechanism: how much of the first dense layer's gradient can INT8
    # actually resolve?
    probe = build_model("resnet18-mini", input_shape=(3, 16, 16), seed=0)
    mlp_probe = build_model("mlp-mini", hidden_units=64)
    mnist_like, _ = synthetic_cifar10(num_train=128, num_test=32, seed=1,
                                      image_size=16)
    del probe  # conv first layer gradients are inspected via the MLP probe
    from repro import synthetic_mnist

    mnist_train, _ = synthetic_mnist(num_train=256, num_test=64, seed=1,
                                     image_size=14)
    stats = collect_first_layer_gradients(mlp_probe, mnist_train, num_batches=6)
    quantized = fake_quantize(stats.samples, QuantConfig(rounding="nearest"))
    zero_fraction = float(np.mean(quantized == 0.0))
    print(f"\nfirst-layer gradient std: {stats.std:.5f}, abs max: {stats.abs_max:.4f}")
    print(f"fraction of gradient elements INT8 flushes to zero: {zero_fraction:.1%}")
    print("Sharper, heavier-tailed gradient distributions (deeper networks) "
          "lose more of their mass to quantization — the failure Figure 2 shows.")


if __name__ == "__main__":
    main()
