"""Setuptools shim.

Kept so that the package remains installable in fully offline environments
where the ``wheel`` package is unavailable and PEP 660 editable installs
cannot be built (``pip install -e . --no-use-pep517 --no-build-isolation``
falls back to the legacy ``setup.py develop`` path).  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

# Kept in lockstep with ``repro.__version__`` (asserted by the test suite).
VERSION = "1.8.0"

setup(
    name="ff-int8-repro",
    version=VERSION,
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
