"""Setuptools shim.

Kept so that the package remains installable in fully offline environments
where the ``wheel`` package is unavailable and PEP 660 editable installs
cannot be built (``pip install -e . --no-use-pep517 --no-build-isolation``
falls back to the legacy ``setup.py develop`` path).  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
