"""Tests for artifact export and the batched INT8 inference engine."""

import numpy as np
import pytest

from repro.core import (
    FFInt8Config,
    FFInt8Trainer,
    load_ff_checkpoint,
    restore_classifier,
    save_ff_checkpoint,
)
from repro.models import build_mlp, build_model
from repro.serve import (
    InferenceArtifact,
    build_engine,
    export_artifact,
    export_from_checkpoint,
    frozen_classifier,
    load_artifact,
    rowwise_quantize,
    save_artifact,
)
from repro.serve.engine import FrozenInt8Kernel
from repro.serve.export import QUANT_SUFFIX, SCALE_SUFFIX


# --------------------------------------------------------------------------- #
# model/goodness configurations for the equivalence matrix
# --------------------------------------------------------------------------- #
def _mlp_h2(seed):
    return build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                     hidden_units=32, seed=seed)


def _mlp_h1(seed):
    return build_mlp(input_shape=(1, 14, 14), hidden_layers=1,
                     hidden_units=24, seed=seed)


def _mlp_h3(seed):
    return build_mlp(input_shape=(1, 14, 14), hidden_layers=3,
                     hidden_units=16, seed=seed)


def _resnet_mini(seed):
    return build_model("resnet18-mini", input_shape=(3, 16, 16), seed=seed)


CONFIGS = [
    pytest.param(_mlp_h2, "sum_squares", (1, 14, 14), id="mlp-h2-sum"),
    pytest.param(_mlp_h1, "mean_squares", (1, 14, 14), id="mlp-h1-mean"),
    pytest.param(_mlp_h3, "sum_squares", (1, 14, 14), id="mlp-h3-sum"),
    pytest.param(_resnet_mini, "mean_squares", (3, 16, 16), id="resnet-mini-mean"),
]


def _export(factory, goodness):
    bundle = factory(seed=0)
    units = bundle.ff_units()
    return export_artifact(units, bundle, goodness=goodness,
                           overlay_amplitude=2.0)


def _inputs(shape, count, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count,) + shape).astype(np.float32)


class TestBatchedEquivalence:
    """The acceptance property: batched == per-sample, bit for bit."""

    @pytest.mark.parametrize("factory, goodness, shape", CONFIGS)
    def test_batched_engine_matches_per_sample_classifier(
        self, factory, goodness, shape
    ):
        artifact = _export(factory, goodness)
        engine = build_engine(artifact, factory(seed=1))
        classifier = frozen_classifier(artifact, factory(seed=2))
        inputs = _inputs(shape, 11)

        batched = engine.goodness_matrix(inputs)
        per_sample = np.stack(
            [classifier.goodness_matrix(inputs[i:i + 1])[0]
             for i in range(len(inputs))]
        )
        np.testing.assert_array_equal(batched, per_sample)
        np.testing.assert_array_equal(engine.predict(inputs),
                                      classifier.predict(inputs))

    @pytest.mark.parametrize("factory, goodness, shape", CONFIGS)
    def test_predictions_invariant_to_batch_composition(
        self, factory, goodness, shape
    ):
        artifact = _export(factory, goodness)
        engine = build_engine(artifact, factory(seed=3))
        inputs = _inputs(shape, 13, seed=5)

        whole = engine.goodness_matrix(inputs)
        singles = np.stack(
            [engine.goodness_matrix(inputs[i:i + 1])[0]
             for i in range(len(inputs))]
        )
        halves = np.concatenate(
            [engine.goodness_matrix(inputs[:7]), engine.goodness_matrix(inputs[7:])]
        )
        np.testing.assert_array_equal(whole, singles)
        np.testing.assert_array_equal(whole, halves)

    def test_empty_batch_returns_empty_predictions(self):
        artifact = _export(_mlp_h2, "sum_squares")
        engine = build_engine(artifact, _mlp_h2(seed=4))
        empty = np.zeros((0, 1, 14, 14), dtype=np.float32)
        assert engine.goodness_matrix(empty).shape == (0, 10)
        assert engine.predict(empty).shape == (0,)

    def test_predict_one_matches_batch(self):
        artifact = _export(_mlp_h2, "sum_squares")
        engine = build_engine(artifact, _mlp_h2(seed=4))
        inputs = _inputs((1, 14, 14), 6)
        labels = engine.predict(inputs)
        for index in range(len(inputs)):
            assert engine.predict_one(inputs[index]) == labels[index]


class TestArtifact:
    def test_weights_are_int8_with_scales(self):
        artifact = _export(_mlp_h2, "sum_squares")
        keys = artifact.quantized_keys()
        assert len(keys) == 2  # one Linear per hidden block
        for base in keys:
            assert artifact.tensors[base + QUANT_SUFFIX].dtype == np.int8
            scale = artifact.tensors[base + SCALE_SUFFIX]
            assert np.all(np.asarray(scale) > 0)

    def test_save_load_round_trip(self, tmp_path):
        artifact = _export(_mlp_h2, "mean_squares")
        path = save_artifact(artifact, tmp_path / "artifact")
        assert path.exists()
        assert (tmp_path / "artifact.json").exists()

        loaded = load_artifact(tmp_path / "artifact")
        assert loaded.metadata == artifact.metadata
        assert sorted(loaded.tensors) == sorted(artifact.tensors)
        for key, tensor in artifact.tensors.items():
            np.testing.assert_array_equal(loaded.tensors[key], tensor)

        engine = build_engine(artifact, _mlp_h2(seed=6))
        reloaded = build_engine(loaded, _mlp_h2(seed=7))
        inputs = _inputs((1, 14, 14), 9)
        np.testing.assert_array_equal(
            engine.goodness_matrix(inputs), reloaded.goodness_matrix(inputs)
        )

    def test_dotted_output_names_are_not_mangled(self, tmp_path):
        artifact = _export(_mlp_h2, "sum_squares")
        save_artifact(artifact, tmp_path / "model.v1")
        save_artifact(artifact, tmp_path / "model.v2")
        assert (tmp_path / "model.v1.npz").exists()
        assert (tmp_path / "model.v1.json").exists()
        assert (tmp_path / "model.v2.npz").exists()
        loaded = load_artifact(tmp_path / "model.v1")
        assert loaded.metadata == artifact.metadata

    def test_batchnorm_buffers_survive_checkpoint_export(self, tmp_path):
        from repro.nn.norm import _BatchNormBase
        from repro.serve.export import BUFFER_SUFFIX
        from repro.core.ff_trainer import FFConfig

        bundle = _resnet_mini(seed=0)
        units = bundle.ff_units()
        # give the norm layers recognizable running statistics
        marker = 0.0
        for unit in units:
            for module in unit.modules():
                if isinstance(module, _BatchNormBase):
                    marker += 1.0
                    module.running_mean = np.full(module.num_features, marker,
                                                  dtype=np.float32)
                    module.running_var = np.full(module.num_features,
                                                 marker + 0.5,
                                                 dtype=np.float32)
        assert marker > 0, "resnet-mini should contain BatchNorm layers"

        path = save_ff_checkpoint(units, bundle, FFConfig(epochs=1),
                                  tmp_path / "conv")
        checkpoint = load_ff_checkpoint(path)
        artifact = export_from_checkpoint(checkpoint, _resnet_mini(seed=1))
        buffer_keys = [key for key in artifact.tensors
                       if key.endswith(BUFFER_SUFFIX)]
        assert buffer_keys
        stored = {float(artifact.tensors[key][0]) for key in buffer_keys}
        assert 1.0 in stored and 1.5 in stored  # markers, not defaults

        # and the frozen engine actually normalizes with them
        engine = build_engine(artifact, _resnet_mini(seed=2))
        for unit in engine.units:
            for module in unit.modules():
                if isinstance(module, _BatchNormBase):
                    assert module.running_mean[0] != 0.0
                    return

    def test_load_rejects_unknown_format_version(self, tmp_path):
        artifact = _export(_mlp_h2, "sum_squares")
        artifact.metadata["format_version"] = 99
        save_artifact(artifact, tmp_path / "bad")
        with pytest.raises(ValueError, match="format version"):
            load_artifact(tmp_path / "bad")

    def test_unit_count_mismatch_rejected(self):
        bundle = _mlp_h2(seed=0)
        units = bundle.ff_units()
        with pytest.raises(ValueError, match="backbone blocks"):
            export_artifact(units[:1], bundle)
        artifact = _export(_mlp_h2, "sum_squares")
        with pytest.raises(ValueError, match="mismatch"):
            build_engine(artifact, _mlp_h3(seed=0))

    def test_per_channel_scales(self):
        bundle = _mlp_h2(seed=0)
        artifact = export_artifact(bundle.ff_units(), bundle, per_channel=True)
        for base in artifact.quantized_keys():
            scale = artifact.tensors[base + SCALE_SUFFIX]
            assert scale.ndim == 1  # one scale per output channel
        engine = build_engine(artifact, _mlp_h2(seed=1))
        classifier = frozen_classifier(artifact, _mlp_h2(seed=2))
        inputs = _inputs((1, 14, 14), 8)
        np.testing.assert_array_equal(
            engine.goodness_matrix(inputs),
            np.stack([classifier.goodness_matrix(inputs[i:i + 1])[0]
                      for i in range(len(inputs))]),
        )

    def test_registry_metadata_rebuilds_bundle(self):
        bundle = build_model("mlp-mini", input_shape=(1, 14, 14))
        artifact = export_artifact(
            bundle.ff_units(), bundle, registry_name="mlp-mini",
            registry_kwargs={"input_shape": [1, 14, 14]},
        )
        engine = build_engine(artifact)  # no bundle passed
        inputs = _inputs((1, 14, 14), 4)
        assert engine.predict(inputs).shape == (4,)

    def test_missing_registry_metadata_requires_bundle(self):
        artifact = _export(_mlp_h2, "sum_squares")
        with pytest.raises(ValueError, match="registry"):
            build_engine(artifact)


class TestFrozenKernel:
    def test_rowwise_quantize_is_row_independent(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(10, 17)).astype(np.float32)
        q_all, scales_all = rowwise_quantize(x)
        assert q_all.dtype == np.int8
        for row in range(len(x)):
            q_row, scale_row = rowwise_quantize(x[row:row + 1])
            np.testing.assert_array_equal(q_all[row], q_row[0])
            assert scales_all[row] == scale_row[0]

    def test_gradient_entry_points_raise(self):
        kernel = FrozenInt8Kernel(
            np.zeros((4, 3), dtype=np.int8), np.float64(0.1)
        )
        with pytest.raises(RuntimeError, match="inference-only"):
            kernel.linear_weight_grad(np.zeros((2, 4)), np.zeros((2, 3)))
        with pytest.raises(RuntimeError, match="inference-only"):
            kernel.depthwise_weight_grad(np.zeros((2, 4)), np.zeros((2, 4, 3)))

    def test_rejects_non_int8_weights(self):
        with pytest.raises(TypeError, match="int8"):
            FrozenInt8Kernel(np.zeros((4, 3), dtype=np.float32), np.float64(0.1))

    def test_exact_f32_gemm_matches_int32_gemm(self):
        from repro.quant.int8_ops import int8_matmul

        rng = np.random.default_rng(9)
        w_q = rng.integers(-127, 128, size=(8, 40)).astype(np.int8)
        kernel = FrozenInt8Kernel(w_q, np.float64(1.0))
        assert kernel._exact_f32
        x_q = rng.integers(-127, 128, size=(21, 40)).astype(np.int8)
        exact = x_q.astype(np.float32) @ kernel.weight_qT.astype(np.float32)
        reference = int8_matmul(x_q, kernel.weight_qT)
        np.testing.assert_array_equal(exact.astype(np.int64),
                                      reference.astype(np.int64))

    def test_engine_counts_int8_macs(self):
        artifact = _export(_mlp_h2, "sum_squares")
        engine = build_engine(artifact, _mlp_h2(seed=8))
        engine.predict(_inputs((1, 14, 14), 3))
        assert engine.counts.int8_mul > 0
        assert engine.counts.int8_mul == engine.counts.int8_add


class TestTrainedRoundTrip:
    """checkpoint -> export -> engine agrees with the restored classifier."""

    @pytest.fixture(scope="class")
    def trained(self, tmp_path_factory):
        from repro.data import synthetic_mnist

        train, test = synthetic_mnist(num_train=192, num_test=64, seed=7,
                                      image_size=14)
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                           hidden_units=48, seed=0)
        config = FFInt8Config(epochs=10, batch_size=64, lr=0.02,
                              overlay_amplitude=2.0, evaluate_every=10,
                              eval_max_samples=64, train_eval_max_samples=32,
                              seed=0)
        history = FFInt8Trainer(config).fit(bundle, train, test)
        units = history.metadata["units"]
        path = save_ff_checkpoint(
            units, bundle, config, tmp_path_factory.mktemp("ckpt") / "run"
        )
        return path, test

    def _fresh_bundle(self, seed):
        return build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                         hidden_units=48, seed=seed)

    def test_engine_agrees_with_fp32_classifier(self, trained):
        path, test = trained
        checkpoint = load_ff_checkpoint(path)
        fp32 = restore_classifier(checkpoint, self._fresh_bundle(11))
        artifact = export_from_checkpoint(checkpoint, self._fresh_bundle(12))
        engine = build_engine(artifact, self._fresh_bundle(13))

        inputs = test.images[:64]
        reference = fp32.predict(inputs)
        quantized = engine.predict(inputs)
        agreement = float(np.mean(reference == quantized))
        assert agreement >= 0.9, (
            f"INT8 serving flipped {100 * (1 - agreement):.1f}% of predictions"
        )

    def test_engine_is_bit_identical_to_frozen_per_sample(self, trained):
        path, test = trained
        checkpoint = load_ff_checkpoint(path)
        artifact = export_from_checkpoint(checkpoint, self._fresh_bundle(14))
        engine = build_engine(artifact, self._fresh_bundle(15))
        classifier = frozen_classifier(artifact, self._fresh_bundle(16))

        inputs = test.images[:48]
        per_sample = np.concatenate(
            [classifier.predict(inputs[i:i + 1]) for i in range(len(inputs))]
        )
        np.testing.assert_array_equal(engine.predict(inputs), per_sample)

    def test_export_metadata_carries_training_settings(self, trained):
        path, _ = trained
        checkpoint = load_ff_checkpoint(path)
        artifact = export_from_checkpoint(checkpoint, self._fresh_bundle(17))
        assert artifact.overlay_amplitude == 2.0
        assert artifact.goodness_name == "sum_squares"
        assert artifact.metadata["source"] == "ff_checkpoint"
        assert isinstance(artifact, InferenceArtifact)


class TestEnginePoolLifecycle:
    def test_close_shuts_down_plan_backends(self):
        from repro.runtime.backends import ShardBackend

        backend = ShardBackend(num_workers=2, min_rows=1,
                               min_rows_per_shard=1)
        try:
            artifact = _export(_mlp_h2, "sum_squares")
            engine = build_engine(
                artifact, _mlp_h2(seed=0), backend=backend
            )
            # Frozen weights were staged into shared segments at build time.
            assert len(backend._staged) > 0
            engine.predict(_inputs((1, 14, 14), 40))
            assert backend.pool_active
            engine.close()
            assert not backend.pool_active
            engine.close()  # idempotent
        finally:
            backend.shutdown()

    def test_context_manager_closes(self):
        from repro.runtime.backends import ShardBackend

        backend = ShardBackend(num_workers=2, min_rows=1,
                               min_rows_per_shard=1)
        try:
            artifact = _export(_mlp_h2, "sum_squares")
            with build_engine(
                artifact, _mlp_h2(seed=0), backend=backend
            ) as engine:
                engine.predict(_inputs((1, 14, 14), 40))
                assert backend.pool_active
            assert not backend.pool_active
        finally:
            backend.shutdown()

    def test_sharded_engine_matches_reference(self):
        from repro.runtime.backends import ShardBackend

        backend = ShardBackend(num_workers=2, min_rows=1,
                               min_rows_per_shard=1)
        try:
            artifact = _export(_mlp_h2, "sum_squares")
            inputs = _inputs((1, 14, 14), 48)
            with build_engine(
                artifact, _mlp_h2(seed=0), backend=backend
            ) as engine:
                sharded = engine.predict(inputs)
            reference = build_engine(
                artifact, _mlp_h2(seed=1), backend="reference"
            ).predict(inputs)
            np.testing.assert_array_equal(sharded, reference)
        finally:
            backend.shutdown()

    def test_apply_pins_auto_restages_and_stays_exact(self):
        artifact = _export(_mlp_h2, "sum_squares")
        inputs = _inputs((1, 14, 14), 32)
        engine = build_engine(artifact, _mlp_h2(seed=0))
        baseline = engine.predict(inputs)
        engine.apply_pins("auto", batch_size=16)
        assert all(
            step.backend is not None
            for step in engine.executor.plan.steps
        )
        np.testing.assert_array_equal(engine.predict(inputs), baseline)
        engine.close()
