"""Tests for the Jetson Orin Nano hardware model (profiling, cost, memory)."""

import numpy as np
import pytest

from repro.hardware import (
    DEFAULT_COSTS,
    JETSON_ORIN_NANO,
    HardwareModel,
    MemoryBreakdown,
    PAPER_TABLE4,
    TrainingCostModel,
    build_table5_summary,
    estimate_memory,
    profile_bundle,
    table4_op_counts,
)
from repro.hardware.estimator import PAPER_TABLE5_ACCURACY, TABLE5_EPOCHS
from repro.models import build_mlp, build_model
from repro.training import ALL_ALGORITHMS


@pytest.fixture(scope="module")
def mlp_profile():
    bundle = build_mlp(input_shape=(1, 28, 28), hidden_layers=2, hidden_units=500)
    return profile_bundle(bundle, batch_size=2)


@pytest.fixture(scope="module")
def resnet_mini_profile():
    return profile_bundle(build_model("resnet18-mini"), batch_size=2)


class TestDeviceSpec:
    def test_table3_values(self):
        assert JETSON_ORIN_NANO.memory_gb == 4.0
        assert JETSON_ORIN_NANO.ai_performance_tops == 20.0
        assert JETSON_ORIN_NANO.has_int8_engine
        assert "Ampere" in JETSON_ORIN_NANO.gpu

    def test_int8_mac_faster_than_fp32(self):
        hw = HardwareModel()
        assert hw.mac_time("int8") < hw.mac_time("fp32")
        assert hw.mac_time("fp32", backward=True) > hw.mac_time("fp32")

    def test_unknown_precision(self):
        hw = HardwareModel()
        with pytest.raises(ValueError):
            hw.mac_time("fp16")
        with pytest.raises(ValueError):
            hw.mac_power("fp16")

    def test_traffic_time_linear(self):
        hw = HardwareModel()
        assert hw.traffic_time(2e9) == pytest.approx(2 * hw.traffic_time(1e9))


class TestProfiler:
    def test_mlp_macs_match_hand_count(self, mlp_profile):
        expected = 784 * 500 + 500 * 500 + 500 * 10
        assert mlp_profile.forward_macs == pytest.approx(expected, rel=1e-6)

    def test_mlp_parameters(self, mlp_profile):
        expected = 784 * 500 + 500 + 500 * 500 + 500 + 500 * 10 + 10
        assert mlp_profile.total_parameters == expected

    def test_layer_records_present(self, mlp_profile):
        assert len(mlp_profile.layers) == 3
        assert all(layer.kind == "Linear" for layer in mlp_profile.layers)

    def test_batch_size_invariance(self):
        bundle = build_mlp(hidden_layers=1, hidden_units=32)
        p1 = profile_bundle(bundle, batch_size=1)
        p4 = profile_bundle(bundle, batch_size=4)
        assert p1.forward_macs == pytest.approx(p4.forward_macs, rel=1e-6)
        assert p1.total_activation_elements == pytest.approx(
            p4.total_activation_elements, rel=1e-6
        )

    def test_conv_model_profile(self, resnet_mini_profile):
        assert resnet_mini_profile.forward_macs > 1e5
        assert resnet_mini_profile.total_activation_elements > 0
        kinds = {layer.kind for layer in resnet_mini_profile.layers}
        assert "Conv2d" in kinds

    def test_profile_does_not_break_model(self):
        bundle = build_mlp(hidden_layers=1, hidden_units=16)
        profile_bundle(bundle, batch_size=1)
        out = bundle.bp_model()(np.zeros((2, 784), dtype=np.float32))
        assert out.shape == (2, 10)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            profile_bundle(build_mlp(hidden_layers=0, hidden_units=8), batch_size=0)

    def test_as_dict(self, mlp_profile):
        payload = mlp_profile.as_dict()
        assert payload["forward_macs"] == mlp_profile.forward_macs
        assert payload["num_profiled_layers"] == 3


class TestMemoryModel:
    def test_bp_stores_more_than_ff(self, resnet_mini_profile):
        bp = estimate_memory(resnet_mini_profile, batch_size=32, stores_graph=True,
                             mac_precision="fp32")
        ff = estimate_memory(resnet_mini_profile, batch_size=32, stores_graph=False,
                             mac_precision="int8", lookahead=True)
        assert ff.total_mb < bp.total_mb
        assert ff.activations_mb < bp.activations_mb

    def test_int8_weights_add_shadow_copy(self, mlp_profile):
        fp32 = estimate_memory(mlp_profile, 32, stores_graph=True, mac_precision="fp32")
        int8 = estimate_memory(mlp_profile, 32, stores_graph=True, mac_precision="int8")
        assert int8.weights_mb > fp32.weights_mb
        # ... but the overall footprint still shrinks (activations + workspace).
        assert int8.total_mb < fp32.total_mb

    def test_optimizer_state_scales(self, mlp_profile):
        sgd = estimate_memory(mlp_profile, 32, True, "fp32", optimizer_state_per_param=1)
        adam = estimate_memory(mlp_profile, 32, True, "fp32", optimizer_state_per_param=2)
        assert adam.optimizer_mb == pytest.approx(2 * sgd.optimizer_mb)

    def test_batch_size_scales_activations(self, resnet_mini_profile):
        small = estimate_memory(resnet_mini_profile, 8, True, "fp32")
        large = estimate_memory(resnet_mini_profile, 64, True, "fp32")
        assert large.activations_mb == pytest.approx(8 * small.activations_mb, rel=1e-6)

    def test_breakdown_total(self):
        breakdown = MemoryBreakdown(1.0, 2.0, 3.0, 4.0, 5.0)
        assert breakdown.total_mb == 15.0
        assert breakdown.as_dict()["total_mb"] == 15.0


class TestCostModel:
    def test_estimates_positive_and_structured(self, mlp_profile):
        model = TrainingCostModel()
        estimate = model.estimate(mlp_profile, "BP-FP32", epochs=10,
                                  dataset_size=1000, batch_size=32)
        assert estimate.time_s > 0
        assert estimate.energy_j > 0
        assert estimate.memory_mb > 0
        assert estimate.breakdown.total_time_s == pytest.approx(estimate.time_s)
        assert 2.0 < estimate.average_power_w < 10.0

    def test_int8_faster_than_fp32(self, mlp_profile):
        model = TrainingCostModel()
        fp32 = model.estimate(mlp_profile, "BP-FP32", epochs=10, dataset_size=5000)
        int8 = model.estimate(mlp_profile, "BP-INT8", epochs=10, dataset_size=5000)
        assert int8.time_s < fp32.time_s
        assert int8.energy_j < fp32.energy_j
        # The speedup is well below the 4x MAC-engine ratio (Table V shows
        # ~1.4-1.5x) because per-layer kernel overheads do not shrink 4x.
        assert fp32.time_s / int8.time_s < 2.5

    def test_ff_int8_beats_gdai8_despite_more_epochs(self, mlp_profile):
        model = TrainingCostModel()
        gdai8 = model.estimate(mlp_profile, "BP-GDAI8", epochs=30, dataset_size=10000)
        ff = model.estimate(mlp_profile, "FF-INT8", epochs=36, dataset_size=10000)
        assert ff.time_s < gdai8.time_s
        assert ff.energy_j < gdai8.energy_j
        assert ff.memory_mb < gdai8.memory_mb

    def test_epochs_scale_time(self, mlp_profile):
        model = TrainingCostModel()
        short = model.estimate(mlp_profile, "BP-FP32", epochs=5, dataset_size=1000)
        long = model.estimate(mlp_profile, "BP-FP32", epochs=10, dataset_size=1000)
        assert long.time_s == pytest.approx(2 * short.time_s, rel=1e-6)

    def test_compare_covers_all_algorithms(self, mlp_profile):
        estimates = TrainingCostModel().compare(mlp_profile, dataset_size=1000)
        assert set(estimates) == set(ALL_ALGORITHMS)

    def test_invalid_schedule(self, mlp_profile):
        with pytest.raises(ValueError):
            TrainingCostModel().estimate(mlp_profile, "BP-FP32", epochs=0)

    def test_as_dict(self, mlp_profile):
        estimate = TrainingCostModel().estimate(mlp_profile, "FF-INT8",
                                                dataset_size=1000)
        payload = estimate.as_dict()
        assert payload["algorithm"] == "FF-INT8"
        assert "breakdown" in payload and "memory_breakdown" in payload


class TestTable4:
    def test_op_counts_structure(self):
        bundle = build_mlp(input_shape=(1, 28, 28), hidden_layers=3, hidden_units=500)
        profile = profile_bundle(bundle, batch_size=1)
        counts = table4_op_counts(profile, batch_size=10)
        assert set(counts) == {"FF-INT8", "BP-FP32", "BP-GDAI8"}
        # FF-INT8 step uses INT8 MACs only; BP-FP32 uses FP32 MACs only.
        assert counts["FF-INT8"]["mac_fp32_mul"] == 0
        assert counts["BP-FP32"]["mac_int8_mul"] == 0
        assert counts["BP-FP32"]["quant_fp32_cmp"] == 0

    def test_ff_step_much_cheaper_than_bp_step(self):
        """The headline of Table IV: an FF-INT8 training step needs a small
        fraction of the MAC operations of a BP step (and they are 8-bit)."""
        bundle = build_mlp(input_shape=(1, 28, 28), hidden_layers=3, hidden_units=500)
        profile = profile_bundle(bundle, batch_size=1)
        counts = table4_op_counts(profile, batch_size=10)
        ratio = counts["FF-INT8"]["mac_int8_mul"] / counts["BP-FP32"]["mac_fp32_mul"]
        assert ratio < 0.35

    def test_quantization_phase_negligible(self):
        bundle = build_mlp(input_shape=(1, 28, 28), hidden_layers=3, hidden_units=500)
        profile = profile_bundle(bundle, batch_size=1)
        counts = table4_op_counts(profile, batch_size=10)
        assert counts["FF-INT8"]["quant_fp32_cmp"] < 0.01 * counts["FF-INT8"]["mac_int8_mul"]

    def test_paper_reference_values_present(self):
        assert PAPER_TABLE4["FF-INT8"]["mac_int8_mul"] == pytest.approx(23.8e6)
        assert PAPER_TABLE4["BP-FP32"]["mac_fp32_mul"] == pytest.approx(898.2e6)

    def test_layer_index_validation(self):
        profile = profile_bundle(build_mlp(hidden_layers=1, hidden_units=16), 1)
        with pytest.raises(ValueError):
            table4_op_counts(profile, ff_layer_index=10)


class TestTable5Summary:
    @pytest.fixture(scope="class")
    def summary(self):
        # MLP only keeps this test fast; the full sweep runs in the benchmark.
        return build_table5_summary(models=["MLP"])

    def test_rows_cover_all_algorithms(self, summary):
        assert len(summary.rows) == len(ALL_ALGORITHMS)
        assert {row.algorithm for row in summary.rows} == set(ALL_ALGORITHMS)

    def test_paper_accuracy_attached(self, summary):
        by_algorithm = {row.algorithm: row for row in summary.rows}
        assert by_algorithm["BP-FP32"].paper_accuracy == 94.5
        assert by_algorithm["FF-INT8"].paper_accuracy == 94.3

    def test_ff_int8_saves_vs_gdai8(self, summary):
        savings = summary.relative_savings("BP-GDAI8")
        assert savings["time"] > 0
        assert savings["energy"] > 0
        assert savings["memory"] > 0

    def test_ff_int8_saves_vs_fp32(self, summary):
        savings = summary.relative_savings("BP-FP32")
        assert savings["time"] > 10
        assert savings["memory"] > 10

    def test_paper_reference_tables_consistent(self):
        for model_row, accuracies in PAPER_TABLE5_ACCURACY.items():
            assert set(accuracies) == set(ALL_ALGORITHMS)
        assert set(TABLE5_EPOCHS) == set(ALL_ALGORITHMS)

    def test_rows_for_model(self, summary):
        assert len(summary.rows_for_model("MLP")) == len(ALL_ALGORITHMS)
        assert summary.rows_for_model("ResNet-18") == []
