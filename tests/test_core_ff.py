"""Tests for the Forward-Forward core: goodness, losses, look-ahead, trainers."""

import numpy as np
import pytest

from repro.core import (
    FFConfig,
    FFGoodnessClassifier,
    FFInt8Config,
    FFInt8Trainer,
    FFLoss,
    ForwardForwardTrainer,
    MeanSquaredGoodness,
    SumSquaredGoodness,
    accumulate_chained_gradients,
    accumulate_lookahead_gradients,
    build_goodness,
    ff_fp32,
    ff_int8_vanilla,
    ff_int8_with_lookahead,
    forward_through_units,
    negative_loss,
    negative_loss_grad,
    positive_loss,
    positive_loss_grad,
    unit_losses_and_grads,
)
from repro.data import LabelOverlay
from repro.models import build_mlp
from repro.nn import Linear, ReLU, Sequential
from repro.training.schedules import ConstantLambda


class TestGoodness:
    def test_sum_squares_value(self):
        goodness = SumSquaredGoodness()
        activity = np.array([[1.0, 2.0], [0.0, 3.0]], dtype=np.float32)
        np.testing.assert_allclose(goodness.value(activity), [5.0, 9.0])

    def test_sum_squares_grad(self):
        goodness = SumSquaredGoodness()
        activity = np.array([[1.0, -2.0]], dtype=np.float32)
        np.testing.assert_allclose(goodness.grad(activity), [[2.0, -4.0]])

    def test_mean_squares_width_invariant(self):
        goodness = MeanSquaredGoodness()
        narrow = np.ones((1, 4), dtype=np.float32)
        wide = np.ones((1, 400), dtype=np.float32)
        assert goodness.value(narrow)[0] == pytest.approx(goodness.value(wide)[0])

    def test_4d_activity_flattened(self):
        goodness = SumSquaredGoodness()
        activity = np.ones((2, 3, 2, 2), dtype=np.float32)
        np.testing.assert_allclose(goodness.value(activity), [12.0, 12.0])

    def test_registry(self):
        assert isinstance(build_goodness("sum_squares"), SumSquaredGoodness)
        assert isinstance(build_goodness("mean_squares"), MeanSquaredGoodness)
        with pytest.raises(ValueError):
            build_goodness("l1")


class TestFFLoss:
    def test_positive_loss_decreases_with_goodness(self):
        low = positive_loss(np.array([0.0]), theta=2.0)[0]
        high = positive_loss(np.array([10.0]), theta=2.0)[0]
        assert high < low

    def test_negative_loss_increases_with_goodness(self):
        low = negative_loss(np.array([0.0]), theta=2.0)[0]
        high = negative_loss(np.array([10.0]), theta=2.0)[0]
        assert high > low

    def test_loss_at_threshold(self):
        """At G = θ both losses equal log(2)."""
        assert positive_loss(np.array([2.0]), 2.0)[0] == pytest.approx(np.log(2))
        assert negative_loss(np.array([2.0]), 2.0)[0] == pytest.approx(np.log(2))

    def test_grads_match_finite_differences(self):
        theta, eps = 2.0, 1e-4
        for g in (-1.0, 0.5, 2.0, 5.0):
            pos_num = (positive_loss(np.array([g + eps]), theta)[0]
                       - positive_loss(np.array([g - eps]), theta)[0]) / (2 * eps)
            neg_num = (negative_loss(np.array([g + eps]), theta)[0]
                       - negative_loss(np.array([g - eps]), theta)[0]) / (2 * eps)
            assert positive_loss_grad(np.array([g]), theta)[0] == pytest.approx(pos_num, abs=1e-3)
            assert negative_loss_grad(np.array([g]), theta)[0] == pytest.approx(neg_num, abs=1e-3)

    def test_extreme_goodness_finite(self):
        assert np.isfinite(positive_loss(np.array([1e6]), 2.0)).all()
        assert np.isfinite(negative_loss(np.array([1e6]), 2.0)).all()

    def test_probability_positive(self):
        loss = FFLoss(theta=2.0)
        probs = loss.probability_positive(np.array([2.0, 100.0, -100.0]))
        np.testing.assert_allclose(probs, [0.5, 1.0, 0.0], atol=1e-6)

    def test_activity_grad_shape_and_scale(self):
        loss = FFLoss(theta=2.0)
        goodness = SumSquaredGoodness()
        activity = np.random.default_rng(0).normal(size=(8, 6)).astype(np.float32)
        value = goodness.value(activity)
        grad = loss.activity_grad(activity, goodness.grad, value, positive=True)
        assert grad.shape == activity.shape
        # The gradient of the *mean* loss scales as 1/N.
        grad_half = loss.activity_grad(activity[:4], goodness.grad,
                                       value[:4], positive=True)
        assert np.abs(grad_half).mean() > np.abs(grad).mean()


class TestLookaheadGradients:
    def _units(self, seed=0):
        rng = np.random.default_rng(seed)
        units = [
            Sequential(Linear(12, 10, rng=1), ReLU()),
            Sequential(Linear(10, 8, rng=2), ReLU()),
            Sequential(Linear(8, 6, rng=3), ReLU()),
        ]
        x = rng.normal(size=(5, 12)).astype(np.float32) + 0.5
        return units, x

    def _grads(self, units, x, positive=True):
        goodness = SumSquaredGoodness()
        ff_loss = FFLoss(theta=2.0)
        for unit in units:
            unit.train()
            unit.set_activation_caching(True)
        activations = forward_through_units(units, x)
        losses, grads = unit_losses_and_grads(activations, goodness, ff_loss, positive)
        return activations, losses, grads

    def test_forward_through_units_chains(self):
        units, x = self._units()
        activations = forward_through_units(units, x)
        assert [a.shape[1] for a in activations] == [10, 8, 6]

    def test_local_mode_matches_per_unit_backward(self):
        units, x = self._units()
        _, _, grads = self._grads(units, x)
        accumulate_lookahead_gradients(units, grads, lam=0.0, mode="local")
        local_grads = {
            (index, name): p.grad.copy()
            for index, u in enumerate(units)
            for name, p in u.named_parameters()
        }

        units2, x2 = self._units()
        _, _, grads2 = self._grads(units2, x2)
        for unit, grad in zip(units2, grads2):
            unit.backward(grad)
        for index, unit2 in enumerate(units2):
            for name, p2 in unit2.named_parameters():
                np.testing.assert_allclose(
                    local_grads[(index, name)], p2.grad, rtol=1e-5
                )

    def test_lambda_zero_chained_equals_local(self):
        units_a, x = self._units()
        _, _, grads_a = self._grads(units_a, x)
        accumulate_lookahead_gradients(units_a, grads_a, lam=0.0, mode="chained")

        units_b, _ = self._units()
        _, _, grads_b = self._grads(units_b, x)
        accumulate_lookahead_gradients(units_b, grads_b, lam=0.0, mode="local")

        for unit_a, unit_b in zip(units_a, units_b):
            for (_, pa), (_, pb) in zip(unit_a.named_parameters(),
                                        unit_b.named_parameters()):
                np.testing.assert_allclose(pa.grad, pb.grad, rtol=1e-5)

    def test_chained_adds_cross_layer_terms_to_early_layers(self):
        """With λ > 0 the first layer's gradient must change; the last must not."""
        units_a, x = self._units()
        _, _, grads_a = self._grads(units_a, x)
        accumulate_lookahead_gradients(units_a, grads_a, lam=0.0, mode="chained")
        first_zero = units_a[0].parameters()[0].grad.copy()
        last_zero = units_a[-1].parameters()[0].grad.copy()

        units_b, _ = self._units()
        _, _, grads_b = self._grads(units_b, x)
        accumulate_lookahead_gradients(units_b, grads_b, lam=0.5, mode="chained")
        first_half = units_b[0].parameters()[0].grad
        last_half = units_b[-1].parameters()[0].grad

        assert not np.allclose(first_zero, first_half)
        # For the deepest layer there are no "later" losses, so its gradient
        # is unchanged by the look-ahead coefficient.
        np.testing.assert_allclose(last_zero, last_half, rtol=1e-5)

    def test_chained_gradient_matches_finite_difference(self):
        """Exact Eq. 4 gradient check on the first layer's weight matrix."""
        lam = 0.3
        units, x = self._units(seed=7)
        goodness = SumSquaredGoodness()
        ff_loss = FFLoss(theta=2.0)

        def total_objective() -> float:
            activations = forward_through_units(units, x)
            losses = [ff_loss.mean_loss(goodness.value(a), True) for a in activations]
            # Layer 0's look-ahead loss: L_0 + lam * (L_1 + L_2)
            return losses[0] + lam * (losses[1] + losses[2])

        _, _, grads = self._grads(units, x)
        for unit in units:
            unit.zero_grad()
        accumulate_lookahead_gradients(units, grads, lam=lam, mode="chained")
        weight = units[0].layers()[0].weight
        analytic = weight.grad.copy()

        eps = 1e-3
        rng = np.random.default_rng(0)
        for _ in range(6):
            i = rng.integers(0, weight.data.shape[0])
            j = rng.integers(0, weight.data.shape[1])
            original = weight.data[i, j]
            weight.data[i, j] = original + eps
            upper = total_objective()
            weight.data[i, j] = original - eps
            lower = total_objective()
            weight.data[i, j] = original
            numeric = (upper - lower) / (2 * eps)
            assert analytic[i, j] == pytest.approx(numeric, rel=5e-2, abs=5e-4)

    def test_chained_sweep_function(self):
        units, x = self._units()
        _, _, grads = self._grads(units, x)
        accumulate_chained_gradients(units, grads, scale=1.0)
        assert all(p.grad is not None for u in units for p in u.parameters())

    def test_validation(self):
        units, x = self._units()
        _, _, grads = self._grads(units, x)
        with pytest.raises(ValueError, match="mode"):
            accumulate_lookahead_gradients(units, grads, 0.1, mode="global")
        with pytest.raises(ValueError, match="lambda"):
            accumulate_lookahead_gradients(units, grads, 1.5)
        with pytest.raises(ValueError, match="units"):
            accumulate_lookahead_gradients(units, grads[:-1], 0.1)


class TestFFGoodnessClassifier:
    def test_predicts_planted_label_signal(self):
        """A hand-built unit that amplifies the correct label pixel is decodable."""
        num_classes, features = 10, 32
        overlay = LabelOverlay(num_classes, amplitude=1.0)
        unit = Sequential(Linear(features, 16, rng=0), ReLU())
        # Make the first 10 input features (the overlay slots) dominate the
        # first 10 hidden units' activity.
        weight = np.zeros((16, features), dtype=np.float32)
        for k in range(10):
            weight[k, k] = 5.0
        unit.layers()[0].weight.copy_(weight)

        rng = np.random.default_rng(0)
        images = np.abs(rng.normal(size=(20, features))).astype(np.float32) * 0.05
        labels = rng.integers(0, num_classes, size=20)
        classifier = FFGoodnessClassifier([unit], overlay, skip_first_layer=False)
        predictions = classifier.predict(images)
        # The planted unit responds most to whichever label is overlaid, and
        # every label overlay excites its own hidden unit equally, so the
        # goodness is (almost) label-independent... unless the true-label slot
        # already carries the overlay.  Verify via goodness matrix symmetry.
        scores = classifier.goodness_matrix(images)
        assert scores.shape == (20, num_classes)
        assert np.all(np.isfinite(scores))
        assert predictions.shape == (20,)

    def test_skip_first_layer_defaults(self):
        overlay = LabelOverlay(10)
        single = FFGoodnessClassifier([Sequential(Linear(32, 8, rng=0))], overlay)
        double = FFGoodnessClassifier(
            [Sequential(Linear(32, 8, rng=0)), Sequential(Linear(8, 8, rng=1))], overlay
        )
        assert single.skip_first_layer is False
        assert double.skip_first_layer is True

    def test_accuracy_bounds(self, tiny_mnist):
        train, _ = tiny_mnist
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=1,
                           hidden_units=16, seed=0)
        overlay = LabelOverlay(10)
        classifier = FFGoodnessClassifier(bundle.ff_units(), overlay,
                                          flatten_input=True)
        acc = classifier.accuracy(train, max_samples=50)
        assert 0.0 <= acc <= 1.0

    def test_requires_units(self):
        with pytest.raises(ValueError):
            FFGoodnessClassifier([], LabelOverlay(10))

    def test_layer_goodness_profile(self, mlp_small):
        overlay = LabelOverlay(10)
        classifier = FFGoodnessClassifier(mlp_small.ff_units(), overlay,
                                          flatten_input=True)
        profile = classifier.layer_goodness_profile(
            np.random.default_rng(0).normal(size=(4, 196)).astype(np.float32)
        )
        assert len(profile) == 2
        assert all(values.shape == (4,) for values in profile)


class TestFFTrainers:
    def test_ff_fp32_learns(self, tiny_mnist):
        train, test = tiny_mnist
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=1,
                           hidden_units=64, seed=0)
        config = FFConfig(epochs=20, batch_size=64, lr=0.02, int8=False,
                          lookahead=False, overlay_amplitude=2.0,
                          evaluate_every=20, eval_max_samples=96,
                          train_eval_max_samples=32, seed=0)
        history = ForwardForwardTrainer(config).fit(bundle, train, test)
        assert history.final_test_accuracy > 0.35
        assert history.algorithm == "FF-FP32"

    def test_ff_int8_with_lookahead_learns(self, tiny_mnist):
        train, test = tiny_mnist
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                           hidden_units=64, seed=0)
        config = FFInt8Config(epochs=25, batch_size=64, lr=0.02,
                              overlay_amplitude=2.0, evaluate_every=25,
                              eval_max_samples=96, train_eval_max_samples=32,
                              seed=0)
        history = FFInt8Trainer(config).fit(bundle, train, test)
        assert history.final_test_accuracy > 0.3
        assert history.metadata["int8"] is True
        assert history.metadata["lookahead"] is True

    def test_greedy_schedule_trains_layer_by_layer(self, tiny_mnist):
        train, test = tiny_mnist
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=2,
                           hidden_units=32, seed=0)
        config = FFConfig(epochs=4, batch_size=64, lr=0.02, int8=False,
                          lookahead=False, train_schedule="greedy",
                          epochs_per_layer=2, evaluate_every=1,
                          eval_max_samples=48, train_eval_max_samples=16, seed=0)
        history = ForwardForwardTrainer(config).fit(bundle, train, test)
        layers_seen = [record.extra.get("layer") for record in history.records]
        assert layers_seen == [0.0, 0.0, 1.0, 1.0]

    def test_lookahead_requires_simultaneous_schedule(self):
        with pytest.raises(ValueError, match="simultaneous"):
            FFConfig(lookahead=True, train_schedule="greedy")

    def test_invalid_schedule_name(self):
        with pytest.raises(ValueError, match="train_schedule"):
            FFConfig(train_schedule="layerwise")

    def test_factory_helpers(self):
        assert ff_int8_with_lookahead(epochs=1).config.lookahead is True
        assert ff_int8_vanilla(epochs=1).config.lookahead is False
        assert ff_fp32(epochs=1).config.int8 is False

    def test_config_default_lambda_schedule(self):
        config = FFInt8Config(epochs=1)
        assert config.lambda_schedule.value_at(0) == 0.0
        assert config.lambda_schedule.value_at(100) == pytest.approx(0.1)

    def test_config_rejects_double_specification(self):
        with pytest.raises(ValueError, match="either"):
            FFInt8Trainer(FFInt8Config(epochs=1), epochs=2)

    def test_lambda_value_recorded_in_history(self, tiny_mnist):
        train, test = tiny_mnist
        bundle = build_mlp(input_shape=(1, 14, 14), hidden_layers=1,
                           hidden_units=16, seed=0)
        config = FFInt8Config(epochs=2, batch_size=128,
                              lambda_schedule=ConstantLambda(0.25),
                              evaluate_every=5, seed=0)
        history = FFInt8Trainer(config).fit(bundle, train, test)
        assert history.records[0].lambda_value == 0.25
